#include "src/router/router.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "src/common/log.h"
#include "src/obs/flight.h"
#include "src/obs/trace.h"

namespace ava {
namespace {

// Backstop on the shared executor pool: the pool is sized to the sum of the
// attached VMs' parallelism bounds, capped here so a crowd of wide VMs
// cannot spawn unbounded threads.
constexpr std::size_t kMaxWorkers = 64;

// Frames drained from one channel per event-loop visit. Level-triggered
// epoll re-reports a still-readable fd, and the loop re-queues the channel
// behind its siblings, so the cap bounds per-visit latency without losing
// data — one flooding VM cannot monopolize the loop thread.
constexpr int kMaxFramesPerVisit = 64;

// Ceiling on a guest-supplied cost hint: the hint is advisory scheduling
// input, and completion reconciliation refunds any overshoot, but a hostile
// 2^63 hint would still wedge the tenant until the refund lands.
constexpr std::uint64_t kMaxCostHint = 1ull << 40;

// The router currently answering admin `sessions`/`account` queries.
// Latest-wins (like every other singleton in the stack); cleared on
// destruction so a stale query gets an error, never a dangling pointer.
std::mutex g_admin_router_mutex;
Router* g_admin_router = nullptr;

}  // namespace

int ResolveVmParallelism(int requested, std::size_t vm_count) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("AVA_VM_PARALLELISM");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0 && parsed <= 1024) {
      return static_cast<int>(parsed);
    }
    AVA_LOG(ERROR) << "malformed AVA_VM_PARALLELISM '" << env
                   << "', using auto";
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    hw = 1;
  }
  const std::size_t vms = std::max<std::size_t>(vm_count, 1);
  return std::max(1, static_cast<int>(hw / vms));
}

Router::Router() : wfq_(&sched_clock_) {
  auto& registry = obs::MetricRegistry::Default();
  queue_wait_ns_ = registry.NewHistogram("router.queue_wait_ns");
  exec_ns_ = registry.NewHistogram("router.exec_ns");
  rate_wait_ns_ = registry.NewHistogram("router.rate_limit_wait_ns");
  lanes_active_ = registry.NewGauge("router.lanes_active");
  lane_queue_depth_ = registry.NewHistogram("router.lane_queue_depth");
  sessions_reaped_ = registry.NewCounter("sessions.reaped");
  crc_rejected_ = registry.NewCounter("router.crc_rejected");
  overload_rejected_ = registry.NewCounter("router.overload_rejected");
  arena_bytes_ = registry.NewCounter("router.arena_bytes");
  cached_bytes_ = registry.NewCounter("router.cached_bytes");
}

Router::~Router() {
  Stop();
  std::lock_guard<std::mutex> lock(g_admin_router_mutex);
  if (g_admin_router == this) {
    g_admin_router = nullptr;
  }
}

Status Router::AttachVm(VmId vm_id, TransportPtr transport,
                        std::shared_ptr<ApiServerSession> session,
                        const VmPolicy& policy) {
  // A dead channel under this id is replaced: its RX thread is joined
  // outside the lock (it only needs mutex_ transiently to finish exiting).
  std::shared_ptr<VmChannel> stale;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = channels_.find(vm_id);
    if (it != channels_.end()) {
      if (!it->second->dead) {
        return AlreadyExists("vm " + std::to_string(vm_id) +
                             " already attached");
      }
      stale = std::move(it->second);
      channels_.erase(it);
    }
  }
  if (stale != nullptr) {
    if (stale->rx_thread.joinable()) {
      stale->rx_thread.join();
    }
    stale.reset();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (channels_.count(vm_id) != 0) {
    return AlreadyExists("vm " + std::to_string(vm_id) + " already attached");
  }
  if (transport == nullptr || session == nullptr) {
    return InvalidArgument("transport and session are required");
  }
  auto channel = std::make_shared<VmChannel>();
  channel->vm_id = vm_id;
  channel->transport = std::move(transport);
  channel->session = std::move(session);
  // Capability negotiation: the session may only resolve arena descriptors
  // against the arena reachable through this VM's own transport.
  channel->session->SetArena(channel->transport->arena());
  channel->policy = policy;
  channel->weight = ResolveVmWeight(policy.weight);
  channel->max_parallelism =
      ResolveVmParallelism(policy.max_parallelism, channels_.size() + 1);
  channel->ingress.set_capacity(ResolveQueueDepth(policy.queue_depth));
  channel->call_bucket.Configure(policy.calls_per_sec);
  channel->byte_bucket.Configure(policy.bytes_per_sec);
  const std::string prefix = "router.vm" + std::to_string(vm_id) + ".";
  auto& registry = obs::MetricRegistry::Default();
  channel->metrics.calls_forwarded =
      registry.NewCounter(prefix + "calls_forwarded");
  channel->metrics.calls_rejected =
      registry.NewCounter(prefix + "calls_rejected");
  channel->metrics.messages_received =
      registry.NewCounter(prefix + "messages_received");
  channel->metrics.bytes_received =
      registry.NewCounter(prefix + "bytes_received");
  channel->metrics.rate_limit_wait_ns =
      registry.NewCounter(prefix + "rate_limit_wait_ns");
  channel->metrics.cost_vns = registry.NewCounter(prefix + "cost_vns");
  channel->account = ledger_.AccountFor(vm_id);
  // The scheduler joins the newcomer at the current active minimum so it
  // neither starves others nor forfeits its share.
  wfq_.AddTenant(vm_id, channel->weight, policy.device_vns_per_sec);
  VmChannel* raw = channel.get();
  channels_[vm_id] = std::move(channel);
  if (running_ && !stopping_) {
    StartIngestLocked(raw);
    EnsureWorkersLocked();
  }
  return OkStatus();
}

bool Router::EnsureLoopLocked() {
  if (loop_ != nullptr) {
    return true;
  }
  auto created = EventLoop::Create();
  if (!created.ok()) {
    AVA_LOG(ERROR) << "event loop unavailable, using reader threads: "
                   << created.status();
    return false;
  }
  loop_ = std::move(*created);
  loop_stop_ = false;
  loop_thread_ = std::thread([this] { LoopMain(); });
  return true;
}

void Router::StartIngestLocked(VmChannel* channel) {
  const int fd = channel->transport->readiness_fd();
  if (fd >= 0 && EnsureLoopLocked()) {
    if (Status added = loop_->Add(fd, channel->vm_id); added.ok()) {
      channel->on_loop = true;
      return;
    } else {
      AVA_LOG(ERROR) << "vm " << channel->vm_id
                     << ": epoll registration failed (" << added
                     << "), using reader thread";
    }
  }
  channel->rx_thread = std::thread([this, channel] { RxLoop(channel); });
}

void Router::Start() {
  // Expose the introspection plane before accepting traffic: serve
  // AVA_ADMIN_SOCK if configured and point `sessions`/`account` here.
  obs::AdminChannel::EnsureDefaultServing();
  RegisterAdmin(&obs::AdminChannel::Default());
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) {
    return;
  }
  running_ = true;
  stopping_ = false;
  for (auto& [id, channel] : channels_) {
    StartIngestLocked(channel.get());
  }
  EnsureWorkersLocked();
}

void Router::EnsureWorkersLocked() {
  if (!running_ || stopping_) {
    return;
  }
  std::size_t target = 0;
  for (const auto& [id, channel] : channels_) {
    if (!channel->dead) {
      target += static_cast<std::size_t>(channel->max_parallelism);
    }
  }
  target = std::min(target, kMaxWorkers);
  while (workers_.size() < target) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void Router::Stop() {
  std::vector<std::thread> workers;
  std::thread loop_thread;
  EventLoop* loop = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) {
      return;
    }
    stopping_ = true;
    loop_stop_ = true;
    loop = loop_.get();
    for (auto& [id, channel] : channels_) {
      channel->transport->Close();
    }
    workers.swap(workers_);
    loop_thread.swap(loop_thread_);
  }
  if (loop != nullptr) {
    loop->Wake();
  }
  sched_cv_.notify_all();
  drain_cv_.notify_all();
  if (loop_thread.joinable()) {
    loop_thread.join();
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  for (auto& [id, channel] : channels_) {
    if (channel->rx_thread.joinable()) {
      channel->rx_thread.join();
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

Status Router::PauseVm(VmId vm_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = channels_.find(vm_id);
  if (it == channels_.end()) {
    return NotFound("unknown vm " + std::to_string(vm_id));
  }
  VmChannel* channel = it->second.get();
  channel->paused = true;
  UpdateRunnableLocked(channel);
  // Drain every in-flight call.
  drain_cv_.wait(lock, [&] { return channel->in_flight == 0 || stopping_; });
  return OkStatus();
}

Status Router::QuiesceVm(VmId vm_id, std::int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = channels_.find(vm_id);
  if (it == channels_.end()) {
    return NotFound("unknown vm " + std::to_string(vm_id));
  }
  VmChannel* channel = it->second.get();
  const auto quiet = [&] {
    return stopping_ || channel->dead ||
           (channel->ingress.queued() == 0 && channel->in_flight == 0);
  };
  if (timeout_ms > 0) {
    if (!drain_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                            quiet)) {
      return DeadlineExceeded("vm " + std::to_string(vm_id) +
                              " did not quiesce in " +
                              std::to_string(timeout_ms) + "ms");
    }
  } else {
    drain_cv_.wait(lock, quiet);
  }
  if (channel->dead) {
    return Unavailable("vm " + std::to_string(vm_id) + " died while draining");
  }
  if (stopping_) {
    return Unavailable("router stopping");
  }
  // Same critical section as the drain check: no call can slip in between
  // "queue empty" and "paused".
  channel->paused = true;
  UpdateRunnableLocked(channel);
  return OkStatus();
}

Status Router::DetachVm(VmId vm_id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = channels_.find(vm_id);
    if (it == channels_.end()) {
      return NotFound("unknown vm " + std::to_string(vm_id));
    }
    MarkDeadLocked(it->second.get());
  }
  drain_cv_.notify_all();
  sched_cv_.notify_all();
  ReapDeadVms();
  return OkStatus();
}

Status Router::ResumeVm(VmId vm_id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = channels_.find(vm_id);
    if (it == channels_.end()) {
      return NotFound("unknown vm " + std::to_string(vm_id));
    }
    it->second->paused = false;
    UpdateRunnableLocked(it->second.get());
  }
  sched_cv_.notify_all();
  return OkStatus();
}

Result<Router::VmStats> Router::StatsFor(VmId vm_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = channels_.find(vm_id);
  if (it == channels_.end()) {
    return NotFound("unknown vm " + std::to_string(vm_id));
  }
  const VmMetrics& m = it->second->metrics;
  VmStats stats;
  stats.calls_forwarded = m.calls_forwarded->Value();
  stats.calls_rejected = m.calls_rejected->Value();
  stats.messages_received = m.messages_received->Value();
  stats.bytes_received = m.bytes_received->Value();
  stats.rate_limit_wait_ns =
      static_cast<std::int64_t>(m.rate_limit_wait_ns->Value());
  stats.cost_vns = static_cast<std::int64_t>(m.cost_vns->Value());
  return stats;
}

void Router::RegisterAdmin(obs::AdminChannel* admin) {
  {
    std::lock_guard<std::mutex> lock(g_admin_router_mutex);
    g_admin_router = this;
  }
  // Handlers capture nothing: they resolve the live router through the
  // guarded global, so a query after this router dies gets an error line,
  // never a dangling pointer.
  admin->RegisterCommand("sessions", [](const std::string&) -> std::string {
    std::lock_guard<std::mutex> lock(g_admin_router_mutex);
    if (g_admin_router == nullptr) {
      return "ERR no live router";
    }
    return g_admin_router->SessionsText();
  });
  admin->RegisterCommand("account", [](const std::string&) -> std::string {
    std::lock_guard<std::mutex> lock(g_admin_router_mutex);
    if (g_admin_router == nullptr) {
      return "ERR no live router";
    }
    return g_admin_router->ledger().Text();
  });
}

std::string Router::SessionsText() const {
  // Breaker state lives guest-side; it reaches the router only through the
  // guest.vm<id>.breaker_open registry gauge, so snapshot the registry
  // first (its mutex is independent of ours — no ordering hazard).
  const obs::MetricsSnapshot metrics =
      obs::MetricRegistry::Default().Snapshot();
  std::ostringstream out;
  out << "vm state lanes ready queued in_flight parallelism forwarded "
         "rejected cost_vns breaker_open xfer_entries xfer_bytes "
         "xfer_budget weight deficit "
         "dev_bytes host_bytes comp_bytes disk_bytes\n";
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const VmChannel*> rows;
  rows.reserve(channels_.size());
  for (const auto& [id, channel] : channels_) {
    rows.push_back(channel.get());
  }
  std::sort(rows.begin(), rows.end(),
            [](const VmChannel* a, const VmChannel* b) {
              return a->vm_id < b->vm_id;
            });
  for (const VmChannel* channel : rows) {
    const char* state =
        channel->dead ? "dead" : (channel->paused ? "paused" : "running");
    std::int64_t breaker_open = 0;
    if (const auto* cell = metrics.Find(
            "guest.vm" + std::to_string(channel->vm_id) + ".breaker_open");
        cell != nullptr && cell->has_gauge) {
      breaker_open = cell->gauge_sum;
    }
    // Swap-tier residency reaches the router the same way breaker state
    // does: the swap manager refreshes swap.vm<id>.* gauges each pass.
    auto tier_gauge = [&](const char* tier) -> std::int64_t {
      if (const auto* cell =
              metrics.Find("swap.vm" + std::to_string(channel->vm_id) + "." +
                           tier + "_bytes");
          cell != nullptr && cell->has_gauge) {
        return cell->gauge_sum;
      }
      return 0;
    };
    const TransferCache& cache = channel->session->context().xfer_cache();
    const double deficit =
        wfq_.HasTenant(channel->vm_id) ? wfq_.DeficitOf(channel->vm_id) : 0.0;
    out << channel->vm_id << " " << state << " " << channel->ingress.lanes()
        << " " << channel->ingress.ready() << " "
        << channel->ingress.queued() << " " << channel->in_flight << " "
        << channel->max_parallelism << " "
        << channel->metrics.calls_forwarded->Value() << " "
        << channel->metrics.calls_rejected->Value() << " "
        << channel->metrics.cost_vns->Value() << " " << breaker_open << " "
        << cache.entries() << " " << cache.size_bytes() << " "
        << cache.budget_bytes() << " " << channel->weight << " "
        << static_cast<std::int64_t>(deficit) << " " << tier_gauge("device")
        << " " << tier_gauge("host") << " " << tier_gauge("compressed")
        << " " << tier_gauge("disk") << "\n";
  }
  return out.str();
}

Result<int> Router::ParallelismFor(VmId vm_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = channels_.find(vm_id);
  if (it == channels_.end()) {
    return NotFound("unknown vm " + std::to_string(vm_id));
  }
  return it->second->max_parallelism;
}

void Router::UpdateRunnableLocked(VmChannel* channel) {
  const bool runnable = !channel->paused && !channel->dead &&
                        channel->ingress.HasReady() &&
                        channel->in_flight < channel->max_parallelism;
  wfq_.SetRunnable(channel->vm_id, runnable);
}

void Router::MaybeMarkDeadLocked(VmChannel* channel) {
  // Graceful degradation: once the guest's transport is gone and every
  // queued call has drained, the session is dead — mark it reaped so
  // ReapDeadVms() (or a reattach) can collect it.
  if (!channel->dead && channel->rx_done &&
      channel->ingress.queued() == 0 && channel->in_flight == 0) {
    MarkDeadLocked(channel);
  }
}

void Router::MarkDeadLocked(VmChannel* channel) {
  if (channel->dead) {
    return;
  }
  channel->dead = true;
  wfq_.SetRunnable(channel->vm_id, false);
  wfq_.RemoveTenant(channel->vm_id);
  if (channel->on_loop && loop_ != nullptr) {
    const int fd = channel->transport->readiness_fd();
    if (fd >= 0) {
      loop_->Remove(fd);
    }
  }
  sessions_reaped_->Increment();
  obs::FlightRecorder::Default().RecordEvent(
      obs::FlightKind::kVmDead, static_cast<std::uint32_t>(channel->vm_id),
      0, 0, 0, 0);
  channel->transport->Close();  // unblocks the RX thread if still alive
  AVA_LOG(INFO) << "vm " << channel->vm_id << ": session reaped";
}

std::size_t Router::ReapDeadVms() {
  std::vector<std::shared_ptr<VmChannel>> dead;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = channels_.begin(); it != channels_.end();) {
      if (it->second->dead) {
        dead.push_back(std::move(it->second));
        it = channels_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock: the exiting threads may still touch mutex_.
  for (auto& channel : dead) {
    if (channel->rx_thread.joinable()) {
      channel->rx_thread.join();
    }
  }
  return dead.size();
}

void Router::RejectCall(VmChannel* channel, const CallHeader& header,
                        StatusCode code) {
  channel->metrics.calls_rejected->Increment();
  if (channel->account != nullptr) {
    channel->account->RecordCall(0, 0, 0, static_cast<std::uint8_t>(code));
  }
  obs::FlightRecorder::Default().RecordEvent(
      obs::FlightKind::kReject, static_cast<std::uint32_t>(channel->vm_id),
      header.trace_id, header.call_id,
      static_cast<std::uint64_t>(header.api_id) << 32 | header.func_id,
      static_cast<std::uint16_t>(code));
  if (header.is_async()) {
    return;  // nothing to reply to
  }
  ReplyHeader reply;
  reply.call_id = header.call_id;
  reply.vm_id = header.vm_id;
  reply.status_code = static_cast<std::int32_t>(code);
  ReplyBuilder builder(reply);
  Bytes frame = std::move(builder).Finish();
  SealFrame(&frame);
  (void)channel->transport->Send(frame);
}

Bytes Router::RejectUnitLocked(VmChannel* channel, const Bytes& unit) {
  overload_rejected_->Increment();
  const StatusCode code = StatusCode::kResourceExhausted;
  auto kind = PeekKind(unit);
  if (kind.ok() && *kind == MsgKind::kBatch) {
    // A whole batch frame (parallelism 1). Batches are async-only: no reply
    // is owed, but every constituent call lands in the books.
    std::uint64_t n = 1;
    if (auto calls = DecodeBatch(unit); calls.ok()) {
      n = calls->size();
    }
    channel->metrics.calls_rejected->Increment(n);
    if (channel->account != nullptr) {
      for (std::uint64_t i = 0; i < n; ++i) {
        channel->account->RecordCall(0, 0, 0, static_cast<std::uint8_t>(code));
      }
    }
    obs::FlightRecorder::Default().RecordEvent(
        obs::FlightKind::kReject, static_cast<std::uint32_t>(channel->vm_id),
        0, 0, 0, static_cast<std::uint16_t>(code));
    return Bytes();
  }
  auto decoded = DecodeCall(unit);
  if (!decoded.ok()) {
    channel->metrics.calls_rejected->Increment();
    return Bytes();
  }
  const CallHeader& header = decoded->header;
  channel->metrics.calls_rejected->Increment();
  if (channel->account != nullptr) {
    channel->account->RecordCall(0, 0, 0, static_cast<std::uint8_t>(code));
  }
  obs::FlightRecorder::Default().RecordEvent(
      obs::FlightKind::kReject, static_cast<std::uint32_t>(channel->vm_id),
      header.trace_id, header.call_id,
      static_cast<std::uint64_t>(header.api_id) << 32 | header.func_id,
      static_cast<std::uint16_t>(code));
  if (header.is_async()) {
    return Bytes();
  }
  ReplyHeader reply;
  reply.call_id = header.call_id;
  reply.vm_id = header.vm_id;
  reply.status_code = static_cast<std::int32_t>(code);
  ReplyBuilder builder(reply);
  return std::move(builder).Finish();
}

bool Router::VerifyFrame(VmChannel* channel, Bytes message, IngestBatch* out) {
  const bool sampling = obs::SamplingEnabled();
  out->rx_ns = sampling ? MonotonicNowNs() : 0;
  // ---- verification ----
  channel->metrics.messages_received->Increment();
  channel->metrics.bytes_received->Increment(message.size());
  // Checksum first: nothing in a corrupt frame (not even the call id) can
  // be trusted, so there is no one to send an error reply to — reject and
  // let the guest's deadline/retry machinery handle the loss per-call.
  if (Status crc = CheckAndStripFrame(&message); !crc.ok()) {
    crc_rejected_->Increment();
    channel->metrics.calls_rejected->Increment();
    AVA_LOG_EVERY_N(WARNING, 64)
        << "vm " << channel->vm_id << ": corrupt frame rejected";
    return false;
  }
  if (message.size() > channel->policy.max_message_bytes) {
    AVA_LOG_EVERY_N(WARNING, 64) << "vm " << channel->vm_id
                                 << ": oversized message rejected";
    // The frame verified, so its header is trustworthy enough to answer:
    // a sync caller gets a classified error instead of a hang.
    if (auto oversized = DecodeCall(message); oversized.ok()) {
      RejectCall(channel, oversized->header, StatusCode::kInvalidArgument);
    }
    return false;
  }
  auto kind = PeekKind(message);
  if (!kind.ok()) {
    AVA_LOG_EVERY_N(WARNING, 64)
        << "vm " << channel->vm_id << ": unparseable message";
    return false;
  }
  // max_parallelism is written before ingest starts, constant after.
  const bool lanes_on = channel->max_parallelism > 1;
  const std::size_t frame_bytes = message.size();
  std::uint64_t bulk_bytes = 0;
  std::uint64_t cached_bytes = 0;
  // The dispatch units this frame expands to: (message, lane key). A batch
  // splits into per-call units when the VM runs lanes concurrently so each
  // call lands on its object's lane; at parallelism 1 everything shares
  // lane 0 and the batch stays whole — identical behavior to the classic
  // serial executor.
  if (*kind == MsgKind::kCall) {
    if (auto bulk = PeekCallBulkBytes(message); bulk.ok()) {
      bulk_bytes = *bulk;
    }
    if (auto cached = PeekCallCachedBytes(message); cached.ok()) {
      cached_bytes = *cached;
    }
    auto decoded = DecodeCall(message);
    if (!decoded.ok()) {
      AVA_LOG_EVERY_N(WARNING, 64)
          << "vm " << channel->vm_id << ": malformed call";
      return false;
    }
    if (decoded->header.vm_id != channel->vm_id) {
      // A guest claiming another VM's identity: the core isolation check.
      AVA_LOG_EVERY_N(WARNING, 64)
          << "vm " << channel->vm_id << ": spoofed vm id "
          << decoded->header.vm_id;
      RejectCall(channel, decoded->header, StatusCode::kPermissionDenied);
      return false;
    }
    const std::uint64_t lane_key = lanes_on ? decoded->header.lane_key : 0;
    out->units.emplace_back(std::move(message), lane_key);
  } else if (*kind == MsgKind::kBatch) {
    auto calls = DecodeBatch(message);
    if (!calls.ok()) {
      return false;
    }
    out->call_count = static_cast<double>(calls->size());
    bool ok = true;
    std::vector<std::uint64_t> lane_keys;
    lane_keys.reserve(calls->size());
    for (const Bytes& call : *calls) {
      auto decoded = DecodeCall(call);
      if (!decoded.ok() || decoded->header.vm_id != channel->vm_id ||
          !decoded->header.is_async()) {
        ok = false;
        break;
      }
      lane_keys.push_back(decoded->header.lane_key);
    }
    if (!ok) {
      AVA_LOG_EVERY_N(WARNING, 64)
          << "vm " << channel->vm_id << ": bad batch dropped";
      return false;
    }
    if (lanes_on) {
      for (std::size_t i = 0; i < calls->size(); ++i) {
        out->units.emplace_back(std::move((*calls)[i]), lane_keys[i]);
      }
    } else {
      out->units.emplace_back(std::move(message), 0);
    }
  } else {
    return false;  // replies never flow guest -> router
  }
  // Arena pass-through bytes never cross the command ring, but they are
  // still data the VM moved: charge them against the same byte budget so
  // the out-of-band path cannot launder bandwidth past policy.
  if (bulk_bytes > 0) {
    arena_bytes_->Increment(bulk_bytes);
  }
  // Transfer-cache hits are the opposite case: the named bytes never move
  // at all — the server already holds them — so they are counted for
  // observability but NOT charged against the byte budget. Policed guests
  // keep their full bandwidth allotment for bytes that actually travel.
  if (cached_bytes > 0) {
    cached_bytes_->Increment(cached_bytes);
  }
  out->charge_bytes =
      static_cast<double>(frame_bytes) + static_cast<double>(bulk_bytes);
  return true;
}

void Router::EnqueueBatch(VmChannel* channel, IngestBatch* batch,
                          std::int64_t waited_ns) {
  const bool sampling = obs::SamplingEnabled();
  std::vector<Bytes> error_replies;
  std::size_t enqueued = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    channel->metrics.rate_limit_wait_ns->Increment(
        static_cast<std::uint64_t>(waited_ns));
    wfq_.TouchActivity(channel->vm_id);
    for (auto& [unit, lane_key] : batch->units) {
      // ---- admission control ----
      if (channel->ingress.Full()) {
        Bytes reply = RejectUnitLocked(channel, unit);
        if (!reply.empty()) {
          error_replies.push_back(std::move(reply));
        }
        continue;
      }
      channel->ingress.Push(lane_key,
                            PendingCall{std::move(unit), batch->rx_ns});
      ++enqueued;
      if (sampling) {
        lane_queue_depth_->Record(
            static_cast<std::int64_t>(channel->ingress.LaneDepth(lane_key)));
      }
    }
    UpdateRunnableLocked(channel);
  }
  // One new dispatchable unit needs one worker; wake the whole pool only
  // when a batch split fanned out across lanes.
  if (enqueued == 1) {
    sched_cv_.notify_one();
  } else if (enqueued > 1) {
    sched_cv_.notify_all();
  }
  for (Bytes& reply : error_replies) {
    SealFrame(&reply);
    (void)channel->transport->Send(reply);
  }
}

void Router::RxLoop(VmChannel* channel) {
  while (true) {
    auto message = channel->transport->Recv();
    if (!message.ok()) {
      break;  // transport closed
    }
    IngestBatch batch;
    if (!VerifyFrame(channel, std::move(*message), &batch)) {
      continue;
    }
    // ---- rate limiting (blocks this VM's stream only) ----
    std::int64_t waited = channel->call_bucket.Acquire(batch.call_count);
    waited += channel->byte_bucket.Acquire(batch.charge_bytes);
    if (waited > 0 && obs::SamplingEnabled()) {
      rate_wait_ns_->Record(waited);
    }
    EnqueueBatch(channel, &batch, waited);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    channel->rx_done = true;
    MaybeMarkDeadLocked(channel);
  }
  sched_cv_.notify_all();
  drain_cv_.notify_all();
}

// ---------------------- event-driven front end -----------------------------

void Router::LoopMain() {
  // Channels owed a drain pass. A channel that still had frames after its
  // per-visit cap is re-queued behind its siblings — round-robin across hot
  // sessions, so one flood cannot monopolize the loop.
  std::deque<VmId> work;
  while (true) {
    int timeout_ms = -1;
    if (!work.empty()) {
      timeout_ms = 0;
    } else if (!parked_vms_.empty()) {
      timeout_ms = 1;  // token-bucket refills happen on wall time
    }
    const auto& events = loop_->Wait(timeout_ms);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (loop_stop_) {
        return;
      }
    }
    for (const auto& event : events) {
      work.push_back(static_cast<VmId>(event.token));
    }
    if (!parked_vms_.empty()) {
      RetryParked(&work);
    }
    const std::size_t slice = work.size();
    for (std::size_t i = 0; i < slice; ++i) {
      const VmId vm = work.front();
      work.pop_front();
      // Pin the channel before draining outside mutex_: a concurrent reap
      // may erase it from the map but cannot free it under us.
      std::shared_ptr<VmChannel> channel;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (loop_stop_) {
          return;
        }
        auto it = channels_.find(vm);
        if (it == channels_.end() || !it->second->on_loop ||
            it->second->dead) {
          continue;
        }
        channel = it->second;
      }
      if (channel->parked != nullptr) {
        continue;  // fd is muted until the parked frame wins its tokens
      }
      if (DrainChannel(channel)) {
        work.push_back(vm);
      }
    }
  }
}

bool Router::DrainChannel(const std::shared_ptr<VmChannel>& channel) {
  // Ack BEFORE draining: a doorbell ring that lands after this point
  // re-arms readiness, so no wakeup is lost between drain and re-wait.
  channel->transport->AckReadiness();
  // Pull the whole published batch in one transport pass (a record-ring CQ
  // hands it over under a single lock), verify and rate-limit frame by
  // frame, and enqueue everything admitted through ONE EnqueueBatch — one
  // router-mutex acquisition and one scheduler wakeup per drain, not per
  // frame.
  std::vector<Bytes> frames;
  auto reaped = channel->transport->TryRecvBatch(&frames, kMaxFramesPerVisit);
  if (!reaped.ok()) {
    if (reaped.status().code() == StatusCode::kNotFound) {
      return false;  // dry (possibly a spurious wakeup — benign)
    }
    // Unavailable: the transport is closed; this session's ingest is done.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      channel->rx_done = true;
      if (loop_ != nullptr) {
        const int fd = channel->transport->readiness_fd();
        if (fd >= 0) {
          loop_->Remove(fd);
        }
      }
      MaybeMarkDeadLocked(channel.get());
    }
    sched_cv_.notify_all();
    drain_cv_.notify_all();
    return false;
  }
  IngestBatch admitted;
  admitted.call_count = 0.0;
  bool have_admitted = false;
  bool parked = false;
  for (Bytes& message : frames) {
    IngestBatch batch;
    if (!VerifyFrame(channel.get(), std::move(message), &batch)) {
      continue;
    }
    if (parked) {
      // A frame behind the parked one was already reaped off the ring; it
      // must not overtake, so it folds into the parked batch. Its tokens
      // were never attempted — downgrade the parked batch to fully unpaid
      // (refunding the head's call tokens if taken) so the retry charges
      // the merged totals uniformly.
      if (channel->parked_call_paid) {
        channel->call_bucket.Refund(channel->parked->call_count);
        channel->parked_call_paid = false;
      }
      channel->parked->units.insert(
          channel->parked->units.end(),
          std::make_move_iterator(batch.units.begin()),
          std::make_move_iterator(batch.units.end()));
      channel->parked->call_count += batch.call_count;
      channel->parked->charge_bytes += batch.charge_bytes;
      continue;
    }
    // ---- rate limiting, non-blocking ----
    // The loop thread must never sleep on one VM's budget: a frame that
    // cannot take its tokens parks the channel (epoll-muted) and the loop
    // retries on its 1 ms tick. Frames admitted before the parked one keep
    // their tokens and are enqueued below.
    const bool call_ok = channel->call_bucket.TryAcquire(batch.call_count);
    const bool bytes_ok =
        call_ok && channel->byte_bucket.TryAcquire(batch.charge_bytes);
    if (!call_ok || !bytes_ok) {
      ParkChannel(channel.get(), std::move(batch), call_ok);
      parked = true;
      continue;
    }
    admitted.units.insert(admitted.units.end(),
                          std::make_move_iterator(batch.units.begin()),
                          std::make_move_iterator(batch.units.end()));
    admitted.call_count += batch.call_count;
    admitted.charge_bytes += batch.charge_bytes;
    if (!have_admitted) {
      admitted.rx_ns = batch.rx_ns;
      have_admitted = true;
    }
  }
  if (have_admitted && !admitted.units.empty()) {
    EnqueueBatch(channel.get(), &admitted, 0);
  }
  if (parked) {
    return false;  // fd is muted; the parked batch retries on the tick
  }
  return *reaped >= static_cast<std::size_t>(kMaxFramesPerVisit);
}

void Router::ParkChannel(VmChannel* channel, IngestBatch batch,
                         bool call_paid) {
  channel->parked = std::make_unique<IngestBatch>(std::move(batch));
  channel->parked_call_paid = call_paid;
  channel->park_start_ns = MonotonicNowNs();
  if (loop_ != nullptr) {
    const int fd = channel->transport->readiness_fd();
    if (fd >= 0) {
      (void)loop_->Mod(fd, channel->vm_id, /*want_read=*/false);
    }
  }
  parked_vms_.push_back(channel->vm_id);
}

void Router::RetryParked(std::deque<VmId>* work) {
  std::vector<VmId> still_parked;
  for (const VmId vm : parked_vms_) {
    std::shared_ptr<VmChannel> channel;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = channels_.find(vm);
      if (it != channels_.end() && !it->second->dead) {
        channel = it->second;
      }
    }
    if (channel == nullptr || channel->parked == nullptr) {
      continue;  // channel died or was replaced; the parked frame is gone
    }
    // Saturating: a parked batch that folded many frames (or one batch
    // message with many calls) can owe more tokens than the bucket's burst
    // capacity; plain TryAcquire would starve it forever. Once the bucket
    // is full it is admitted in debt — the long-run rate still holds.
    if (!channel->parked_call_paid) {
      if (!channel->call_bucket.TryAcquireSaturating(
              channel->parked->call_count)) {
        still_parked.push_back(vm);
        continue;
      }
      channel->parked_call_paid = true;
    }
    if (!channel->byte_bucket.TryAcquireSaturating(
            channel->parked->charge_bytes)) {
      still_parked.push_back(vm);
      continue;
    }
    const std::int64_t waited = MonotonicNowNs() - channel->park_start_ns;
    if (waited > 0 && obs::SamplingEnabled()) {
      rate_wait_ns_->Record(waited);
    }
    auto batch = std::move(channel->parked);
    channel->parked_call_paid = false;
    EnqueueBatch(channel.get(), batch.get(), waited);
    if (loop_ != nullptr) {
      const int fd = channel->transport->readiness_fd();
      if (fd >= 0) {
        (void)loop_->Mod(fd, vm, /*want_read=*/true);
      }
    }
    // The drain that parked us may have stopped at the per-visit cap with
    // frames still on the ring and the transport's doorbell disarmed (a
    // record-ring TryRecvBatch only re-arms when it goes dry). The muted,
    // already-drained eventfd will never fire for those leftovers, so force
    // a drain pass now that the channel is runnable again.
    work->push_back(vm);
  }
  parked_vms_.swap(still_parked);
}

// ------------------------------ dispatch -----------------------------------

void Router::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    std::uint64_t vm = 0;
    if (!wfq_.PickNext(&vm)) {
      if (wfq_.throttle_pending() && !sched_poller_active_) {
        // Pacing and window-veto eligibility change with wall time, not
        // only with state transitions — but one timed poller is enough to
        // notice. The rest of the pool blocks until an enqueue, a
        // completion, or the poller's dispatch signals it.
        sched_poller_active_ = true;
        sched_cv_.wait_for(lock, std::chrono::microseconds(200));
        sched_poller_active_ = false;
      } else {
        sched_cv_.wait(lock);
      }
      continue;
    }
    // If other tenants are still time-gated, hand the polling duty to
    // another worker before this one commits to a dispatch.
    if (wfq_.throttle_pending()) {
      sched_cv_.notify_one();
    }
    auto it = channels_.find(vm);
    if (it == channels_.end() || it->second->dead) {
      // Scheduler/channel state raced; silence the stale tenant and rescan.
      wfq_.SetRunnable(vm, false);
      continue;
    }
    DispatchOne(it->second.get(), lock);
  }
}

void Router::DispatchOne(VmChannel* channel,
                         std::unique_lock<std::mutex>& lock) {
  std::uint64_t lane_key = 0;
  PendingCall pending;
  if (!channel->ingress.PopReady(&lane_key, &pending)) {
    UpdateRunnableLocked(channel);  // stale runnable bit; resync
    return;
  }
  ++channel->in_flight;
  channel->metrics.calls_forwarded->Increment();
  lanes_active_->Add(1);
  // Pre-charge the CAvA-emitted cost hint (CallHeader::cost_hint) so a
  // burst of expensive calls cannot all look free until their completions
  // land; the completion charge below reconciles hint against the
  // server-accounted truth.
  std::int64_t hint = 0;
  if (auto peeked = PeekCallCostHint(pending.message); peeked.ok()) {
    hint = static_cast<std::int64_t>(std::min(*peeked, kMaxCostHint));
  }
  wfq_.Charge(channel->vm_id, hint);
  UpdateRunnableLocked(channel);
  lock.unlock();

  Bytes message = std::move(pending.message);
  const bool sampling = obs::SamplingEnabled();
  const std::int64_t dispatch_ns = sampling ? MonotonicNowNs() : 0;
  if (sampling) {
    queue_wait_ns_->Record(dispatch_ns - pending.rx_ns);
  }

  std::int64_t cost = 0;
  std::uint8_t ledger_status = 0;
  auto reply = channel->session->Execute(message, &cost);
  if (reply.ok() && reply->has_value()) {
    // The reply carries the server-accounted cost; prefer it.
    auto peeked = PeekReplyCost(**reply);
    if (peeked.ok()) {
      cost = *peeked;
    }
    if (auto status = PeekReplyStatus(**reply); status.ok()) {
      ledger_status = static_cast<std::uint8_t>(
          std::clamp<std::int32_t>(*status, 0, 255));
    }
    // Stamp the router hops into the reply so the guest can close the
    // span, and emit the router's own view of the queue wait.
    if (sampling) {
      auto trace_id = PeekReplyTraceId(**reply);
      if (trace_id.ok() && *trace_id != 0) {
        PatchReplyRouterTrace(&**reply, pending.rx_ns, dispatch_ns);
        obs::Tracer::Default().RecordSpan(
            obs::TraceLane::kRouter, "router.queue", channel->vm_id,
            *trace_id, pending.rx_ns, dispatch_ns,
            {{"queue_wait_ns", dispatch_ns - pending.rx_ns}});
      }
    }
  } else if (!reply.ok()) {
    ledger_status = static_cast<std::uint8_t>(reply.status().code());
    AVA_LOG(WARNING) << "vm " << channel->vm_id
                     << ": execute failed: " << reply.status();
    // A sync caller is blocked on this call: answer with a classified
    // error frame rather than leaving it to its deadline.
    if (auto call = DecodeCall(message);
        call.ok() && !call->header.is_async()) {
      ReplyHeader error;
      error.call_id = call->header.call_id;
      error.vm_id = call->header.vm_id;
      error.status_code = static_cast<std::int32_t>(reply.status().code());
      ReplyBuilder builder(error);
      reply = std::optional<Bytes>(std::move(builder).Finish());
    }
  }
  if (sampling) {
    exec_ns_->Record(MonotonicNowNs() - dispatch_ns);
  }

  // Ledger: every completion (success or failure) lands in the VM's
  // account — relaxed atomics into a per-thread shard, no locks, cheap
  // enough for the null-call path. Wire bytes = frame + arena pass-through;
  // cache-elided bytes are tracked separately (never charged).
  {
    std::uint64_t wire_bytes = message.size();
    if (auto bulk = PeekCallBulkBytes(message); bulk.ok()) {
      wire_bytes += *bulk;
    }
    std::uint64_t cached = 0;
    if (auto c = PeekCallCachedBytes(message); c.ok()) {
      cached = *c;
    }
    channel->account->RecordCall(cost, wire_bytes, cached, ledger_status);
  }

  // Account BEFORE replying: a guest that receives the reply must observe
  // the call's cost in the router's books. The scheduler charge reconciles
  // the dispatch-time hint against the server-accounted cost (net: cost).
  lock.lock();
  wfq_.Charge(channel->vm_id, cost - hint);
  channel->metrics.cost_vns->Increment(
      static_cast<std::uint64_t>(std::max<std::int64_t>(cost, 0)));
  channel->ingress.FinishLane(lane_key);
  --channel->in_flight;
  lanes_active_->Add(-1);
  UpdateRunnableLocked(channel);
  MaybeMarkDeadLocked(channel);
  // This worker loops back to PickNext itself, so at most one *additional*
  // worker can use the freed capacity — waking the whole pool on every
  // completion just burns context switches on small calls.
  if (channel->ingress.HasReady() &&
      channel->in_flight < channel->max_parallelism) {
    sched_cv_.notify_one();
  }
  if (channel->in_flight == 0) {
    drain_cv_.notify_all();
  }
  if (reply.ok() && reply->has_value()) {
    lock.unlock();
    SealFrame(&**reply);
    const Status sent = channel->transport->Send(**reply);
    lock.lock();
    if (!sent.ok()) {
      // The guest can no longer hear us; finish draining and reap.
      AVA_LOG_EVERY_N(WARNING, 64)
          << "vm " << channel->vm_id << ": reply send failed: " << sent;
    }
  }
}

}  // namespace ava
