#include "src/router/wfq.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/common/log.h"

namespace ava {

WfqScheduler::WfqScheduler(const SchedClock* clock, WfqOptions options)
    : clock_(clock), options_(options) {}

WfqScheduler::Tenant* WfqScheduler::Find(std::uint64_t id) {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : &it->second;
}

const WfqScheduler::Tenant* WfqScheduler::Find(std::uint64_t id) const {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : &it->second;
}

void WfqScheduler::DecayDebt(Tenant* t, std::int64_t now) const {
  if (t->allot_per_sec <= 0.0) {
    return;
  }
  const double elapsed_s = static_cast<double>(now - t->debt_decay_ns) * 1e-9;
  t->debt_decay_ns = now;
  t->vns_debt = std::max(0.0, t->vns_debt - elapsed_s * t->allot_per_sec);
}

bool WfqScheduler::MinActiveKey(std::int64_t now, const Tenant* skip,
                                double* key) const {
  bool found = false;
  for (const auto& [id, t] : tenants_) {
    if (&t == skip) {
      continue;
    }
    const bool active =
        t.runnable || now - t.last_activity_ns < options_.active_window_ns;
    if (!active) {
      continue;
    }
    // A contender currently held by its own allotment must not stall (or
    // anchor) anyone: its stale low vruntime does not represent demand.
    if (t.allot_per_sec > 0.0) {
      const double debt =
          t.vns_debt - static_cast<double>(now - t.debt_decay_ns) * 1e-9 *
                           t.allot_per_sec;
      if (debt > 0.0) {
        continue;
      }
    }
    const double k = t.vruntime / t.weight;
    if (!found || k < *key) {
      *key = k;
      found = true;
    }
  }
  return found;
}

void WfqScheduler::AddTenant(std::uint64_t id, double weight,
                             double allot_vns_per_sec) {
  const std::int64_t now = clock_->NowNs();
  const double w = std::max(weight, 1e-9);
  if (Tenant* existing = Find(id); existing != nullptr) {
    existing->weight = w;
    existing->allot_per_sec = allot_vns_per_sec;
    return;
  }
  Tenant t;
  t.weight = w;
  t.allot_per_sec = allot_vns_per_sec;
  t.debt_decay_ns = now;
  t.last_activity_ns = now;
  // Join at the active minimum so the newcomer neither starves incumbents
  // (an ancient key would veto them) nor forfeits its share.
  double min_key = 0.0;
  if (MinActiveKey(now, nullptr, &min_key)) {
    t.vruntime = min_key * t.weight;
  }
  tenants_.emplace(id, t);
  ring_.push_back(id);
}

void WfqScheduler::RemoveTenant(std::uint64_t id) {
  if (tenants_.erase(id) == 0) {
    return;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    if (ring_[i] == id) {
      ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(i));
      if (i < cursor_) {
        --cursor_;
      }
      break;
    }
  }
  if (cursor_ >= ring_.size()) {
    cursor_ = 0;
  }
}

bool WfqScheduler::HasTenant(std::uint64_t id) const {
  return tenants_.count(id) != 0;
}

void WfqScheduler::SetRunnable(std::uint64_t id, bool runnable) {
  Tenant* t = Find(id);
  if (t == nullptr || t->runnable == runnable) {
    return;
  }
  if (runnable) {
    const std::int64_t now = clock_->NowNs();
    if (now - t->last_activity_ns >= options_.active_window_ns) {
      // Re-joining after a real idle gap: snap the vruntime forward to the
      // active floor. Without this, the stale low key would veto every
      // incumbent until the returner "caught up" — unbounded backlog credit.
      double min_key = 0.0;
      if (MinActiveKey(now, t, &min_key)) {
        t->vruntime = std::max(t->vruntime, min_key * t->weight);
      }
    }
    t->runnable = true;
    t->last_activity_ns = now;
  } else {
    t->runnable = false;
    // Classic DRR: leaving the runnable set forfeits banked credit (at most
    // one quantum round); overdraft from post-paid charging persists.
    t->deficit = std::min(t->deficit, 0.0);
  }
}

void WfqScheduler::TouchActivity(std::uint64_t id) {
  if (Tenant* t = Find(id); t != nullptr) {
    t->last_activity_ns = clock_->NowNs();
  }
}

void WfqScheduler::Charge(std::uint64_t id, std::int64_t cost_vns) {
  Tenant* t = Find(id);
  if (t == nullptr) {
    return;  // died with calls in flight
  }
  const std::int64_t now = clock_->NowNs();
  const double c = static_cast<double>(cost_vns);
  t->vruntime = std::max(0.0, t->vruntime + c);
  // Negative c is hint reconciliation (refund); the cap keeps a refund from
  // banking more than one round of credit.
  t->deficit =
      std::min(t->deficit - c, options_.quantum_vns * t->weight);
  if (t->allot_per_sec > 0.0) {
    DecayDebt(t, now);
    t->vns_debt = std::max(0.0, t->vns_debt + c);
  }
  t->last_activity_ns = now;
}

bool WfqScheduler::PickNext(std::uint64_t* out_id) {
  throttle_pending_ = false;
  const std::size_t n = ring_.size();
  if (n == 0) {
    return false;
  }
  const std::int64_t now = clock_->NowNs();
  double min_key = 0.0;
  const bool have_min = MinActiveKey(now, nullptr, &min_key);

  // Pass 1: serve by deficit. The cursor holder keeps its turn while its
  // deficit lasts; moving the cursor onto a tenant refills it (capped at one
  // quantum x weight — the no-banked-credit rule).
  std::vector<std::size_t> candidates;  // overdrawn but otherwise eligible
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (cursor_ + i) % n;
    Tenant* t = Find(ring_[idx]);
    if (t == nullptr || !t->runnable) {
      continue;
    }
    DecayDebt(t, now);
    if (t->allot_per_sec > 0.0 && t->vns_debt > 0.0) {
      throttle_pending_ = true;  // eligibility returns with wall time
      continue;
    }
    if (have_min &&
        t->vruntime / t->weight > min_key + options_.window_vns) {
      throttle_pending_ = true;  // held for slower active contenders
      continue;
    }
    if (i > 0) {
      t->deficit = std::min(t->deficit + options_.quantum_vns * t->weight,
                            options_.quantum_vns * t->weight);
    }
    if (t->deficit > 0.0) {
      cursor_ = idx;
      *out_id = ring_[idx];
      return true;
    }
    candidates.push_back(idx);
  }
  if (candidates.empty()) {
    return false;
  }
  // Pass 2: every eligible tenant is overdrawn (post-paid charging). Fast-
  // forward the empty refill rounds the ring would otherwise idle through:
  // find the fewest rounds that bring someone positive, grant that many to
  // every candidate (capped), then serve the first winner in ring order.
  double min_rounds = 0.0;
  bool first = true;
  for (const std::size_t idx : candidates) {
    Tenant* t = Find(ring_[idx]);
    const double per_round = options_.quantum_vns * t->weight;
    const double rounds = std::floor(-t->deficit / per_round) + 1.0;
    if (first || rounds < min_rounds) {
      min_rounds = rounds;
      first = false;
    }
  }
  for (const std::size_t idx : candidates) {
    Tenant* t = Find(ring_[idx]);
    const double per_round = options_.quantum_vns * t->weight;
    t->deficit =
        std::min(t->deficit + min_rounds * per_round, per_round);
  }
  for (const std::size_t idx : candidates) {
    Tenant* t = Find(ring_[idx]);
    if (t->deficit > 0.0) {
      cursor_ = idx;
      *out_id = ring_[idx];
      return true;
    }
  }
  return false;  // unreachable: min_rounds made someone positive
}

double WfqScheduler::WeightOf(std::uint64_t id) const {
  const Tenant* t = Find(id);
  return t == nullptr ? 0.0 : t->weight;
}

double WfqScheduler::DeficitOf(std::uint64_t id) const {
  const Tenant* t = Find(id);
  return t == nullptr ? 0.0 : t->deficit;
}

double WfqScheduler::VruntimeOf(std::uint64_t id) const {
  const Tenant* t = Find(id);
  return t == nullptr ? 0.0 : t->vruntime;
}

double ResolveVmWeight(double requested) {
  if (requested > 0.0) {
    return requested;
  }
  if (const char* env = std::getenv("AVA_VM_WEIGHT");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && *end == '\0' && parsed > 0.0 && parsed <= 1e6) {
      return parsed;
    }
    AVA_LOG(ERROR) << "malformed AVA_VM_WEIGHT '" << env << "', using 1.0";
  }
  return 1.0;
}

std::size_t ResolveQueueDepth(std::size_t requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("AVA_ROUTER_QUEUE_DEPTH");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0 && parsed <= (1 << 20)) {
      return static_cast<std::size_t>(parsed);
    }
    AVA_LOG(ERROR) << "malformed AVA_ROUTER_QUEUE_DEPTH '" << env
                   << "', using default";
  }
  return kDefaultQueueDepth;
}

double JainIndex(const std::vector<double>& shares) {
  if (shares.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : shares) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(shares.size()) * sum_sq);
}

}  // namespace ava
