#include "src/router/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ava {
namespace {

// Token reserved for the internal wake eventfd. User tokens are VM ids,
// which never reach ~0 (the admin plane would have collapsed long before).
constexpr std::uint64_t kWakeToken = ~0ull;

constexpr int kMaxEventsPerWait = 128;

}  // namespace

Result<std::unique_ptr<EventLoop>> EventLoop::Create() {
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    return Internal(std::string("epoll_create1 failed: ") +
                    std::strerror(errno));
  }
  const int wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd < 0) {
    ::close(epoll_fd);
    return Internal(std::string("eventfd failed: ") + std::strerror(errno));
  }
  auto loop = std::unique_ptr<EventLoop>(new EventLoop(epoll_fd, wake_fd));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeToken;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) != 0) {
    return Internal(std::string("epoll_ctl(wake) failed: ") +
                    std::strerror(errno));
  }
  return loop;
}

EventLoop::EventLoop(int epoll_fd, int wake_fd)
    : epoll_fd_(epoll_fd), wake_fd_(wake_fd) {}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

Status EventLoop::Add(int fd, std::uint64_t token) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = token;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Internal(std::string("epoll_ctl(add) failed: ") +
                    std::strerror(errno));
  }
  return OkStatus();
}

Status EventLoop::Mod(int fd, std::uint64_t token, bool want_read) {
  epoll_event ev{};
  ev.events = want_read ? EPOLLIN : 0;
  ev.data.u64 = token;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Internal(std::string("epoll_ctl(mod) failed: ") +
                    std::strerror(errno));
  }
  return OkStatus();
}

void EventLoop::Remove(int fd) {
  // The fd may already be closed (epoll auto-deregisters) — errors are fine.
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::Wake() {
  const std::uint64_t one = 1;
  // Coalesced by the eventfd counter; full only at 2^64-2, unreachable.
  (void)!::write(wake_fd_, &one, sizeof(one));
}

const std::vector<EventLoop::Event>& EventLoop::Wait(int timeout_ms) {
  out_.clear();
  epoll_event events[kMaxEventsPerWait];
  int n = 0;
  do {
    n = ::epoll_wait(epoll_fd_, events, kMaxEventsPerWait, timeout_ms);
  } while (n < 0 && errno == EINTR);
  for (int i = 0; i < n; ++i) {
    if (events[i].data.u64 == kWakeToken) {
      std::uint64_t drained = 0;
      (void)!::read(wake_fd_, &drained, sizeof(drained));
      continue;
    }
    Event out;
    out.token = events[i].data.u64;
    out.readable = (events[i].events & EPOLLIN) != 0;
    out.hangup = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
    out_.push_back(out);
  }
  return out_;
}

}  // namespace ava
