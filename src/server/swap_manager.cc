#include "src/server/swap_manager.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"

namespace ava {

SwapManager::SwapManager(Hooks hooks) : hooks_(std::move(hooks)) {
  auto& registry = obs::MetricRegistry::Default();
  swap_outs_ = registry.NewCounter("swap.swap_outs");
  swap_ins_ = registry.NewCounter("swap.swap_ins");
  bytes_swapped_out_ = registry.NewCounter("swap.bytes_swapped_out");
  bytes_swapped_in_ = registry.NewCounter("swap.bytes_swapped_in");
  failed_make_room_ = registry.NewCounter("swap.failed_make_room");
}

void SwapManager::AttachRegistry(ObjectRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  registries_.push_back(registry);
}

void SwapManager::DetachRegistry(ObjectRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  registries_.erase(
      std::remove(registries_.begin(), registries_.end(), registry),
      registries_.end());
  pins_.erase(std::remove_if(pins_.begin(), pins_.end(),
                             [&](const Pin& p) { return p.registry == registry; }),
              pins_.end());
}

Result<void*> SwapManager::TranslatePinned(ObjectRegistry* registry,
                                           WireHandle id) {
  std::lock_guard<std::mutex> lock(mutex_);
  void* real = nullptr;
  bool needs_swap_in = false;
  Status found = registry->WithEntry(id, [&](ObjectRegistry::Entry& entry) {
    if (entry.type_tag != hooks_.buffer_type_tag) {
      return;  // caught below via the regular Translate path
    }
    if (entry.swapped) {
      needs_swap_in = true;
    } else {
      real = entry.real;
    }
  });
  AVA_RETURN_IF_ERROR(found);
  if (needs_swap_in) {
    Status status = registry->WithEntry(id, [&](ObjectRegistry::Entry& entry) {
      // Attempt the re-allocation; evict others on failure.
      void* fresh =
          hooks_.realloc_buffer(registry, id, entry, entry.swap_copy);
      if (fresh == nullptr) {
        // Make room (excluding this entry, which is swapped out anyway).
        MakeRoomLockedHint(entry.size, registry);
        fresh = hooks_.realloc_buffer(registry, id, entry, entry.swap_copy);
      }
      if (fresh != nullptr) {
        entry.real = fresh;
        entry.swapped = false;
        entry.swap_copy.clear();
        entry.swap_copy.shrink_to_fit();
        swap_ins_->Increment();
        bytes_swapped_in_->Increment(entry.size);
        real = fresh;
      }
    });
    AVA_RETURN_IF_ERROR(status);
    if (real == nullptr) {
      return ResourceExhausted("cannot swap buffer back in: device full");
    }
  }
  if (real == nullptr) {
    // Not a swappable type (or inconsistent state); fall back to Translate.
    return registry->Translate(hooks_.buffer_type_tag, id);
  }
  // Pin until the end of the current call.
  (void)registry->WithEntry(id, [&](ObjectRegistry::Entry& entry) {
    ++entry.pinned;
    entry.last_use_ns = MonotonicNowNs();
  });
  pins_.push_back(Pin{registry, id});
  return real;
}

void SwapManager::UnpinAll(ObjectRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = pins_.begin();
  while (it != pins_.end()) {
    if (it->registry == registry) {
      (void)registry->WithEntry(it->id, [](ObjectRegistry::Entry& entry) {
        if (entry.pinned > 0) {
          --entry.pinned;
        }
      });
      it = pins_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t SwapManager::MakeRoom(std::size_t bytes,
                                  ObjectRegistry* requester) {
  std::lock_guard<std::mutex> lock(mutex_);
  return MakeRoomLockedHint(bytes, requester);
}

void SwapManager::NoteCreated(ObjectRegistry* registry, WireHandle id) {
  (void)registry->WithEntry(id, [](ObjectRegistry::Entry& entry) {
    entry.last_use_ns = MonotonicNowNs();
  });
}

SwapManager::Stats SwapManager::stats() const {
  Stats stats;
  stats.swap_outs = swap_outs_->Value();
  stats.swap_ins = swap_ins_->Value();
  stats.bytes_swapped_out = bytes_swapped_out_->Value();
  stats.bytes_swapped_in = bytes_swapped_in_->Value();
  stats.failed_make_room = failed_make_room_->Value();
  return stats;
}

Status SwapManager::EvictLocked(ObjectRegistry* registry, WireHandle id,
                                ObjectRegistry::Entry& entry) {
  Bytes contents;
  AVA_RETURN_IF_ERROR(hooks_.read_back(registry, id, entry, &contents));
  hooks_.free_buffer(registry, entry);
  entry.swap_copy = std::move(contents);
  entry.swapped = true;
  entry.real = nullptr;
  swap_outs_->Increment();
  bytes_swapped_out_->Increment(entry.size);
  AVA_LOG(INFO) << "swapped out buffer " << id << " (" << entry.size
                << " bytes) of vm " << registry->vm_id();
  return OkStatus();
}

std::size_t SwapManager::MakeRoomLockedHint(std::size_t bytes,
                                            ObjectRegistry* requester) {
  // Collect eviction candidates across all VMs: resident, unpinned buffers,
  // least-recently-used first.
  struct Candidate {
    ObjectRegistry* registry;
    WireHandle id;
    std::int64_t last_use;
    std::uint64_t size;
  };
  std::vector<Candidate> candidates;
  for (ObjectRegistry* registry : registries_) {
    registry->ForEach(hooks_.buffer_type_tag,
                      [&](WireHandle id, ObjectRegistry::Entry& entry) {
                        if (!entry.swapped && entry.pinned == 0 &&
                            entry.real != nullptr) {
                          candidates.push_back(Candidate{
                              registry, id, entry.last_use_ns, entry.size});
                        }
                      });
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.last_use < b.last_use;
            });
  std::size_t freed = 0;
  for (const Candidate& c : candidates) {
    if (freed >= bytes) {
      break;
    }
    Status status = c.registry->WithEntry(
        c.id, [&](ObjectRegistry::Entry& entry) {
          if (entry.swapped || entry.pinned != 0) {
            return;
          }
          if (EvictLocked(c.registry, c.id, entry).ok()) {
            freed += entry.size;
          }
        });
    (void)status;
  }
  if (freed < bytes) {
    failed_make_room_->Increment();
  }
  return freed;
}

}  // namespace ava
