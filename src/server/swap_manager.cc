#include "src/server/swap_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/log.h"
#include "src/migrate/access_trace.h"
#include "src/qat/codecs.h"

namespace ava {
namespace {

// Spill-file record framing: [magic][payload_len][crc64(payload)][payload].
constexpr std::uint32_t kSpillMagic = 0x57535641u;  // "AVSW" little-endian
constexpr std::size_t kSpillHeader = 16;
// Extents are block-aligned so hole-punching a freed record actually
// returns space to the filesystem.
constexpr std::uint64_t kSpillAlign = 4096;

// Compression probe: compress at most this much and keep the result only if
// it saves at least 1/16th. The LZSS window scan is O(n * window), so
// incompressible pages must be rejected from a bounded sample, not after
// chewing through the whole buffer.
constexpr std::size_t kCompressSampleBytes = 16u << 10;

// Per-pass caps so one demotion tick stays bounded.
constexpr std::size_t kPrefetchPerPass = 32;
constexpr std::size_t kPrefetchQueueCap = 256;

std::uint64_t AlignUp(std::uint64_t n) {
  return (n + kSpillAlign - 1) & ~(kSpillAlign - 1);
}

bool EnvFlag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "off") == 0);
}

}  // namespace

SwapManager::Options SwapManager::Options::FromEnv() {
  Options options;
  if (const char* v = std::getenv("AVA_SWAP_HOST_BYTES")) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (end != v) {
      options.host_tier_bytes = static_cast<std::size_t>(n);
    }
  }
  options.compress = EnvFlag("AVA_SWAP_COMPRESS", options.compress);
  if (const char* v = std::getenv("AVA_SWAP_SPILL_DIR")) {
    options.spill_dir = v;
  }
  options.prefetch = EnvFlag("AVA_SWAP_PREFETCH", options.prefetch);
  if (const char* v = std::getenv("AVA_SWAP_DEMOTE_MS")) {
    options.demote_interval_ms = std::atoi(v);
  }
  return options;
}

SwapManager::SwapManager(Hooks hooks)
    : SwapManager(std::move(hooks), Options::FromEnv()) {}

SwapManager::SwapManager(Hooks hooks, Options options)
    : hooks_(std::move(hooks)), options_(std::move(options)) {
  trace_ = options_.trace ? options_.trace : std::make_shared<AccessTrace>();
  auto& registry = obs::MetricRegistry::Default();
  swap_outs_ = registry.NewCounter("swap.swap_outs");
  swap_ins_ = registry.NewCounter("swap.swap_ins");
  bytes_swapped_out_ = registry.NewCounter("swap.bytes_swapped_out");
  bytes_swapped_in_ = registry.NewCounter("swap.bytes_swapped_in");
  failed_make_room_ = registry.NewCounter("swap.failed_make_room");
  demoted_compressed_ = registry.NewCounter("swap.demoted_compressed");
  demoted_disk_ = registry.NewCounter("swap.demoted_disk");
  compress_rejects_ = registry.NewCounter("swap.compress_rejects");
  writeback_clean_ = registry.NewCounter("swap.writeback_clean");
  writeback_hits_ = registry.NewCounter("swap.writeback_hits");
  prefetch_issued_ = registry.NewCounter("swap.prefetch_issued");
  prefetch_hits_ = registry.NewCounter("swap.prefetch_hits");
  data_loss_sealed_ = registry.NewCounter("swap.data_loss_sealed");
  g_resident_bytes_ = registry.NewGauge("swap.resident_bytes");
  g_host_tier_bytes_ = registry.NewGauge("swap.host_tier_bytes");
  g_compressed_tier_bytes_ = registry.NewGauge("swap.compressed_tier_bytes");
  g_disk_tier_bytes_ = registry.NewGauge("swap.disk_tier_bytes");
  g_working_set_bytes_ = registry.NewGauge("swap.working_set_bytes");
  if (!options_.spill_dir.empty() && !OpenSpillFile()) {
    AVA_LOG(WARNING) << "swap: cannot open spill file in '" << options_.spill_dir
                  << "': " << std::strerror(errno) << "; disk tier disabled";
  }
  if (options_.demote_interval_ms > 0) {
    demoter_ = std::thread([this] { BackgroundLoop(); });
  }
}

SwapManager::~SwapManager() {
  if (demoter_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(demoter_mutex_);
      stop_ = true;
    }
    demoter_cv_.notify_all();
    demoter_.join();
  }
  {
    std::lock_guard<std::mutex> lock(policy_mutex_);
    for (ObjectRegistry* registry : registries_) {
      registry->SetReclaimHook(nullptr);
    }
  }
  if (spill_fd_ >= 0) {
    ::close(spill_fd_);
    ::unlink(spill_path_.c_str());
  }
}

void SwapManager::AttachRegistry(ObjectRegistry* registry) {
  std::lock_guard<std::mutex> lock(policy_mutex_);
  registries_.push_back(registry);
  // Reclaim spill extents when the guest frees a swapped-out buffer. Runs
  // under the registry lock; FreeExtent is atomics + punch-hole, no locks.
  registry->SetReclaimHook([this](ObjectRegistry::Entry& entry) {
    if (entry.disk_len != 0) {
      FreeExtent(entry.disk_offset, entry.disk_len);
      entry.disk_offset = 0;
      entry.disk_len = 0;
    }
  });
}

void SwapManager::DetachRegistry(ObjectRegistry* registry) {
  std::lock_guard<std::mutex> lock(policy_mutex_);
  registry->SetReclaimHook(nullptr);
  registries_.erase(
      std::remove(registries_.begin(), registries_.end(), registry),
      registries_.end());
  prefetch_queue_.erase(
      std::remove_if(prefetch_queue_.begin(), prefetch_queue_.end(),
                     [&](const PrefetchReq& r) { return r.registry == registry; }),
      prefetch_queue_.end());
}

std::vector<SwapManager::Pin>& SwapManager::ThreadPins() {
  static thread_local std::vector<Pin> pins;
  return pins;
}

Result<void*> SwapManager::TranslatePinned(ObjectRegistry* registry,
                                           WireHandle id) {
  // Fast path: resident buffer. One acquisition of the per-VM registry
  // lock; no global state. Concurrent lanes on different VMs share nothing.
  bool swapped = false;
  void* real = registry->PinIfResident(hooks_.buffer_type_tag, id, &swapped);
  if (real != nullptr) {
    ThreadPins().push_back(Pin{this, registry, id});
    if (options_.prefetch) {
      trace_->NoteTouch(registry->vm_id(), id);
    }
    return real;
  }
  if (!swapped) {
    // Unknown handle, wrong type, or no real handle: let Translate produce
    // the canonical error (or the non-swappable real pointer).
    return registry->Translate(hooks_.buffer_type_tag, id);
  }
  // Slow path: demand swap-in under the policy lock.
  std::lock_guard<std::mutex> lock(policy_mutex_);
  Result<void*> fresh = SwapInLocked(registry, id);
  if (!fresh.ok()) {
    return fresh;
  }
  (void)registry->WithEntry(id, [&](ObjectRegistry::Entry& entry) {
    ++entry.pinned;
    entry.last_use_ns = MonotonicNowNs();
    entry.clock_ref = true;
  });
  ThreadPins().push_back(Pin{this, registry, id});
  if (options_.prefetch) {
    trace_->NoteTouch(registry->vm_id(), id);
    // History says these come next; stage them in host memory so their own
    // demand swap-in skips the compressed/disk tiers.
    for (WireHandle next : trace_->PredictNext(registry->vm_id(), id)) {
      if (prefetch_queue_.size() >= kPrefetchQueueCap) {
        break;
      }
      prefetch_queue_.push_back(PrefetchReq{registry, next});
      prefetch_issued_->Increment();
    }
  }
  return fresh;
}

Result<void*> SwapManager::SwapInLocked(ObjectRegistry* registry,
                                        WireHandle id) {
  // Eviction (MakeRoomLockedHint) locks *other* VMs' registries, so it must
  // never run while this registry's lock is held — the lock order is
  // policy_mutex_ -> one registry mutex -> nothing. A full device therefore
  // parks the materialized bytes in the host tier, drops the registry lock,
  // makes room, and retries once.
  for (int attempt = 0;; ++attempt) {
    void* real = nullptr;
    bool need_room = false;
    std::size_t need_bytes = 0;
    Status result = OkStatus();
    Status found = registry->WithEntry(id, [&](ObjectRegistry::Entry& entry) {
      if (!entry.swapped && entry.real != nullptr) {
        real = entry.real;  // another lane swapped it in while we waited
        return;
      }
      if (entry.tier == SwapTier::kLost) {
        result = DataLoss("buffer " + std::to_string(id) +
                          " contents were lost (sealed after integrity "
                          "failure); server remains available");
        return;
      }
      // Materialize the raw bytes from whatever tier holds them.
      Bytes scratch;
      const Bytes* raw = &entry.swap_copy;
      if (entry.tier != SwapTier::kHost) {
        Status status = MaterializeLocked(entry, &scratch);
        if (!status.ok()) {
          // Seal: the authoritative bytes are gone. The entry stays, answers
          // DataLoss from now on, and the server keeps serving other buffers.
          if (entry.disk_len != 0) {
            FreeExtent(entry.disk_offset, entry.disk_len);
            entry.disk_offset = 0;
            entry.disk_len = 0;
          }
          entry.swap_copy.clear();
          entry.swap_copy.shrink_to_fit();
          entry.tier = SwapTier::kLost;
          entry.swapped = true;
          data_loss_sealed_->Increment();
          AVA_LOG(ERROR) << "swap: sealing buffer " << id << " of vm "
                         << registry->vm_id() << " as DataLoss: "
                         << status.ToString();
          result = status;
          return;
        }
        raw = &scratch;
      }
      void* fresh = hooks_.realloc_buffer(registry, id, entry, *raw);
      if (fresh == nullptr) {
        // Device full. Park the raw bytes in the host tier (they may have
        // come from disk) so no data is lost whatever happens next, then
        // either retry after evicting or report the pressure.
        if (entry.tier != SwapTier::kHost) {
          if (entry.disk_len != 0) {
            FreeExtent(entry.disk_offset, entry.disk_len);
            entry.disk_offset = 0;
            entry.disk_len = 0;
          }
          StoreSwappedHostBytes(entry, std::move(scratch));
        }
        if (attempt == 0) {
          need_room = true;
          need_bytes = entry.size;
        } else {
          result =
              ResourceExhausted("cannot swap buffer back in: device full");
        }
        return;
      }
      const bool was_prefetched = entry.prefetched;
      if (entry.disk_len != 0) {
        FreeExtent(entry.disk_offset, entry.disk_len);
        entry.disk_offset = 0;
        entry.disk_len = 0;
      }
      entry.swap_copy.clear();
      entry.swap_copy.shrink_to_fit();
      entry.clean_copy.clear();
      entry.clean_copy.shrink_to_fit();
      entry.clean_valid = false;
      entry.swap_lzss = false;
      entry.content_crc = 0;
      entry.prefetched = false;
      entry.tier = SwapTier::kDevice;
      entry.swapped = false;
      entry.real = fresh;
      swap_ins_->Increment();
      bytes_swapped_in_->Increment(entry.size);
      if (was_prefetched) {
        prefetch_hits_->Increment();
      }
      real = fresh;
    });
    AVA_RETURN_IF_ERROR(found);
    AVA_RETURN_IF_ERROR(result);
    if (real != nullptr) {
      return real;
    }
    if (!need_room) {
      return Internal("swap-in reached inconsistent state");
    }
    MakeRoomLockedHint(need_bytes, registry);
  }
}

Status SwapManager::MaterializeLocked(const ObjectRegistry::Entry& entry,
                                      Bytes* out) const {
  switch (entry.tier) {
    case SwapTier::kHost:
      *out = entry.swap_copy;
      return OkStatus();
    case SwapTier::kCompressed: {
      auto raw = qat::LzssDecompress(entry.swap_copy.data(),
                                     entry.swap_copy.size());
      if (!raw.ok()) {
        return DataLoss("swap: compressed page corrupt: " +
                        raw.status().ToString());
      }
      if (entry.content_crc != 0 &&
          qat::Crc64(raw.value().data(), raw.value().size()) !=
              entry.content_crc) {
        return DataLoss("swap: compressed page crc mismatch");
      }
      *out = std::move(raw).value();
      return OkStatus();
    }
    case SwapTier::kDisk: {
      if (spill_fd_ < 0) {
        return DataLoss("swap: disk-tier entry but no spill file");
      }
      if (entry.disk_len < kSpillHeader) {
        return DataLoss("swap: disk extent shorter than record header");
      }
      Bytes record(entry.disk_len);
      std::size_t got = 0;
      while (got < record.size()) {
        const ssize_t n =
            ::pread(spill_fd_, record.data() + got, record.size() - got,
                    static_cast<off_t>(entry.disk_offset + got));
        if (n < 0 && errno == EINTR) {
          continue;
        }
        if (n <= 0) {
          return DataLoss("swap: spill file truncated or unreadable");
        }
        got += static_cast<std::size_t>(n);
      }
      std::uint32_t magic = 0;
      std::uint32_t payload_len = 0;
      std::uint64_t payload_crc = 0;
      std::memcpy(&magic, record.data(), 4);
      std::memcpy(&payload_len, record.data() + 4, 4);
      std::memcpy(&payload_crc, record.data() + 8, 8);
      if (magic != kSpillMagic ||
          payload_len != entry.disk_len - kSpillHeader) {
        return DataLoss("swap: spill record header corrupt");
      }
      const std::uint8_t* payload = record.data() + kSpillHeader;
      if (qat::Crc64(payload, payload_len) != payload_crc) {
        return DataLoss("swap: spill record payload crc mismatch");
      }
      if (!entry.swap_lzss) {
        out->assign(payload, payload + payload_len);
        return OkStatus();
      }
      auto raw = qat::LzssDecompress(payload, payload_len);
      if (!raw.ok()) {
        return DataLoss("swap: spilled compressed page corrupt: " +
                        raw.status().ToString());
      }
      if (entry.content_crc != 0 &&
          qat::Crc64(raw.value().data(), raw.value().size()) !=
              entry.content_crc) {
        return DataLoss("swap: spilled page crc mismatch");
      }
      *out = std::move(raw).value();
      return OkStatus();
    }
    case SwapTier::kLost:
      return DataLoss("buffer contents were lost");
    case SwapTier::kDevice:
      return Internal("materialize called on resident entry");
  }
  return Internal("unknown swap tier");
}

Result<Bytes> SwapManager::MaterializeSwapped(
    const ObjectRegistry::Entry& entry) const {
  Bytes out;
  AVA_RETURN_IF_ERROR(MaterializeLocked(entry, &out));
  return out;
}

Result<Bytes> MaterializeSwappedCopy(const ObjectRegistry::Entry& entry) {
  switch (entry.tier) {
    case SwapTier::kHost:
      return entry.swap_copy;
    case SwapTier::kCompressed: {
      auto raw = qat::LzssDecompress(entry.swap_copy.data(),
                                     entry.swap_copy.size());
      if (!raw.ok()) {
        return raw.status();
      }
      if (entry.content_crc != 0 &&
          qat::Crc64(raw.value().data(), raw.value().size()) !=
              entry.content_crc) {
        return DataLoss("swap: compressed page crc mismatch");
      }
      return std::move(raw).value();
    }
    case SwapTier::kDisk:
      return FailedPrecondition(
          "disk-tier entry needs the owning swap manager "
          "(MigrationEngine::SetSwapManager)");
    case SwapTier::kLost:
      return DataLoss("buffer contents were lost");
    case SwapTier::kDevice:
      return FailedPrecondition("entry is resident, nothing to materialize");
  }
  return Internal("unknown swap tier");
}

void SwapManager::UnpinAll(ObjectRegistry* registry) {
  // Pins are per (manager, registry, thread): a call executes wholly on one
  // worker thread, so draining this thread's pins cannot release pins taken
  // by calls in flight on other lanes.
  std::vector<Pin>& pins = ThreadPins();
  auto it = pins.begin();
  while (it != pins.end()) {
    if (it->manager == this && it->registry == registry) {
      (void)registry->WithEntry(it->id, [](ObjectRegistry::Entry& entry) {
        if (entry.pinned > 0) {
          --entry.pinned;
        }
      });
      it = pins.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t SwapManager::MakeRoom(std::size_t bytes,
                                  ObjectRegistry* requester) {
  std::lock_guard<std::mutex> lock(policy_mutex_);
  return MakeRoomLockedHint(bytes, requester);
}

void SwapManager::NoteCreated(ObjectRegistry* registry, WireHandle id) {
  (void)registry->WithEntry(id, [](ObjectRegistry::Entry& entry) {
    entry.last_use_ns = MonotonicNowNs();
    entry.clock_ref = true;
  });
}

SwapManager::Stats SwapManager::stats() const {
  {
    std::lock_guard<std::mutex> lock(policy_mutex_);
    RefreshGaugesLocked();
  }
  Stats stats;
  stats.swap_outs = swap_outs_->Value();
  stats.swap_ins = swap_ins_->Value();
  stats.bytes_swapped_out = bytes_swapped_out_->Value();
  stats.bytes_swapped_in = bytes_swapped_in_->Value();
  stats.failed_make_room = failed_make_room_->Value();
  stats.resident_bytes = static_cast<std::uint64_t>(g_resident_bytes_->Value());
  stats.host_tier_bytes =
      static_cast<std::uint64_t>(g_host_tier_bytes_->Value());
  stats.compressed_tier_bytes =
      static_cast<std::uint64_t>(g_compressed_tier_bytes_->Value());
  stats.disk_tier_bytes =
      static_cast<std::uint64_t>(g_disk_tier_bytes_->Value());
  stats.working_set_bytes =
      static_cast<std::uint64_t>(g_working_set_bytes_->Value());
  stats.demoted_compressed = demoted_compressed_->Value();
  stats.demoted_disk = demoted_disk_->Value();
  stats.compress_rejects = compress_rejects_->Value();
  stats.writeback_clean = writeback_clean_->Value();
  stats.writeback_hits = writeback_hits_->Value();
  stats.prefetch_issued = prefetch_issued_->Value();
  stats.prefetch_hits = prefetch_hits_->Value();
  stats.data_loss_sealed = data_loss_sealed_->Value();
  return stats;
}

Status SwapManager::EvictLocked(ObjectRegistry* registry, WireHandle id,
                                ObjectRegistry::Entry& entry) {
  Bytes contents;
  if (entry.clean_valid) {
    // Async write-back already captured these bytes while the buffer was
    // cold; skip the synchronous device read-back entirely.
    contents = std::move(entry.clean_copy);
    entry.clean_copy.clear();
    entry.clean_valid = false;
    writeback_hits_->Increment();
  } else {
    AVA_RETURN_IF_ERROR(hooks_.read_back(registry, id, entry, &contents));
  }
  hooks_.free_buffer(registry, entry);
  StoreSwappedHostBytes(entry, std::move(contents));
  swap_outs_->Increment();
  bytes_swapped_out_->Increment(entry.size);
  AVA_LOG(INFO) << "swapped out buffer " << id << " (" << entry.size
                << " bytes) of vm " << registry->vm_id();
  return OkStatus();
}

std::size_t SwapManager::MakeRoomLockedHint(std::size_t bytes,
                                            ObjectRegistry* requester) {
  // Collect eviction candidates across all VMs: resident, unpinned buffers,
  // least-recently-used first.
  struct Candidate {
    ObjectRegistry* registry;
    WireHandle id;
    std::int64_t last_use;
    std::uint64_t size;
  };
  std::vector<Candidate> candidates;
  for (ObjectRegistry* registry : registries_) {
    registry->ForEach(hooks_.buffer_type_tag,
                      [&](WireHandle id, ObjectRegistry::Entry& entry) {
                        if (!entry.swapped && entry.pinned == 0 &&
                            entry.real != nullptr) {
                          candidates.push_back(Candidate{
                              registry, id, entry.last_use_ns, entry.size});
                        }
                      });
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.last_use < b.last_use;
            });
  std::size_t freed = 0;
  for (const Candidate& c : candidates) {
    if (freed >= bytes) {
      break;
    }
    Status status = c.registry->WithEntry(
        c.id, [&](ObjectRegistry::Entry& entry) {
          if (entry.swapped || entry.pinned != 0) {
            return;
          }
          if (EvictLocked(c.registry, c.id, entry).ok()) {
            freed += entry.size;
          }
        });
    (void)status;
  }
  if (freed < bytes) {
    failed_make_room_->Increment();
  }
  return freed;
}

// ---- background demotion ----

void SwapManager::BackgroundLoop() {
  std::unique_lock<std::mutex> lock(demoter_mutex_);
  while (!stop_) {
    demoter_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.demote_interval_ms));
    if (stop_) {
      break;
    }
    lock.unlock();
    RunDemotionPass();
    lock.lock();
  }
}

void SwapManager::RunDemotionPass() {
  std::lock_guard<std::mutex> lock(policy_mutex_);
  DemotePass();
  PrefetchPass();
  RefreshGaugesLocked();
}

void SwapManager::CompressEntryLocked(ObjectRegistry::Entry& entry) {
  // content_crc set with swap_lzss clear marks "probed, incompressible" —
  // the page stays raw and is never re-probed.
  if (entry.tier != SwapTier::kHost || entry.swap_lzss ||
      entry.content_crc != 0) {
    return;
  }
  const Bytes& raw = entry.swap_copy;
  const std::uint64_t crc = qat::Crc64(raw.data(), raw.size());
  const std::size_t sample =
      raw.size() < kCompressSampleBytes ? raw.size() : kCompressSampleBytes;
  Bytes probe(qat::LzssBound(sample));
  const std::size_t probe_out =
      qat::LzssCompressInto(raw.data(), sample, probe.data(), probe.size());
  if (probe_out == 0 || probe_out >= sample - sample / 16) {
    entry.content_crc = crc;  // reject marker; data stays raw
    compress_rejects_->Increment();
    return;
  }
  Bytes compressed(qat::LzssBound(raw.size()));
  const std::size_t out = qat::LzssCompressInto(
      raw.data(), raw.size(), compressed.data(), compressed.size());
  if (out == 0 || out >= raw.size() - raw.size() / 16) {
    entry.content_crc = crc;
    compress_rejects_->Increment();
    return;
  }
  compressed.resize(out);
  compressed.shrink_to_fit();
  entry.swap_copy = std::move(compressed);
  entry.swap_lzss = true;
  entry.content_crc = crc;
  entry.tier = SwapTier::kCompressed;
  demoted_compressed_->Increment();
}

bool SwapManager::SpillEntryLocked(ObjectRegistry::Entry& entry) {
  if (spill_fd_ < 0 || entry.swap_copy.empty()) {
    return false;
  }
  const Bytes& payload = entry.swap_copy;
  if (entry.content_crc == 0) {
    // Raw page that skipped the compress probe (compression disabled).
    entry.content_crc = qat::Crc64(payload.data(), payload.size());
  }
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(payload.size());
  const std::uint64_t payload_crc = qat::Crc64(payload.data(), payload_len);
  Bytes record(kSpillHeader + payload_len);
  std::memcpy(record.data(), &kSpillMagic, 4);
  std::memcpy(record.data() + 4, &payload_len, 4);
  std::memcpy(record.data() + 8, &payload_crc, 8);
  std::memcpy(record.data() + kSpillHeader, payload.data(), payload_len);
  const std::int64_t offset = AllocExtent(record.size());
  if (offset < 0) {
    return false;
  }
  std::size_t put = 0;
  while (put < record.size()) {
    const ssize_t n =
        ::pwrite(spill_fd_, record.data() + put, record.size() - put,
                 static_cast<off_t>(offset) + static_cast<off_t>(put));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      // Keep the page in host memory; the extent is abandoned (punched).
      FreeExtent(static_cast<std::uint64_t>(offset),
                 static_cast<std::uint32_t>(record.size()));
      AVA_LOG(WARNING) << "swap: spill write failed: " << std::strerror(errno);
      return false;
    }
    put += static_cast<std::size_t>(n);
  }
  entry.disk_offset = static_cast<std::uint64_t>(offset);
  entry.disk_len = static_cast<std::uint32_t>(record.size());
  entry.tier = SwapTier::kDisk;
  entry.swap_copy.clear();
  entry.swap_copy.shrink_to_fit();
  demoted_disk_->Increment();
  return true;
}

void SwapManager::DemotePass() {
  struct Cold {
    ObjectRegistry* registry;
    WireHandle id;
    std::int64_t last_use;
    std::size_t host_bytes;  // swap_copy held by this entry
  };
  std::vector<Cold> demotable;  // swapped pages resident in host memory
  std::size_t host_usage = 0;
  std::size_t writeback_budget = options_.writeback_bytes_per_tick;

  for (ObjectRegistry* registry : registries_) {
    registry->ForEach(
        hooks_.buffer_type_tag, [&](WireHandle id,
                                    ObjectRegistry::Entry& entry) {
          // Reclaim extents orphaned by paths that reset an entry to the
          // host tier without going through the manager (migration restore,
          // generated write_back).
          if (entry.tier != SwapTier::kDisk && entry.disk_len != 0) {
            FreeExtent(entry.disk_offset, entry.disk_len);
            entry.disk_offset = 0;
            entry.disk_len = 0;
          }
          host_usage += entry.swap_copy.size() + entry.clean_copy.size();
          if (entry.tier == SwapTier::kDevice && entry.real != nullptr) {
            // Clock estimation: the reference bit was set by pins since the
            // last pass; clearing it makes the next pass see true coldness.
            if (entry.clock_ref) {
              entry.clock_ref = false;
            } else if (entry.pinned == 0 && !entry.clean_valid &&
                       entry.size > 0 && entry.size <= writeback_budget) {
              // Cold resident buffer: capture a clean copy now so a future
              // eviction under allocation pressure skips the synchronous
              // device read-back.
              Bytes copy;
              if (hooks_.read_back(registry, id, entry, &copy).ok()) {
                writeback_budget -= copy.size();
                host_usage += copy.size();
                entry.clean_copy = std::move(copy);
                entry.clean_valid = true;
                writeback_clean_->Increment();
              }
            }
          } else if ((entry.tier == SwapTier::kHost ||
                      entry.tier == SwapTier::kCompressed) &&
                     !entry.swap_copy.empty()) {
            if (entry.prefetched) {
              entry.prefetched = false;  // one-pass shield, then fair game
            } else {
              demotable.push_back(Cold{registry, id, entry.last_use_ns,
                                       entry.swap_copy.size()});
            }
          }
        });
  }

  if (host_usage <= options_.host_tier_bytes) {
    return;
  }
  std::sort(demotable.begin(), demotable.end(),
            [](const Cold& a, const Cold& b) { return a.last_use < b.last_use; });

  // Over budget: walk coldest-first. Raw pages get compressed (cheap space
  // win, data stays in memory); if still over budget and the disk tier is
  // open, pages move to the spill file entirely.
  for (const Cold& cold : demotable) {
    if (host_usage <= options_.host_tier_bytes) {
      break;
    }
    (void)cold.registry->WithEntry(
        cold.id, [&](ObjectRegistry::Entry& entry) {
          const std::size_t before = entry.swap_copy.size();
          if (options_.compress) {
            CompressEntryLocked(entry);
          }
          if (host_usage - (before - entry.swap_copy.size()) >
                  options_.host_tier_bytes &&
              spill_fd_ >= 0) {
            SpillEntryLocked(entry);
          }
          host_usage -= before - entry.swap_copy.size();
        });
  }
  if (host_usage <= options_.host_tier_bytes) {
    return;
  }
  // Still over (no disk tier, or incompressible): drop clean write-back
  // copies — they are an optimization, the device still holds the bytes.
  for (ObjectRegistry* registry : registries_) {
    if (host_usage <= options_.host_tier_bytes) {
      break;
    }
    registry->ForEach(hooks_.buffer_type_tag,
                      [&](WireHandle, ObjectRegistry::Entry& entry) {
                        if (host_usage <= options_.host_tier_bytes ||
                            !entry.clean_valid) {
                          return;
                        }
                        host_usage -= entry.clean_copy.size();
                        entry.clean_copy.clear();
                        entry.clean_copy.shrink_to_fit();
                        entry.clean_valid = false;
                      });
  }
}

void SwapManager::PrefetchPass() {
  std::size_t budget = kPrefetchPerPass;
  while (budget-- > 0 && !prefetch_queue_.empty()) {
    const PrefetchReq req = prefetch_queue_.front();
    prefetch_queue_.pop_front();
    if (std::find(registries_.begin(), registries_.end(), req.registry) ==
        registries_.end()) {
      continue;
    }
    (void)req.registry->WithEntry(
        req.id, [&](ObjectRegistry::Entry& entry) {
          if (entry.type_tag != hooks_.buffer_type_tag || !entry.swapped ||
              (entry.tier != SwapTier::kCompressed &&
               entry.tier != SwapTier::kDisk)) {
            return;  // resident, already host-tier, or lost: nothing to do
          }
          Bytes raw;
          Status status = MaterializeLocked(entry, &raw);
          if (!status.ok()) {
            // Same sealing as the demand path: the bytes are provably bad.
            if (entry.disk_len != 0) {
              FreeExtent(entry.disk_offset, entry.disk_len);
              entry.disk_offset = 0;
              entry.disk_len = 0;
            }
            entry.swap_copy.clear();
            entry.swap_copy.shrink_to_fit();
            entry.tier = SwapTier::kLost;
            data_loss_sealed_->Increment();
            AVA_LOG(ERROR) << "swap: prefetch sealing buffer " << req.id
                           << ": " << status.ToString();
            return;
          }
          if (entry.disk_len != 0) {
            FreeExtent(entry.disk_offset, entry.disk_len);
            entry.disk_offset = 0;
            entry.disk_len = 0;
          }
          StoreSwappedHostBytes(entry, std::move(raw));
          entry.prefetched = true;
        });
  }
}

void SwapManager::RefreshGaugesLocked() const {
  std::int64_t device = 0, host = 0, compressed = 0, disk = 0, hot = 0;
  for (ObjectRegistry* registry : registries_) {
    std::int64_t vm_device = 0, vm_host = 0, vm_compressed = 0, vm_disk = 0;
    registry->ForEach(hooks_.buffer_type_tag,
                      [&](WireHandle, ObjectRegistry::Entry& entry) {
                        switch (entry.tier) {
                          case SwapTier::kDevice:
                            vm_device += static_cast<std::int64_t>(entry.size);
                            if (entry.clock_ref) {
                              hot += static_cast<std::int64_t>(entry.size);
                            }
                            break;
                          case SwapTier::kHost:
                            vm_host += static_cast<std::int64_t>(
                                entry.swap_copy.size());
                            break;
                          case SwapTier::kCompressed:
                            vm_compressed += static_cast<std::int64_t>(
                                entry.swap_copy.size());
                            break;
                          case SwapTier::kDisk:
                            vm_disk += static_cast<std::int64_t>(
                                entry.disk_len);
                            break;
                          case SwapTier::kLost:
                            break;
                        }
                        vm_host += static_cast<std::int64_t>(
                            entry.clean_copy.size());
                      });
    auto it = vm_gauges_.find(registry->vm_id());
    if (it == vm_gauges_.end()) {
      const std::string prefix =
          "swap.vm" + std::to_string(registry->vm_id()) + ".";
      auto& metrics = obs::MetricRegistry::Default();
      VmGauges gauges;
      gauges.device_bytes = metrics.NewGauge(prefix + "device_bytes");
      gauges.host_bytes = metrics.NewGauge(prefix + "host_bytes");
      gauges.compressed_bytes = metrics.NewGauge(prefix + "compressed_bytes");
      gauges.disk_bytes = metrics.NewGauge(prefix + "disk_bytes");
      it = vm_gauges_.emplace(registry->vm_id(), std::move(gauges)).first;
    }
    it->second.device_bytes->Set(vm_device);
    it->second.host_bytes->Set(vm_host);
    it->second.compressed_bytes->Set(vm_compressed);
    it->second.disk_bytes->Set(vm_disk);
    device += vm_device;
    host += vm_host;
    compressed += vm_compressed;
    disk += vm_disk;
  }
  g_resident_bytes_->Set(device);
  g_host_tier_bytes_->Set(host);
  g_compressed_tier_bytes_->Set(compressed);
  g_disk_tier_bytes_->Set(disk);
  g_working_set_bytes_->Set(hot);
}

// ---- spill file ----

bool SwapManager::OpenSpillFile() {
  static std::atomic<std::uint64_t> seq{0};
  const std::uint64_t n = seq.fetch_add(1);
  spill_path_ = options_.spill_dir + "/ava_swap." +
                std::to_string(::getpid()) + "." + std::to_string(n) +
                ".spill";
  // O_TRUNC: a leftover file from a SIGKILLed predecessor with a recycled
  // pid holds no live extents (its manager died with them) — safe to reuse.
  spill_fd_ = ::open(spill_path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
  return spill_fd_ >= 0;
}

std::int64_t SwapManager::AllocExtent(std::size_t bytes) {
  if (spill_fd_ < 0) {
    return -1;
  }
  const std::uint64_t aligned = AlignUp(bytes);
  const std::uint64_t offset = spill_next_.fetch_add(aligned);
  disk_bytes_.fetch_add(aligned);
  return static_cast<std::int64_t>(offset);
}

void SwapManager::FreeExtent(std::uint64_t offset, std::uint32_t bytes) {
  if (spill_fd_ < 0) {
    return;
  }
  const std::uint64_t aligned = AlignUp(bytes);
  disk_bytes_.fetch_sub(aligned);
#ifdef FALLOC_FL_PUNCH_HOLE
  // Return the blocks to the filesystem; the offset space is append-only.
  (void)::fallocate(spill_fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                    static_cast<off_t>(offset),
                    static_cast<off_t>(aligned));
#else
  (void)offset;
#endif
}

}  // namespace ava
