// Buffer-object-granularity memory swapping (§4.3): when a guest's
// allocation fails because the device is full, the server transparently
// evicts least-recently-used, unpinned buffer objects — possibly belonging
// to other VMs — to host memory, and restores them on next use. Guests never
// observe the contending VM's out-of-memory condition.
//
// API-specific mechanics (how to read back / free / recreate a buffer) are
// injected as hooks synthesized from the API spec; see src/gen/vcl_hooks.cc.
#ifndef AVA_SRC_SERVER_SWAP_MANAGER_H_
#define AVA_SRC_SERVER_SWAP_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/result.h"
#include "src/obs/metrics.h"
#include "src/server/buffer_hooks.h"
#include "src/server/object_registry.h"

namespace ava {

class SwapManager {
 public:
  using Hooks = BufferHooks;

  // Thin view over the manager's obs::MetricRegistry cells (swap.*); kept
  // for existing callers.
  struct Stats {
    std::uint64_t swap_outs = 0;
    std::uint64_t swap_ins = 0;
    std::uint64_t bytes_swapped_out = 0;
    std::uint64_t bytes_swapped_in = 0;
    std::uint64_t failed_make_room = 0;
  };

  explicit SwapManager(Hooks hooks);

  // Registries participating in global LRU accounting (one per VM session).
  void AttachRegistry(ObjectRegistry* registry);
  void DetachRegistry(ObjectRegistry* registry);

  // Translates a swappable handle, swapping it in if necessary, and pins it
  // until UnpinAll. Pinned buffers are never evicted.
  Result<void*> TranslatePinned(ObjectRegistry* registry, WireHandle id);

  // Releases every pin taken by `registry`'s session (end of call).
  void UnpinAll(ObjectRegistry* registry);

  // Evicts unpinned LRU buffers until at least `bytes` were freed (or no
  // candidates remain). Returns the number of bytes actually freed.
  std::size_t MakeRoom(std::size_t bytes, ObjectRegistry* requester);

  // Marks a freshly created buffer resident (no-op bookkeeping today; the
  // registry entry itself carries the state).
  void NoteCreated(ObjectRegistry* registry, WireHandle id);

  Stats stats() const;

 private:
  struct Pin {
    ObjectRegistry* registry;
    WireHandle id;
  };

  // Swaps one entry out; caller holds mutex_.
  Status EvictLocked(ObjectRegistry* registry, WireHandle id,
                     ObjectRegistry::Entry& entry);

  // MakeRoom body; caller holds mutex_.
  std::size_t MakeRoomLockedHint(std::size_t bytes, ObjectRegistry* requester);

  Hooks hooks_;
  mutable std::mutex mutex_;
  std::vector<ObjectRegistry*> registries_;
  std::vector<Pin> pins_;

  // Metric cells (registered as swap.*; stats() composes them).
  std::shared_ptr<obs::Counter> swap_outs_;
  std::shared_ptr<obs::Counter> swap_ins_;
  std::shared_ptr<obs::Counter> bytes_swapped_out_;
  std::shared_ptr<obs::Counter> bytes_swapped_in_;
  std::shared_ptr<obs::Counter> failed_make_room_;
};

}  // namespace ava

#endif  // AVA_SRC_SERVER_SWAP_MANAGER_H_
