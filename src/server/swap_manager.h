// Tiered device-memory oversubscription (§4.3 grown into a real hierarchy):
//
//   device memory -> host arena (raw) -> LZSS-compressed host pages
//                 -> disk spill file
//
// When a guest's allocation fails because the device is full, the server
// transparently evicts least-recently-used, unpinned buffer objects —
// possibly belonging to other VMs — down the hierarchy, and restores them
// on next use. Guests never observe the contending VM's out-of-memory
// condition; a device with N MB serves workloads touching many times N at
// a bounded throughput floor.
//
// Concurrency story (lock order: policy mutex -> registry lock -> nothing):
//  * Resident fast path: TranslatePinned on a device-tier buffer touches
//    only the per-VM registry lock (ObjectRegistry::PinIfResident) and a
//    thread-local pin list — no global mutex, no O(pins) scans. Swap state
//    is sharded across the per-VM registry locks.
//  * Slow path (swap-in, MakeRoom) and the background demotion thread
//    serialize on one policy mutex, which is never taken on the resident
//    path.
//  * The demotion thread does clock/working-set estimation, async
//    write-back (clean host copies of cold resident buffers so eviction
//    can skip the device read-back), budget-driven compress/spill, tier
//    gauge refresh, and replay-trace-driven prefetch promotion.
//
// API-specific mechanics (how to read back / free / recreate a buffer) are
// injected as hooks synthesized from the API spec; see src/gen/vcl_hooks.cc.
#ifndef AVA_SRC_SERVER_SWAP_MANAGER_H_
#define AVA_SRC_SERVER_SWAP_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/obs/metrics.h"
#include "src/server/buffer_hooks.h"
#include "src/server/object_registry.h"

namespace ava {

class AccessTrace;

class SwapManager {
 public:
  using Hooks = BufferHooks;

  struct Options {
    // Byte budget for host-side swap state (raw host pages + compressed
    // pages + clean write-back copies). Exceeding it triggers background
    // demotion to the compressed tier and then to disk.
    std::size_t host_tier_bytes = 64u << 20;
    // Compress host pages (LZSS, src/qat/codecs) before spilling. Pages a
    // sample probe shows incompressible stay raw (counted, not retried).
    bool compress = true;
    // Directory for the spill file; empty disables the disk tier (the
    // compressed tier then holds overflow past the budget).
    std::string spill_dir;
    // Promote predicted-next buffers back to the host tier ahead of use.
    bool prefetch = true;
    // Background demotion cadence; <= 0 disables the thread (tests drive
    // TickForTest instead).
    int demote_interval_ms = 25;
    // Cap on device read-back bytes one clock pass spends on async
    // write-back, so a sweep never monopolizes a VM's registry lock.
    std::size_t writeback_bytes_per_tick = 8u << 20;
    // Shared transition trace; null = the manager owns a private one.
    std::shared_ptr<AccessTrace> trace;

    // AVA_SWAP_HOST_BYTES / AVA_SWAP_COMPRESS / AVA_SWAP_SPILL_DIR /
    // AVA_SWAP_PREFETCH applied over the defaults above.
    static Options FromEnv();
  };

  // Thin view over the manager's obs::MetricRegistry cells (swap.*); kept
  // for existing callers and extended with the tier story.
  struct Stats {
    std::uint64_t swap_outs = 0;
    std::uint64_t swap_ins = 0;
    std::uint64_t bytes_swapped_out = 0;
    std::uint64_t bytes_swapped_in = 0;
    std::uint64_t failed_make_room = 0;
    // Tier residency (gauges, refreshed by the sweep / stats()).
    std::uint64_t resident_bytes = 0;
    std::uint64_t host_tier_bytes = 0;
    std::uint64_t compressed_tier_bytes = 0;
    std::uint64_t disk_tier_bytes = 0;
    std::uint64_t working_set_bytes = 0;
    // Hierarchy traffic.
    std::uint64_t demoted_compressed = 0;
    std::uint64_t demoted_disk = 0;
    std::uint64_t compress_rejects = 0;
    std::uint64_t writeback_clean = 0;   // clean copies produced
    std::uint64_t writeback_hits = 0;    // evictions that skipped read_back
    std::uint64_t prefetch_issued = 0;
    std::uint64_t prefetch_hits = 0;
    std::uint64_t data_loss_sealed = 0;
  };

  explicit SwapManager(Hooks hooks);
  SwapManager(Hooks hooks, Options options);
  ~SwapManager();

  SwapManager(const SwapManager&) = delete;
  SwapManager& operator=(const SwapManager&) = delete;

  // Registries participating in global LRU accounting (one per VM session).
  void AttachRegistry(ObjectRegistry* registry);
  void DetachRegistry(ObjectRegistry* registry);

  // Translates a swappable handle, swapping it in if necessary, and pins it
  // until UnpinAll. Pinned buffers are never evicted. Resident buffers take
  // the lock-light fast path. A buffer whose backing bytes failed an
  // integrity check answers DataLoss (sealed; the server stays up).
  Result<void*> TranslatePinned(ObjectRegistry* registry, WireHandle id);

  // Releases every pin taken by the *calling thread* for `registry` (end of
  // call; calls execute wholly on one worker thread, so pins are
  // thread-local and concurrent lanes never release each other's pins).
  void UnpinAll(ObjectRegistry* registry);

  // Evicts unpinned LRU buffers until at least `bytes` were freed (or no
  // candidates remain). Returns the number of bytes actually freed.
  // Eviction lands in the host tier; the background thread takes it from
  // there. A valid clean write-back copy lets eviction skip the read-back.
  std::size_t MakeRoom(std::size_t bytes, ObjectRegistry* requester);

  // Marks a freshly created buffer resident (stamps LRU state).
  void NoteCreated(ObjectRegistry* registry, WireHandle id);

  Stats stats() const;

  // Raw bytes of a swapped-out entry, whatever tier holds them — including
  // this manager's spill file. For snapshot/migration; takes no locks (the
  // caller holds the entry's registry lock). DataLoss on integrity failure.
  Result<Bytes> MaterializeSwapped(const ObjectRegistry::Entry& entry) const;

  // Runs one background pass synchronously: clock scan + async write-back,
  // budget-driven compress/spill demotion, orphaned-extent reclaim, gauge
  // refresh, prefetch promotion. The thread calls this on its cadence;
  // tests with demote_interval_ms <= 0 call it directly.
  void TickForTest() { RunDemotionPass(); }

  const Options& options() const { return options_; }

 private:
  struct Pin {
    SwapManager* manager;
    ObjectRegistry* registry;
    WireHandle id;
  };

  struct PrefetchReq {
    ObjectRegistry* registry;
    WireHandle id;
  };

  // Per-VM tier residency gauges (swap.vm<id>.*), refreshed by the sweep.
  struct VmGauges {
    std::shared_ptr<obs::Gauge> device_bytes;
    std::shared_ptr<obs::Gauge> host_bytes;
    std::shared_ptr<obs::Gauge> compressed_bytes;
    std::shared_ptr<obs::Gauge> disk_bytes;
  };

  // ---- slow path & policy (caller holds policy_mutex_) ----
  Result<void*> SwapInLocked(ObjectRegistry* registry, WireHandle id);
  std::size_t MakeRoomLockedHint(std::size_t bytes, ObjectRegistry* requester);
  Status EvictLocked(ObjectRegistry* registry, WireHandle id,
                     ObjectRegistry::Entry& entry);
  void RunDemotionPass();
  void DemotePass();
  void PrefetchPass();
  void RefreshGaugesLocked() const;

  // Produces the raw bytes for a swapped entry (any tier). Integrity
  // failures return DataLoss. Does not mutate the entry.
  Status MaterializeLocked(const ObjectRegistry::Entry& entry,
                           Bytes* out) const;

  // Compresses a host-tier page in place (or marks it reject) and, when
  // the disk tier is open, spills compressed/reject pages. Caller holds
  // policy_mutex_ and the entry's registry lock.
  void CompressEntryLocked(ObjectRegistry::Entry& entry);
  bool SpillEntryLocked(ObjectRegistry::Entry& entry);

  // Spill-file extent management (thread-safe; no locks beyond atomics —
  // freed extents are hole-punched, allocation bumps an atomic cursor).
  bool OpenSpillFile();
  std::int64_t AllocExtent(std::size_t bytes);
  void FreeExtent(std::uint64_t offset, std::uint32_t bytes);

  void BackgroundLoop();

  static std::vector<Pin>& ThreadPins();

  Hooks hooks_;
  Options options_;
  std::shared_ptr<AccessTrace> trace_;

  // Policy lock: registries list, eviction/demotion decisions, swap-ins,
  // prefetch queue. Never taken on the resident fast path; always acquired
  // before any registry lock.
  mutable std::mutex policy_mutex_;
  std::vector<ObjectRegistry*> registries_;
  std::deque<PrefetchReq> prefetch_queue_;
  mutable std::unordered_map<std::uint64_t, VmGauges> vm_gauges_;

  // Spill file (disk tier). fd < 0 = tier disabled.
  int spill_fd_ = -1;
  std::string spill_path_;
  std::atomic<std::uint64_t> spill_next_{0};
  std::atomic<std::uint64_t> disk_bytes_{0};

  // Background demotion thread.
  std::thread demoter_;
  std::mutex demoter_mutex_;
  std::condition_variable demoter_cv_;
  bool stop_ = false;

  // Metric cells (registered as swap.*; stats() composes them).
  std::shared_ptr<obs::Counter> swap_outs_;
  std::shared_ptr<obs::Counter> swap_ins_;
  std::shared_ptr<obs::Counter> bytes_swapped_out_;
  std::shared_ptr<obs::Counter> bytes_swapped_in_;
  std::shared_ptr<obs::Counter> failed_make_room_;
  std::shared_ptr<obs::Counter> demoted_compressed_;
  std::shared_ptr<obs::Counter> demoted_disk_;
  std::shared_ptr<obs::Counter> compress_rejects_;
  std::shared_ptr<obs::Counter> writeback_clean_;
  std::shared_ptr<obs::Counter> writeback_hits_;
  std::shared_ptr<obs::Counter> prefetch_issued_;
  std::shared_ptr<obs::Counter> prefetch_hits_;
  std::shared_ptr<obs::Counter> data_loss_sealed_;
  std::shared_ptr<obs::Gauge> g_resident_bytes_;
  std::shared_ptr<obs::Gauge> g_host_tier_bytes_;
  std::shared_ptr<obs::Gauge> g_compressed_tier_bytes_;
  std::shared_ptr<obs::Gauge> g_disk_tier_bytes_;
  std::shared_ptr<obs::Gauge> g_working_set_bytes_;
};

// Raw bytes of a swapped-out entry for snapshot/migration use, without a
// SwapManager (host and compressed tiers only; disk-tier entries need the
// owning manager's spill file — MigrationEngine::SetSwapManager).
Result<Bytes> MaterializeSwappedCopy(const ObjectRegistry::Entry& entry);

}  // namespace ava

#endif  // AVA_SRC_SERVER_SWAP_MANAGER_H_
