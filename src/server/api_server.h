// The AvA API server: a non-privileged, per-VM execution session that runs
// forwarded API calls against the real silo (Figure 3). One ApiServerSession
// exists per guest VM; process-level isolation in the paper maps to
// session-level isolation here (and to real processes in the fork-based
// examples).
//
// CAvA-generated server handlers plug in through RegisterApi(); everything
// else — reply construction, shadow-buffer reaping, cost accounting, async
// error latching, migration recording hooks — is API-agnostic and lives
// here.
#ifndef AVA_SRC_SERVER_API_SERVER_H_
#define AVA_SRC_SERVER_API_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/obs/metrics.h"
#include "src/proto/marshal.h"
#include "src/proto/wire.h"
#include "src/server/object_registry.h"
#include "src/server/swap_manager.h"
#include "src/server/xfer_cache.h"
#include "src/transport/arena.h"

namespace ava {

class ServerContext;

// One generated per-API dispatcher: unmarshals `args`, invokes the real API,
// and (for synchronous calls) marshals return/out values into `reply`.
// Returning non-OK means the call could not be dispatched (malformed
// payload, unknown handle, ...) — distinct from an API-level error code,
// which travels inside the reply payload.
using ApiHandler =
    std::function<Status(ServerContext* ctx, std::uint32_t func_id,
                         ByteReader* args, bool is_async, ByteWriter* reply)>;

// Sink for migration recording (implemented by migrate::Recorder). The
// session reports every call whose spec says `record;`, with the object ids
// it created/destroyed.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void OnRecordedCall(const CallHeader& header, const Bytes& payload,
                              std::vector<WireHandle> created,
                              std::vector<WireHandle> destroyed) = 0;
};

// Per-call execution context handed to generated handlers.
class ServerContext {
 public:
  ServerContext(VmId vm_id, ObjectRegistry* registry, SwapManager* swap);

  ObjectRegistry& registry() { return *registry_; }
  SwapManager* swap() { return swap_; }
  VmId vm_id() const { return vm_id_; }

  // Translates a swappable buffer handle (swap-in + pin) when a swap manager
  // is attached, else a plain registry lookup.
  Result<void*> TranslateSwappable(std::uint32_t type_tag, WireHandle id);

  // -------- bulk buffers (inline or shared-memory arena) --------
  //
  // Generated handlers unmarshal every `buffer(size)` parameter through
  // these. A call frame can mix encodings per parameter; the marker byte
  // decides. Arena descriptors are fully validated (Resolve) before any
  // byte is touched — a corrupt or forged descriptor yields InvalidArgument,
  // which the session turns into a sealed error reply. Transfer-cache
  // markers resolve against the per-VM content cache: a kBulkCached miss
  // yields kCacheMiss (before the API call runs — unmarshaling precedes
  // execution, so the guest's single inline retry is always safe), and a
  // kBulkCachedInstall whose bytes do not re-hash to the descriptor's
  // digest yields InvalidArgument.

  // A decoded in-buffer. `data` points either into the call frame (inline)
  // or into the arena slot (64-byte aligned); both stay valid for the
  // duration of the handler.
  struct BulkIn {
    bool present = false;
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
  };
  Status ReadBulkIn(ByteReader* r, BulkIn* out);

  // A decoded out-buffer request. For the arena form the guest pre-acquired
  // the slot; the handler writes its output through `arena_data` and the
  // reply carries only the produced length.
  struct BulkOut {
    bool wanted = false;
    std::uint64_t capacity = 0;
    bool via_arena = false;
    std::uint8_t* arena_data = nullptr;  // valid only when via_arena
  };
  Status ReadBulkOut(ByteReader* r, BulkOut* out);

  // Marshals an out-buffer result matching `desc`. Inline outs carry the
  // bytes; arena outs carry only the length (copying into the slot first if
  // the handler produced the data elsewhere).
  void PutBulkOut(ByteWriter* w, const BulkOut& desc, bool present,
                  const void* data, std::size_t bytes);

  const std::shared_ptr<BufferArena>& arena() const { return arena_; }

  // Per-VM content-addressed transfer cache. Always non-null; a zero byte
  // budget (AVA_XFER_CACHE_BYTES=0) makes every lookup miss and every
  // install a no-op. Exposed for tests (forced eviction, budget changes).
  TransferCache& xfer_cache() { return *xfer_cache_; }

  // -------- cost accounting (read by the router's scheduler) --------
  void ChargeCost(std::int64_t vns) { scratch().cost_vns += vns; }
  std::int64_t TakeCost() {
    CallScratch& s = scratch();
    std::int64_t c = s.cost_vns;
    s.cost_vns = 0;
    return c;
  }

  // -------- async error latching (§4.2 fidelity loss) --------
  void LatchAsyncError(std::int32_t api_error);

  // -------- shadow buffers --------
  // Data ready now (rare).
  void StashShadowReady(std::uint64_t shadow_id, Bytes data);
  // Data becomes ready later; `poll` returns true and fills *out once the
  // producing command completed. Polled while building every sync reply.
  void StashShadowDeferred(std::uint64_t shadow_id,
                           std::function<bool(Bytes*)> poll);

  // -------- migration recording --------
  // Generated handlers call this for functions annotated `record;`.
  void RecordCurrentCall() { scratch().record_requested = true; }
  bool replaying() { return scratch().replaying; }

 private:
  friend class ApiServerSession;

  struct DeferredShadow {
    std::uint64_t shadow_id;
    std::function<bool(Bytes*)> poll;
  };

  // State scoped to one in-flight call. The session installs one
  // thread-locally around each handler invocation, so calls executing
  // concurrently on different worker lanes never share per-call state
  // (cost, record flag, cache pins) — only the explicitly session-wide
  // state below is shared, and that is mutex-guarded.
  struct CallScratch {
    std::int64_t cost_vns = 0;
    bool record_requested = false;
    bool replaying = false;
    // Cache entries served to this call: keeps their bytes alive even if a
    // later install (from this or a concurrent call) evicts them.
    std::vector<std::shared_ptr<const Bytes>> cache_refs;
    // Digests installed while executing this call; flushed to the guest as
    // a kXferCacheAckShadowId shadow on this call's sync reply (async
    // installs are parked session-wide for the next sync reply).
    std::vector<CachedDesc> cache_acks;
  };

  // RAII installer for the thread-local current-call scratch.
  class ScopedScratch {
   public:
    explicit ScopedScratch(CallScratch* s) : prev_(tls_scratch_) {
      tls_scratch_ = s;
    }
    ~ScopedScratch() { tls_scratch_ = prev_; }
    ScopedScratch(const ScopedScratch&) = delete;
    ScopedScratch& operator=(const ScopedScratch&) = delete;

   private:
    CallScratch* prev_;
  };

  // The in-flight call's scratch. Outside a session-executed call (direct
  // context use in tests, single-threaded by nature) falls back to a
  // session-lifetime scratch so the old semantics hold.
  CallScratch& scratch() {
    return tls_scratch_ != nullptr ? *tls_scratch_ : fallback_scratch_;
  }

  // Inner body of ReadBulkIn. `allow_cached` is false when decoding the
  // payload nested inside a kBulkCachedInstall, so a hostile frame cannot
  // nest cache markers.
  Status ReadBulkInInner(ByteReader* r, BulkIn* out, bool allow_cached);

  VmId vm_id_;
  ObjectRegistry* registry_;
  SwapManager* swap_;
  std::shared_ptr<BufferArena> arena_;  // null = inline-only session
  static thread_local CallScratch* tls_scratch_;
  CallScratch fallback_scratch_;
  // Session-wide state shared across concurrent lanes; every access goes
  // through shadow_mutex_ (leaf lock: nothing is acquired while held).
  std::mutex shadow_mutex_;
  std::int32_t latched_async_error_ = 0;
  std::vector<std::pair<std::uint64_t, Bytes>> ready_shadows_;
  std::vector<DeferredShadow> deferred_shadows_;
  // Install acks from async calls, delivered on the next sync reply.
  std::vector<CachedDesc> deferred_cache_acks_;
  std::unique_ptr<TransferCache> xfer_cache_;
};

class ApiServerSession {
 public:
  // Thin view over the session's obs::MetricRegistry cells
  // (server.vm<id>.*); kept for existing callers.
  struct Stats {
    std::uint64_t calls_executed = 0;
    std::uint64_t async_calls = 0;
    std::uint64_t dispatch_errors = 0;
    std::uint64_t shadows_delivered = 0;
    std::int64_t cost_vns_total = 0;
  };

  explicit ApiServerSession(VmId vm_id,
                            std::shared_ptr<SwapManager> swap = nullptr);
  ~ApiServerSession();

  ApiServerSession(const ApiServerSession&) = delete;
  ApiServerSession& operator=(const ApiServerSession&) = delete;

  void RegisterApi(std::uint16_t api_id, ApiHandler handler);
  void SetRecordSink(RecordSink* sink) { record_sink_ = sink; }

  // Attaches the transport's shared-memory buffer arena (capability
  // negotiation: the router calls this with transport->arena() when it
  // attaches the VM). Sessions without one reject arena descriptors.
  void SetArena(std::shared_ptr<BufferArena> arena) {
    context_.arena_ = std::move(arena);
  }

  // Executes one transport message (call or batch). Returns the encoded
  // reply for synchronous calls, nullopt for async/batch. A non-OK status
  // means the message was unintelligible. When `cost_vns` is non-null it
  // receives the modeled device cost this message charged — the router
  // reads it per call so concurrent lanes never race on a shared total.
  // Safe to call from multiple threads concurrently (per-call state is
  // thread-local; registry/cache/shadow state is internally locked).
  Result<std::optional<Bytes>> Execute(const Bytes& message,
                                       std::int64_t* cost_vns = nullptr);

  // Replays a recorded call during migration restore: forces the original
  // created ids and suppresses re-recording.
  Status Replay(const CallHeader& header, const Bytes& payload,
                const std::vector<WireHandle>& created_ids);

  ObjectRegistry& registry() { return registry_; }
  ServerContext& context() { return context_; }
  VmId vm_id() const { return vm_id_; }
  Stats stats() const;

  // Hot-path accessor for the router's per-call cost delta; avoids
  // composing the full Stats view twice per forwarded call.
  std::int64_t cost_vns_total() const {
    return static_cast<std::int64_t>(cost_vns_total_->Value());
  }

  // Distribution of per-call handler execution time (ns), as measured by
  // the session around the generated handler (device cost included).
  obs::HistogramSnapshot exec_latency() const { return exec_ns_->Snapshot(); }

 private:
  Result<std::optional<Bytes>> ExecuteCall(const DecodedCall& call,
                                           std::int64_t* cost_vns);
  void ReapShadows(ReplyBuilder* reply, ServerContext::CallScratch* scratch);

  VmId vm_id_;
  ObjectRegistry registry_;
  std::shared_ptr<SwapManager> swap_;
  ServerContext context_;
  std::unordered_map<std::uint16_t, ApiHandler> handlers_;
  RecordSink* record_sink_ = nullptr;

  // Metric cells (registered as server.vm<id>.*; stats() composes them).
  std::shared_ptr<obs::Counter> calls_executed_;
  std::shared_ptr<obs::Counter> async_calls_;
  std::shared_ptr<obs::Counter> dispatch_errors_;
  std::shared_ptr<obs::Counter> shadows_delivered_;
  std::shared_ptr<obs::Counter> cost_vns_total_;
  std::shared_ptr<obs::Histogram> exec_ns_;
  bool trace_enabled_ = false;  // cached Tracer state at construction
};

}  // namespace ava

#endif  // AVA_SRC_SERVER_API_SERVER_H_
