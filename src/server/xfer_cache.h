// Per-VM content-addressed transfer cache (server side).
//
// Holds verbatim copies of bulk `in buffer` payloads the guest marked
// `reusable;`, keyed by their 64-bit content digest (src/common/hash64.h).
// Once a payload is installed, later calls that re-send the same bytes
// travel as a 24-byte CachedDesc instead of the payload — the Nth identical
// weight upload or input matrix costs a descriptor, not megabytes.
//
// Correctness never depends on cache state: a lookup miss surfaces as a
// kCacheMiss status BEFORE the API call executes, and the guest re-sends
// the call once with the bytes inlined. Digests are verified at install
// time by re-hashing the received bytes on the server, so a forged or
// corrupted descriptor can never alias wrong contents into the cache.
//
// Eviction is LRU under a byte budget (AVA_XFER_CACHE_BYTES, default
// 64 MiB; 0 disables the cache). Entries are handed out as shared_ptr so an
// entry serving the in-flight call survives an eviction triggered by a
// later parameter of the same call (the session drops its per-call
// references when the call completes).
//
// Thread-safe: the router may execute a VM's calls on several worker lanes
// concurrently (AVA_VM_PARALLELISM), so every cache operation runs under an
// internal mutex. Entries are shared_ptr, so a concurrent eviction can never
// free bytes a lane is still reading — the lane's per-call reference keeps
// them alive.
#ifndef AVA_SRC_SERVER_XFER_CACHE_H_
#define AVA_SRC_SERVER_XFER_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "src/common/serial.h"
#include "src/obs/metrics.h"

namespace ava {

// Default byte budget when AVA_XFER_CACHE_BYTES is unset.
inline constexpr std::size_t kDefaultXferCacheBytes = 64u << 20;

// Resolves the cache byte budget: AVA_XFER_CACHE_BYTES when set and
// well-formed (0 disables the cache), else the default. Malformed values
// log and fall back to the default, like the other AVA_* knobs.
std::size_t XferCacheBudgetFromEnv();

class TransferCache {
 public:
  // Per-instance view, for tests and diagnostics. Process-global
  // xfer_cache.* metric cells aggregate the same events across sessions.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t installs = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes_saved = 0;
  };

  struct InstallResult {
    bool installed = false;
    std::uint32_t slot = 0;
  };

  explicit TransferCache(std::size_t budget_bytes);

  TransferCache(const TransferCache&) = delete;
  TransferCache& operator=(const TransferCache&) = delete;

  // Returns the resident bytes for (hash, length), touching LRU recency, or
  // null on a miss. A present digest with a different length counts as a
  // miss (different content that collided on the 64-bit hash).
  std::shared_ptr<const Bytes> Lookup(std::uint64_t hash,
                                      std::uint64_t length);

  // Installs a copy of `data` under `hash`, evicting least-recently-used
  // entries to fit the budget. Re-installing a resident digest refreshes
  // its bytes and recency. Returns installed=false when the cache is
  // disabled or the payload alone exceeds the budget.
  InstallResult Install(std::uint64_t hash,
                        std::span<const std::uint8_t> data);

  // Drops every entry (test hook; models a server-side flush the guest
  // only discovers through misses).
  void Clear();

  // Changes the byte budget, evicting LRU entries down to the new limit.
  void Reconfigure(std::size_t budget_bytes);

  std::size_t size_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_bytes_;
  }
  std::size_t entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }
  std::size_t budget_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return budget_bytes_;
  }
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  struct Entry {
    std::shared_ptr<const Bytes> data;
    std::uint32_t slot = 0;
    std::list<std::uint64_t>::iterator lru_it;
  };

  void EvictToFit(std::size_t incoming_bytes);  // caller holds mutex_

  mutable std::mutex mutex_;
  std::size_t budget_bytes_;
  std::size_t size_bytes_ = 0;
  std::uint32_t next_slot_ = 1;
  // Front = most recently used; values are digest keys into entries_.
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  Stats stats_;

  // Process-global cells (aggregated across sessions by the registry).
  std::shared_ptr<obs::Counter> hits_;
  std::shared_ptr<obs::Counter> misses_;
  std::shared_ptr<obs::Counter> installs_;
  std::shared_ptr<obs::Counter> evictions_;
  std::shared_ptr<obs::Counter> bytes_saved_;
};

}  // namespace ava

#endif  // AVA_SRC_SERVER_XFER_CACHE_H_
