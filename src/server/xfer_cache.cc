#include "src/server/xfer_cache.h"

#include <cstdlib>

#include "src/common/log.h"

namespace ava {

std::size_t XferCacheBudgetFromEnv() {
  const char* env = std::getenv("AVA_XFER_CACHE_BYTES");
  if (env == nullptr || *env == '\0') {
    return kDefaultXferCacheBytes;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 0) {
    AVA_LOG(ERROR) << "malformed AVA_XFER_CACHE_BYTES '" << env
                   << "', using default " << kDefaultXferCacheBytes;
    return kDefaultXferCacheBytes;
  }
  return static_cast<std::size_t>(parsed);
}

TransferCache::TransferCache(std::size_t budget_bytes)
    : budget_bytes_(budget_bytes) {
  auto& registry = obs::MetricRegistry::Default();
  hits_ = registry.NewCounter("xfer_cache.hits");
  misses_ = registry.NewCounter("xfer_cache.misses");
  installs_ = registry.NewCounter("xfer_cache.installs");
  evictions_ = registry.NewCounter("xfer_cache.evictions");
  bytes_saved_ = registry.NewCounter("xfer_cache.bytes_saved");
}

std::shared_ptr<const Bytes> TransferCache::Lookup(std::uint64_t hash,
                                                   std::uint64_t length) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(hash);
  if (it == entries_.end() || it->second.data->size() != length) {
    ++stats_.misses;
    misses_->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  stats_.bytes_saved += length;
  hits_->Increment();
  bytes_saved_->Increment(length);
  return it->second.data;
}

TransferCache::InstallResult TransferCache::Install(
    std::uint64_t hash, std::span<const std::uint8_t> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (budget_bytes_ == 0 || data.size() > budget_bytes_) {
    return {};
  }
  std::uint32_t slot;
  auto it = entries_.find(hash);
  if (it != entries_.end()) {
    // Refresh: same digest, possibly different bytes (hash collision or a
    // re-install after a length-mismatch miss). Fully detach the old entry
    // before making room: EvictToFit walks the LRU list, and when the
    // refreshed entry sits at its tail with a payload growing past the
    // remaining budget it would otherwise evict — and free — the very
    // entry being refreshed (and subtract its size a second time).
    slot = it->second.slot;
    size_bytes_ -= it->second.data->size();
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  } else {
    slot = next_slot_++;
  }
  EvictToFit(data.size());
  Entry entry;
  entry.data = std::make_shared<const Bytes>(data.begin(), data.end());
  entry.slot = slot;
  lru_.push_front(hash);
  entry.lru_it = lru_.begin();
  size_bytes_ += data.size();
  entries_.emplace(hash, std::move(entry));
  ++stats_.installs;
  installs_->Increment();
  return {true, slot};
}

void TransferCache::EvictToFit(std::size_t incoming_bytes) {
  while (size_bytes_ + incoming_bytes > budget_bytes_ && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    auto it = entries_.find(victim);
    size_bytes_ -= it->second.data->size();
    lru_.pop_back();
    entries_.erase(it);
    ++stats_.evictions;
    evictions_->Increment();
  }
}

void TransferCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  size_bytes_ = 0;
}

void TransferCache::Reconfigure(std::size_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  budget_bytes_ = budget_bytes;
  EvictToFit(0);
}

}  // namespace ava
