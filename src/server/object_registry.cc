#include "src/server/object_registry.h"

#include <string>

namespace ava {
namespace {

// Per-call capture buffers (see BeginCallCapture in the header): a call
// executes wholly on one worker thread, so thread-local storage keeps
// concurrent calls' created/destroyed sets apart without widening the
// registry lock. BeginCallCapture clears them, so reuse of a worker thread
// across calls (or across registries) cannot leak ids between captures.
thread_local std::vector<WireHandle> tls_created_in_call;
thread_local std::vector<WireHandle> tls_destroyed_in_call;

}  // namespace

WireHandle ObjectRegistry::NextId() {
  if (forced_cursor_ < forced_ids_.size()) {
    WireHandle id = forced_ids_[forced_cursor_++];
    if (id >= next_id_) {
      next_id_ = id + 1;
    }
    return id;
  }
  return next_id_++;
}

WireHandle ObjectRegistry::Insert(std::uint32_t type_tag, void* real) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  const WireHandle id = NextId();
  Entry entry;
  entry.type_tag = type_tag;
  entry.real = real;
  entry.last_use_ns = MonotonicNowNs();
  entries_[id] = std::move(entry);
  tls_created_in_call.push_back(id);
  if (touch_observer_ && type_tag == touch_tag_) {
    touch_observer_(id);
  }
  return id;
}

WireHandle ObjectRegistry::InternOrFind(std::uint32_t type_tag, void* real) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = interned_reverse_.find(real);
  if (it != interned_reverse_.end()) {
    return it->second;
  }
  const WireHandle id = NextId();
  Entry entry;
  entry.type_tag = type_tag;
  entry.real = real;
  entry.interned = true;
  entry.last_use_ns = MonotonicNowNs();
  entries_[id] = std::move(entry);
  interned_reverse_[real] = id;
  // Interned handles minted inside a recorded call (e.g. device discovery)
  // must replay with the same ids after migration.
  tls_created_in_call.push_back(id);
  if (touch_observer_ && type_tag == touch_tag_) {
    touch_observer_(id);
  }
  return id;
}

Result<void*> ObjectRegistry::Translate(std::uint32_t type_tag, WireHandle id) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return NotFound("vm " + std::to_string(vm_id_) + ": unknown handle " +
                    std::to_string(id));
  }
  if (it->second.type_tag != type_tag) {
    return InvalidArgument("vm " + std::to_string(vm_id_) + ": handle " +
                           std::to_string(id) + " has wrong type");
  }
  it->second.last_use_ns = MonotonicNowNs();
  if (touch_observer_ && type_tag == touch_tag_) {
    touch_observer_(id);
  }
  return it->second.real;
}

ObjectRegistry::Entry* ObjectRegistry::Find(WireHandle id) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

Status ObjectRegistry::Retain(WireHandle id) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return NotFound("retain of unknown handle " + std::to_string(id));
  }
  if (!it->second.interned) {
    ++it->second.refcount;
  }
  return OkStatus();
}

Result<bool> ObjectRegistry::Release(WireHandle id, void** removed_real) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return NotFound("release of unknown handle " + std::to_string(id));
  }
  if (it->second.interned) {
    return false;
  }
  if (--it->second.refcount > 0) {
    return false;
  }
  if (removed_real != nullptr) {
    *removed_real = it->second.real;
  }
  tls_destroyed_in_call.push_back(id);
  if (reclaim_hook_) {
    reclaim_hook_(it->second);
  }
  entries_.erase(it);
  return true;
}

void ObjectRegistry::SetMeta(WireHandle id, WireHandle parent,
                             std::uint64_t size) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.parent = parent;
    it->second.size = size;
  }
}

void ObjectRegistry::Touch(WireHandle id) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.last_use_ns = MonotonicNowNs();
  }
}

void* ObjectRegistry::PinIfResident(std::uint32_t type_tag, WireHandle id,
                                    bool* swapped_out) {
  *swapped_out = false;
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end() || it->second.type_tag != type_tag) {
    return nullptr;
  }
  Entry& entry = it->second;
  if (entry.swapped || entry.real == nullptr) {
    *swapped_out = entry.swapped;
    return nullptr;
  }
  ++entry.pinned;
  entry.last_use_ns = MonotonicNowNs();
  entry.clock_ref = true;
  if (entry.clean_valid) {
    // The pinning call may write the buffer; the async write-back copy is
    // no longer trustworthy.
    entry.clean_valid = false;
    entry.clean_copy.clear();
    entry.clean_copy.shrink_to_fit();
  }
  if (touch_observer_ && type_tag == touch_tag_) {
    touch_observer_(id);
  }
  return entry.real;
}

void ObjectRegistry::SetReclaimHook(std::function<void(Entry&)> hook) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  reclaim_hook_ = std::move(hook);
}

void ObjectRegistry::SetTouchObserver(std::uint32_t type_tag,
                                      std::function<void(WireHandle)> fn) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  touch_tag_ = type_tag;
  touch_observer_ = std::move(fn);
}

void ObjectRegistry::ForEach(
    std::uint32_t type_tag,
    const std::function<void(WireHandle, Entry&)>& fn) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  for (auto& [id, entry] : entries_) {
    if (entry.type_tag == type_tag) {
      fn(id, entry);
    }
  }
}

void ObjectRegistry::ForEachAll(
    const std::function<void(WireHandle, Entry&)>& fn) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  for (auto& [id, entry] : entries_) {
    fn(id, entry);
  }
}

std::size_t ObjectRegistry::LiveCount() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return entries_.size();
}

void ObjectRegistry::BeginCallCapture() {
  tls_created_in_call.clear();
  tls_destroyed_in_call.clear();
}

std::vector<WireHandle> ObjectRegistry::TakeCreated() {
  std::vector<WireHandle> out;
  out.swap(tls_created_in_call);
  return out;
}

std::vector<WireHandle> ObjectRegistry::TakeDestroyed() {
  std::vector<WireHandle> out;
  out.swap(tls_destroyed_in_call);
  return out;
}

void ObjectRegistry::PushForcedIds(const std::vector<WireHandle>& ids) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  forced_ids_.insert(forced_ids_.end(), ids.begin(), ids.end());
}

Status ObjectRegistry::WithEntry(WireHandle id,
                                 const std::function<void(Entry&)>& fn) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return NotFound("unknown handle " + std::to_string(id));
  }
  fn(it->second);
  return OkStatus();
}

}  // namespace ava
