#include "src/server/api_server.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "src/common/hash64.h"
#include "src/common/log.h"
#include "src/common/vclock.h"
#include "src/obs/admin.h"
#include "src/obs/flight.h"
#include "src/obs/trace.h"

namespace ava {

thread_local ServerContext::CallScratch* ServerContext::tls_scratch_ =
    nullptr;

ServerContext::ServerContext(VmId vm_id, ObjectRegistry* registry,
                             SwapManager* swap)
    : vm_id_(vm_id),
      registry_(registry),
      swap_(swap),
      xfer_cache_(std::make_unique<TransferCache>(XferCacheBudgetFromEnv())) {}

Result<void*> ServerContext::TranslateSwappable(std::uint32_t type_tag,
                                                WireHandle id) {
  if (swap_ != nullptr) {
    return swap_->TranslatePinned(registry_, id);
  }
  return registry_->Translate(type_tag, id);
}

Status ServerContext::ReadBulkIn(ByteReader* r, BulkIn* out) {
  return ReadBulkInInner(r, out, /*allow_cached=*/true);
}

Status ServerContext::ReadBulkInInner(ByteReader* r, BulkIn* out,
                                      bool allow_cached) {
  *out = BulkIn{};
  const std::uint8_t marker = r->GetU8();
  if (marker == kBulkNull) {
    return r->status();
  }
  if (marker == kBulkInline) {
    auto view = r->GetBlobView();
    AVA_RETURN_IF_ERROR(r->status());
    out->present = true;
    out->data = view.data();
    out->size = view.size();
    return OkStatus();
  }
  if (marker == kBulkArena) {
    const ArenaDesc desc = GetArenaDesc(r);
    AVA_RETURN_IF_ERROR(r->status());
    if (arena_ == nullptr) {
      return InvalidArgument("arena descriptor on an arena-less session");
    }
    AVA_ASSIGN_OR_RETURN(auto span, arena_->Resolve(desc));
    out->present = true;
    out->data = span.data();
    out->size = span.size();
    return OkStatus();
  }
  if (marker == kBulkCached && allow_cached) {
    const CachedDesc desc = GetCachedDesc(r);
    AVA_RETURN_IF_ERROR(r->status());
    std::shared_ptr<const Bytes> entry =
        xfer_cache_->Lookup(desc.hash, desc.length);
    if (entry == nullptr) {
      // Pre-execution by construction (handlers unmarshal before calling
      // the API), so the guest's inline re-send is safe even for
      // non-idempotent functions.
      return CacheMiss("transfer cache does not hold the named digest");
    }
    out->present = true;
    out->data = entry->data();
    out->size = entry->size();
    scratch().cache_refs.push_back(std::move(entry));
    return OkStatus();
  }
  if (marker == kBulkCachedInstall && allow_cached) {
    const CachedDesc desc = GetCachedDesc(r);
    AVA_RETURN_IF_ERROR(r->status());
    BulkIn inner;
    AVA_RETURN_IF_ERROR(ReadBulkInInner(r, &inner, /*allow_cached=*/false));
    if (!inner.present) {
      return InvalidArgument("cache install carries no payload");
    }
    // Re-hash on the server: the digest is what later hits are served by,
    // so it must describe the bytes that actually arrived. This also
    // covers arena-slot payloads, which the frame CRC does not.
    if (inner.size != desc.length ||
        Hash64(inner.data, inner.size) != desc.hash) {
      return InvalidArgument("transfer-cache digest mismatch on install");
    }
    const TransferCache::InstallResult installed = xfer_cache_->Install(
        desc.hash, std::span<const std::uint8_t>(inner.data, inner.size));
    if (installed.installed) {
      CachedDesc ack = desc;
      ack.slot = installed.slot;
      scratch().cache_acks.push_back(ack);
    }
    *out = inner;
    return OkStatus();
  }
  return InvalidArgument("bad bulk-buffer marker");
}

Status ServerContext::ReadBulkOut(ByteReader* r, BulkOut* out) {
  *out = BulkOut{};
  const std::uint8_t marker = r->GetU8();
  if (marker == kBulkNull) {
    return r->status();
  }
  if (marker == kBulkInline) {
    out->capacity = r->GetU64();
    AVA_RETURN_IF_ERROR(r->status());
    out->wanted = true;
    return OkStatus();
  }
  if (marker == kBulkArena) {
    const ArenaDesc desc = GetArenaDesc(r);
    AVA_RETURN_IF_ERROR(r->status());
    if (arena_ == nullptr) {
      return InvalidArgument("arena descriptor on an arena-less session");
    }
    AVA_ASSIGN_OR_RETURN(auto span, arena_->Resolve(desc));
    out->wanted = true;
    out->capacity = desc.length;  // guest-provided capacity
    out->via_arena = true;
    out->arena_data = span.data();
    return OkStatus();
  }
  return InvalidArgument("bad bulk-buffer marker");
}

void ServerContext::PutBulkOut(ByteWriter* w, const BulkOut& desc,
                               bool present, const void* data,
                               std::size_t bytes) {
  if (!present) {
    w->PutU8(kBulkNull);
    return;
  }
  if (desc.via_arena) {
    const std::size_t n =
        std::min(bytes, static_cast<std::size_t>(desc.capacity));
    // Handlers normally write through arena_data directly; tolerate ones
    // that produced the value elsewhere.
    if (data != nullptr && data != desc.arena_data && n > 0) {
      std::memcpy(desc.arena_data, data, n);
    }
    w->PutU8(kBulkArena);
    w->PutU64(static_cast<std::uint64_t>(n));
    return;
  }
  w->PutU8(kBulkInline);
  w->PutBlob(data, bytes);
}

void ServerContext::LatchAsyncError(std::int32_t api_error) {
  std::lock_guard<std::mutex> lock(shadow_mutex_);
  // Keep the first unreported error (closest to a local execution's report).
  if (latched_async_error_ == 0) {
    latched_async_error_ = api_error;
  }
}

void ServerContext::StashShadowReady(std::uint64_t shadow_id, Bytes data) {
  std::lock_guard<std::mutex> lock(shadow_mutex_);
  ready_shadows_.emplace_back(shadow_id, std::move(data));
}

void ServerContext::StashShadowDeferred(std::uint64_t shadow_id,
                                        std::function<bool(Bytes*)> poll) {
  std::lock_guard<std::mutex> lock(shadow_mutex_);
  deferred_shadows_.push_back(DeferredShadow{shadow_id, std::move(poll)});
}

ApiServerSession::ApiServerSession(VmId vm_id,
                                   std::shared_ptr<SwapManager> swap)
    : vm_id_(vm_id),
      registry_(vm_id),
      swap_(std::move(swap)),
      context_(vm_id, &registry_, swap_.get()) {
  if (swap_ != nullptr) {
    swap_->AttachRegistry(&registry_);
  }
  const std::string prefix = "server.vm" + std::to_string(vm_id) + ".";
  auto& registry = obs::MetricRegistry::Default();
  calls_executed_ = registry.NewCounter(prefix + "calls_executed");
  async_calls_ = registry.NewCounter(prefix + "async_calls");
  dispatch_errors_ = registry.NewCounter(prefix + "dispatch_errors");
  shadows_delivered_ = registry.NewCounter(prefix + "shadows_delivered");
  cost_vns_total_ = registry.NewCounter(prefix + "cost_vns_total");
  exec_ns_ = registry.NewHistogram("server.exec_ns");
  trace_enabled_ = obs::TraceEnabled();
  // The API server half of the stack also exposes the admin plane: in a
  // split deployment whichever process hosts sessions serves AVA_ADMIN_SOCK
  // (idempotent when the router already did).
  obs::AdminChannel::EnsureDefaultServing();
}

ApiServerSession::~ApiServerSession() {
  if (swap_ != nullptr) {
    swap_->DetachRegistry(&registry_);
  }
}

void ApiServerSession::RegisterApi(std::uint16_t api_id, ApiHandler handler) {
  handlers_[api_id] = std::move(handler);
}

Result<std::optional<Bytes>> ApiServerSession::Execute(
    const Bytes& message, std::int64_t* cost_vns) {
  if (cost_vns != nullptr) {
    *cost_vns = 0;
  }
  AVA_ASSIGN_OR_RETURN(MsgKind kind, PeekKind(message));
  if (kind == MsgKind::kBatch) {
    AVA_ASSIGN_OR_RETURN(std::vector<Bytes> calls, DecodeBatch(message));
    for (const Bytes& call : calls) {
      AVA_ASSIGN_OR_RETURN(DecodedCall decoded, DecodeCall(call));
      std::int64_t call_cost = 0;
      AVA_ASSIGN_OR_RETURN(auto reply, ExecuteCall(decoded, &call_cost));
      (void)reply;  // batched calls are async by construction: no replies
      if (cost_vns != nullptr) {
        *cost_vns += call_cost;
      }
    }
    return std::optional<Bytes>();
  }
  if (kind != MsgKind::kCall) {
    return DataLoss("server received a non-call message");
  }
  AVA_ASSIGN_OR_RETURN(DecodedCall decoded, DecodeCall(message));
  return ExecuteCall(decoded, cost_vns);
}

ApiServerSession::Stats ApiServerSession::stats() const {
  Stats stats;
  stats.calls_executed = calls_executed_->Value();
  stats.async_calls = async_calls_->Value();
  stats.dispatch_errors = dispatch_errors_->Value();
  stats.shadows_delivered = shadows_delivered_->Value();
  stats.cost_vns_total = static_cast<std::int64_t>(cost_vns_total_->Value());
  return stats;
}

Result<std::optional<Bytes>> ApiServerSession::ExecuteCall(
    const DecodedCall& call, std::int64_t* cost_vns) {
  auto handler_it = handlers_.find(call.header.api_id);
  const bool is_async = call.header.is_async();
  const bool sampling = obs::SamplingEnabled();
  const std::int64_t exec_start = sampling ? MonotonicNowNs() : 0;

  // Per-call state lives on this stack frame and is visible to the handler
  // through the thread-local installer: concurrent lanes each get their own.
  ServerContext::CallScratch scratch;
  ServerContext::ScopedScratch scoped(&scratch);

  // Flight recorder: the begin record lands before the handler runs, so a
  // crash inside the handler leaves a begin with no matching end — that IS
  // the post-mortem signal (`avactl flight` / the SIGSEGV dump).
  obs::FlightRecorder::Default().RecordEvent(
      obs::FlightKind::kExecBegin, static_cast<std::uint32_t>(vm_id_),
      call.header.trace_id, call.header.call_id,
      static_cast<std::uint64_t>(call.header.api_id) << 32 |
          call.header.func_id,
      0);

  Status dispatch_status = OkStatus();
  Bytes reply_payload;
  if (handler_it == handlers_.end()) {
    dispatch_status = NotFound(
        "no handler for api " + std::to_string(call.header.api_id));
  } else {
    registry_.BeginCallCapture();
    ByteReader args(call.payload.data(), call.payload.size());
    ByteWriter reply;
    dispatch_status = handler_it->second(&context_, call.header.func_id,
                                         &args, is_async, &reply);
    reply_payload = std::move(reply).TakeBytes();
    if (dispatch_status.ok() && scratch.record_requested &&
        record_sink_ != nullptr) {
      Bytes payload(call.payload.begin(), call.payload.end());
      record_sink_->OnRecordedCall(call.header, payload,
                                   registry_.TakeCreated(),
                                   registry_.TakeDestroyed());
    }
    if (swap_ != nullptr) {
      swap_->UnpinAll(&registry_);
    }
    // The call is over: cache entries served to it may now be reclaimed by
    // future evictions (scratch.cache_refs releases with this frame).
  }

  const std::int64_t exec_end = sampling ? MonotonicNowNs() : 0;
  if (sampling) {
    exec_ns_->Record(exec_end - exec_start);
  }
  calls_executed_->Increment();
  if (!dispatch_status.ok()) {
    dispatch_errors_->Increment();
    AVA_LOG(WARNING) << "vm " << vm_id_ << " call "
                     << call.header.func_id << " dispatch failed: "
                     << dispatch_status;
  }
  if (trace_enabled_ && call.header.trace_id != 0) {
    obs::Tracer::Default().RecordSpan(
        obs::TraceLane::kServer, "server.exec", vm_id_, call.header.trace_id,
        exec_start, exec_end,
        {{"func_id", static_cast<std::int64_t>(call.header.func_id)},
         {"async", is_async ? 1 : 0}});
  }

  const std::int64_t cost = context_.TakeCost();
  cost_vns_total_->Increment(
      static_cast<std::uint64_t>(std::max<std::int64_t>(cost, 0)));
  if (cost_vns != nullptr) {
    *cost_vns = cost;
  }
  obs::FlightRecorder::Default().RecordEvent(
      obs::FlightKind::kExecEnd, static_cast<std::uint32_t>(vm_id_),
      call.header.trace_id, call.header.call_id,
      static_cast<std::uint64_t>(std::max<std::int64_t>(cost, 0)),
      static_cast<std::uint16_t>(dispatch_status.code()));

  if (is_async) {
    async_calls_->Increment();
    if (!dispatch_status.ok()) {
      // Cannot report faithfully (§4.2): latch for a later sync reply.
      context_.LatchAsyncError(
          static_cast<std::int32_t>(dispatch_status.code()));
    }
    if (!scratch.cache_acks.empty()) {
      // No reply to ride: park the acks for the next sync reply.
      std::lock_guard<std::mutex> lock(context_.shadow_mutex_);
      context_.deferred_cache_acks_.insert(
          context_.deferred_cache_acks_.end(), scratch.cache_acks.begin(),
          scratch.cache_acks.end());
    }
    return std::optional<Bytes>();
  }

  ReplyHeader header;
  header.call_id = call.header.call_id;
  header.vm_id = call.header.vm_id;
  header.status_code = static_cast<std::int32_t>(dispatch_status.code());
  // Propagate the per-call trace context so the guest can close its span.
  // The router patches t_rx/t_dispatch into the encoded reply afterwards.
  header.trace_id = call.header.trace_id;
  header.t_exec_start_ns = exec_start;
  header.t_exec_end_ns = exec_end;
  ReplyBuilder builder(header);
  builder.SetPayload(reply_payload);
  ReapShadows(&builder, &scratch);
  builder.SetCost(cost);
  return std::optional<Bytes>(std::move(builder).Finish());
}

void ApiServerSession::ReapShadows(ReplyBuilder* reply,
                                   ServerContext::CallScratch* scratch) {
  std::lock_guard<std::mutex> lock(context_.shadow_mutex_);
  // Transfer-cache install acks ride their reserved shadow id. Delivered
  // even on error replies: the installs did happen, and an un-acked install
  // would just cost the guest a redundant re-install later. This call's own
  // installs plus any parked by async calls since the last sync reply.
  if (!scratch->cache_acks.empty() ||
      !context_.deferred_cache_acks_.empty()) {
    ByteWriter acks;
    for (const CachedDesc& desc : scratch->cache_acks) {
      PutCachedDesc(&acks, desc);
    }
    for (const CachedDesc& desc : context_.deferred_cache_acks_) {
      PutCachedDesc(&acks, desc);
    }
    reply->AddShadow(kXferCacheAckShadowId, std::move(acks).TakeBytes());
    scratch->cache_acks.clear();
    context_.deferred_cache_acks_.clear();
  }
  // Latched async error rides the reserved shadow id.
  if (context_.latched_async_error_ != 0) {
    Bytes err(sizeof(std::int32_t));
    std::memcpy(err.data(), &context_.latched_async_error_, sizeof(std::int32_t));
    reply->AddShadow(kAsyncErrorShadowId, err);
    context_.latched_async_error_ = 0;
  }
  for (auto& [id, data] : context_.ready_shadows_) {
    reply->AddShadow(id, data);
    shadows_delivered_->Increment();
  }
  context_.ready_shadows_.clear();
  auto it = context_.deferred_shadows_.begin();
  while (it != context_.deferred_shadows_.end()) {
    Bytes data;
    if (it->poll(&data)) {
      reply->AddShadow(it->shadow_id, data);
      shadows_delivered_->Increment();
      it = context_.deferred_shadows_.erase(it);
    } else {
      ++it;
    }
  }
}

Status ApiServerSession::Replay(const CallHeader& header, const Bytes& payload,
                                const std::vector<WireHandle>& created_ids) {
  auto handler_it = handlers_.find(header.api_id);
  if (handler_it == handlers_.end()) {
    return NotFound("no handler for api " + std::to_string(header.api_id));
  }
  registry_.PushForcedIds(created_ids);
  registry_.BeginCallCapture();
  ServerContext::CallScratch scratch;
  scratch.replaying = true;
  ServerContext::ScopedScratch scoped(&scratch);
  ByteReader args(payload.data(), payload.size());
  ByteWriter reply;
  Status status = handler_it->second(&context_, header.func_id, &args,
                                     /*is_async=*/false, &reply);
  if (swap_ != nullptr) {
    swap_->UnpinAll(&registry_);
  }
  return status;
}

}  // namespace ava
