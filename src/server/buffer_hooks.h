// API-specific buffer mechanics injected into the API-agnostic runtime.
//
// The spec's resource annotations say *which* objects are device buffers and
// how big they are; these hooks say *how* to move their bytes — synthesized
// from the API itself (read = clEnqueueReadBuffer-style calls, recreate =
// clCreateBuffer with COPY_HOST_PTR). Used by both the SwapManager (§4.3
// buffer-granularity swapping) and the migration engine (§4.3 record/replay
// + device-buffer snapshot). See src/gen/vcl_hooks.cc for the VCL instance.
#ifndef AVA_SRC_SERVER_BUFFER_HOOKS_H_
#define AVA_SRC_SERVER_BUFFER_HOOKS_H_

#include <cstdint>
#include <functional>

#include "src/common/result.h"
#include "src/common/serial.h"
#include "src/server/object_registry.h"

namespace ava {

struct BufferHooks {
  // The registry type tag of device buffer objects.
  std::uint32_t buffer_type_tag = 0;

  // Reads the device contents of a resident buffer into `out` (blocking;
  // enqueued behind any in-flight work so the content is stable).
  std::function<Status(ObjectRegistry*, WireHandle, ObjectRegistry::Entry&,
                       Bytes*)>
      read_back;

  // Releases the device buffer backing this entry.
  std::function<void(ObjectRegistry*, ObjectRegistry::Entry&)> free_buffer;

  // Recreates a device buffer with `contents`; returns the real handle or
  // nullptr when the device is full.
  std::function<void*(ObjectRegistry*, WireHandle, ObjectRegistry::Entry&,
                      const Bytes&)>
      realloc_buffer;

  // Overwrites a resident buffer's device contents (migration restore).
  std::function<Status(ObjectRegistry*, WireHandle, ObjectRegistry::Entry&,
                       const Bytes&)>
      write_back;
};

}  // namespace ava

#endif  // AVA_SRC_SERVER_BUFFER_HOOKS_H_
