// Per-VM object registry: the server-side mapping from guest-visible wire
// handles to real silo handles.
//
// This is where AvA's isolation story lives: wire ids are minted per VM and
// validated on every translation, so a guest can only ever name its own
// objects. Entries also carry the metadata the spec's resource annotations
// provide — object kind, byte size, parent object — which powers VM
// migration (enumerate & snapshot) and buffer-granularity swapping.
#ifndef AVA_SRC_SERVER_OBJECT_REGISTRY_H_
#define AVA_SRC_SERVER_OBJECT_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/serial.h"
#include "src/common/vclock.h"
#include "src/proto/wire.h"

namespace ava {

// Which level of the swap hierarchy holds a buffer's authoritative bytes.
// kDevice is the only resident state; everything else is "swapped" in the
// original one-tier sense. kLost is terminal: the backing bytes failed an
// integrity check (truncated spill file, corrupt compressed page) and the
// buffer's contents are sealed as DataLoss without taking the server down.
enum class SwapTier : std::uint8_t {
  kDevice = 0,
  kHost = 1,        // raw bytes in Entry::swap_copy
  kCompressed = 2,  // LZSS page in Entry::swap_copy (swap_lzss set)
  kDisk = 3,        // extent in the swap manager's spill file
  kLost = 4,        // integrity failure; translate answers DataLoss
};

class ObjectRegistry {
 public:
  struct Entry {
    std::uint32_t type_tag = 0;  // API-specific discriminator (generated)
    void* real = nullptr;        // silo handle; nullptr while swapped out
    std::int32_t refcount = 1;   // guest-visible retain count
    bool interned = false;       // platform/device-style: not refcounted
    // Spec-provided resource metadata.
    WireHandle parent = 0;       // e.g. buffer -> owning context id
    std::uint64_t size = 0;      // e.g. buffer byte size
    // Swap state (buffer objects only). All of it — tier, pins, copies —
    // is guarded by this registry's lock, which shards swap bookkeeping
    // per VM instead of serializing every lane on one global mutex.
    bool swapped = false;   // kept in sync with tier != kDevice
    SwapTier tier = SwapTier::kDevice;
    Bytes swap_copy;        // kHost: raw bytes; kCompressed: LZSS page
    bool swap_lzss = false;       // swap_copy / disk payload is compressed
    std::uint64_t content_crc = 0;  // CRC-64 of raw bytes (set on compress)
    std::uint64_t disk_offset = 0;  // kDisk: payload extent in spill file
    std::uint32_t disk_len = 0;     // kDisk: payload length (0 = no extent)
    // Async write-back: a clean host copy of a resident, cold buffer kept
    // by the demotion thread so a later eviction can skip the synchronous
    // device read-back. Any pin invalidates it (the call may write).
    Bytes clean_copy;
    bool clean_valid = false;
    bool prefetched = false;  // promoted to host by prefetch, not yet used
    bool clock_ref = false;   // clock-estimator reference bit, set on pin
    std::int32_t pinned = 0;  // pinned buffers are never evicted
    std::int64_t last_use_ns = 0;
  };

  explicit ObjectRegistry(VmId vm_id) : vm_id_(vm_id) {}

  VmId vm_id() const { return vm_id_; }

  // Mints a new wire id for `real` (refcount 1). During replay the id comes
  // from the forced-id queue instead, reproducing the original handle space.
  WireHandle Insert(std::uint32_t type_tag, void* real);

  // Finds the existing id for an interned object or mints one. Used for
  // platform/device handles that the silo owns and never releases.
  WireHandle InternOrFind(std::uint32_t type_tag, void* real);

  // Resolves a wire id, checking the type tag. NotFound for foreign/stale
  // ids — the isolation check.
  Result<void*> Translate(std::uint32_t type_tag, WireHandle id);

  Entry* Find(WireHandle id);

  Status Retain(WireHandle id);

  // Decrements; removes the entry at zero. `*removed_real` receives the real
  // handle when the entry was removed (so the caller can observe it).
  Result<bool> Release(WireHandle id, void** removed_real);

  // Attaches spec-provided metadata to an entry.
  void SetMeta(WireHandle id, WireHandle parent, std::uint64_t size);

  // Stamps last-use time (swap LRU).
  void Touch(WireHandle id);

  // Lock-light swap fast path: if `id` names a resident (device-tier)
  // buffer of `type_tag`, pins it, stamps use/clock state, invalidates any
  // clean write-back copy (the call may write the buffer), and returns the
  // real handle — all under this registry's per-VM lock, with no global
  // swap state touched. Returns nullptr otherwise; `*swapped_out` reports
  // whether the miss was a swapped-out buffer of the right type (the
  // caller's cue to take the swap-in slow path).
  void* PinIfResident(std::uint32_t type_tag, WireHandle id,
                      bool* swapped_out);

  // Installed by the swap manager: runs (under the registry lock) on every
  // entry erased by Release, so tier resources that live outside the
  // registry — spill-file extents — are reclaimed when the guest frees a
  // swapped-out buffer. Must not acquire locks.
  void SetReclaimHook(std::function<void(Entry&)> hook);

  // Installed by live migration: runs (under the registry lock) whenever an
  // entry of `type_tag` is minted or handed to a call that may write it
  // (Translate / PinIfResident). Conservative — reads fire it too — which
  // only costs the pre-copy loop a redundant re-scan, never a missed write.
  // Pass nullptr to uninstall. The observer may take only leaf locks.
  void SetTouchObserver(std::uint32_t type_tag,
                        std::function<void(WireHandle)> fn);

  // Iterates entries of one type under the lock.
  void ForEach(std::uint32_t type_tag,
               const std::function<void(WireHandle, Entry&)>& fn);
  void ForEachAll(const std::function<void(WireHandle, Entry&)>& fn);

  // Runs `fn` on the entry under the registry lock (recursive: `fn` may call
  // back into the registry, e.g. swap hooks translating a parent handle).
  // Returns NotFound when the id is unknown.
  Status WithEntry(WireHandle id, const std::function<void(Entry&)>& fn);

  std::size_t LiveCount() const;

  // ---- per-call capture (migration recording) ----
  // Capture is per thread: a call executes wholly on one worker, so the
  // ids it creates/destroys accumulate in thread-local storage and calls
  // running concurrently on other lanes never mix into each other's
  // record. Begin/Take must run on the thread that executed the call.
  void BeginCallCapture();
  std::vector<WireHandle> TakeCreated();
  std::vector<WireHandle> TakeDestroyed();

  // ---- replay support ----
  // While the forced-id queue is non-empty, Insert consumes ids from it
  // instead of minting new ones (restores the original handle space).
  void PushForcedIds(const std::vector<WireHandle>& ids);

 private:
  WireHandle NextId();

  const VmId vm_id_;
  mutable std::recursive_mutex mutex_;
  std::unordered_map<WireHandle, Entry> entries_;
  std::unordered_map<void*, WireHandle> interned_reverse_;
  WireHandle next_id_ = 1;
  std::vector<WireHandle> forced_ids_;
  std::size_t forced_cursor_ = 0;
  std::function<void(Entry&)> reclaim_hook_;
  std::uint32_t touch_tag_ = 0;
  std::function<void(WireHandle)> touch_observer_;
};

// Resets a swapped entry's authoritative bytes to a raw host-tier copy
// (migration restore, failed swap-in). Any disk extent the entry held is
// left for the swap manager's sweep to reclaim (tier != kDisk with a
// non-zero disk_len marks it orphaned).
inline void StoreSwappedHostBytes(ObjectRegistry::Entry& entry, Bytes bytes) {
  entry.swap_copy = std::move(bytes);
  entry.swapped = true;
  entry.tier = SwapTier::kHost;
  entry.swap_lzss = false;
  entry.content_crc = 0;
  entry.clean_copy.clear();
  entry.clean_valid = false;
  entry.prefetched = false;
  entry.real = nullptr;
}

}  // namespace ava

#endif  // AVA_SRC_SERVER_OBJECT_REGISTRY_H_
