// Per-VM object registry: the server-side mapping from guest-visible wire
// handles to real silo handles.
//
// This is where AvA's isolation story lives: wire ids are minted per VM and
// validated on every translation, so a guest can only ever name its own
// objects. Entries also carry the metadata the spec's resource annotations
// provide — object kind, byte size, parent object — which powers VM
// migration (enumerate & snapshot) and buffer-granularity swapping.
#ifndef AVA_SRC_SERVER_OBJECT_REGISTRY_H_
#define AVA_SRC_SERVER_OBJECT_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/serial.h"
#include "src/common/vclock.h"
#include "src/proto/wire.h"

namespace ava {

class ObjectRegistry {
 public:
  struct Entry {
    std::uint32_t type_tag = 0;  // API-specific discriminator (generated)
    void* real = nullptr;        // silo handle; nullptr while swapped out
    std::int32_t refcount = 1;   // guest-visible retain count
    bool interned = false;       // platform/device-style: not refcounted
    // Spec-provided resource metadata.
    WireHandle parent = 0;       // e.g. buffer -> owning context id
    std::uint64_t size = 0;      // e.g. buffer byte size
    // Swap state (buffer objects only).
    bool swapped = false;
    Bytes swap_copy;
    std::int32_t pinned = 0;  // pinned buffers are never evicted
    std::int64_t last_use_ns = 0;
  };

  explicit ObjectRegistry(VmId vm_id) : vm_id_(vm_id) {}

  VmId vm_id() const { return vm_id_; }

  // Mints a new wire id for `real` (refcount 1). During replay the id comes
  // from the forced-id queue instead, reproducing the original handle space.
  WireHandle Insert(std::uint32_t type_tag, void* real);

  // Finds the existing id for an interned object or mints one. Used for
  // platform/device handles that the silo owns and never releases.
  WireHandle InternOrFind(std::uint32_t type_tag, void* real);

  // Resolves a wire id, checking the type tag. NotFound for foreign/stale
  // ids — the isolation check.
  Result<void*> Translate(std::uint32_t type_tag, WireHandle id);

  Entry* Find(WireHandle id);

  Status Retain(WireHandle id);

  // Decrements; removes the entry at zero. `*removed_real` receives the real
  // handle when the entry was removed (so the caller can observe it).
  Result<bool> Release(WireHandle id, void** removed_real);

  // Attaches spec-provided metadata to an entry.
  void SetMeta(WireHandle id, WireHandle parent, std::uint64_t size);

  // Stamps last-use time (swap LRU).
  void Touch(WireHandle id);

  // Iterates entries of one type under the lock.
  void ForEach(std::uint32_t type_tag,
               const std::function<void(WireHandle, Entry&)>& fn);
  void ForEachAll(const std::function<void(WireHandle, Entry&)>& fn);

  // Runs `fn` on the entry under the registry lock (recursive: `fn` may call
  // back into the registry, e.g. swap hooks translating a parent handle).
  // Returns NotFound when the id is unknown.
  Status WithEntry(WireHandle id, const std::function<void(Entry&)>& fn);

  std::size_t LiveCount() const;

  // ---- per-call capture (migration recording) ----
  // Capture is per thread: a call executes wholly on one worker, so the
  // ids it creates/destroys accumulate in thread-local storage and calls
  // running concurrently on other lanes never mix into each other's
  // record. Begin/Take must run on the thread that executed the call.
  void BeginCallCapture();
  std::vector<WireHandle> TakeCreated();
  std::vector<WireHandle> TakeDestroyed();

  // ---- replay support ----
  // While the forced-id queue is non-empty, Insert consumes ids from it
  // instead of minting new ones (restores the original handle space).
  void PushForcedIds(const std::vector<WireHandle>& ids);

 private:
  WireHandle NextId();

  const VmId vm_id_;
  mutable std::recursive_mutex mutex_;
  std::unordered_map<WireHandle, Entry> entries_;
  std::unordered_map<void*, WireHandle> interned_reverse_;
  WireHandle next_id_ = 1;
  std::vector<WireHandle> forced_ids_;
  std::size_t forced_cursor_ = 0;
};

}  // namespace ava

#endif  // AVA_SRC_SERVER_OBJECT_REGISTRY_H_
