// Migration call recorder (§4.3): during normal execution the API server
// reports every call whose spec says `record;` — global configuration,
// object allocation/deallocation, object modification — and the recorder
// keeps the minimal replayable log. Object tracking (as in Nooks) lets it
// drop records whose created objects have all been destroyed, so the log
// tracks live state rather than history.
//
// The record/replay plane has a second consumer: access_trace.h logs the
// order replayed/translated buffers are touched, and the swap manager turns
// those transitions into prefetch hints for its tiered memory hierarchy —
// after a migration, replaying the log re-trains the trace so the restored
// VM's working set is promoted ahead of demand.
#ifndef AVA_SRC_MIGRATE_RECORDER_H_
#define AVA_SRC_MIGRATE_RECORDER_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/proto/wire.h"
#include "src/server/api_server.h"

namespace ava {

struct RecordedCall {
  CallHeader header;
  Bytes payload;
  std::vector<WireHandle> created;
};

class Recorder : public RecordSink {
 public:
  void OnRecordedCall(const CallHeader& header, const Bytes& payload,
                      std::vector<WireHandle> created,
                      std::vector<WireHandle> destroyed) override;

  // Live records, in original order, with tombstoned entries elided.
  std::vector<RecordedCall> LiveLog() const;

  std::size_t TotalRecorded() const;
  std::size_t LiveCount() const;

 private:
  struct Slot {
    RecordedCall call;
    std::size_t created_alive = 0;  // of the ids this call created
    bool dropped = false;
  };

  mutable std::mutex mutex_;
  std::vector<Slot> log_;
  std::unordered_map<WireHandle, std::size_t> creator_index_;
  std::uint64_t total_recorded_ = 0;
};

}  // namespace ava

#endif  // AVA_SRC_MIGRATE_RECORDER_H_
