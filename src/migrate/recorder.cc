#include "src/migrate/recorder.h"

#include <utility>

namespace ava {

void Recorder::OnRecordedCall(const CallHeader& header, const Bytes& payload,
                              std::vector<WireHandle> created,
                              std::vector<WireHandle> destroyed) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_recorded_;
  // Tombstone creators of destroyed objects first: a release call both
  // destroys an id and gets recorded itself (it must replay to keep retain
  // counts balanced for still-live objects).
  for (WireHandle dead : destroyed) {
    auto it = creator_index_.find(dead);
    if (it == creator_index_.end()) {
      continue;
    }
    Slot& slot = log_[it->second];
    if (slot.created_alive > 0) {
      --slot.created_alive;
    }
    if (slot.created_alive == 0) {
      slot.dropped = true;
    }
    creator_index_.erase(it);
  }
  Slot slot;
  slot.call.header = header;
  slot.call.payload = payload;
  slot.call.created = std::move(created);
  slot.created_alive = slot.call.created.size();
  const std::size_t index = log_.size();
  for (WireHandle id : slot.call.created) {
    creator_index_[id] = index;
  }
  log_.push_back(std::move(slot));
}

std::vector<RecordedCall> Recorder::LiveLog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RecordedCall> out;
  out.reserve(log_.size());
  for (const Slot& slot : log_) {
    if (!slot.dropped) {
      out.push_back(slot.call);
    }
  }
  return out;
}

std::size_t Recorder::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(total_recorded_);
}

std::size_t Recorder::LiveCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const Slot& slot : log_) {
    if (!slot.dropped) {
      ++n;
    }
  }
  return n;
}

}  // namespace ava
