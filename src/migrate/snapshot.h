// VM accelerator-state migration (§4.3): suspend → record/replay snapshot +
// device-buffer copy-out → (any VM migration mechanism) → replay + copy-in →
// resume. The snapshot serializes to bytes, so it can cross a socket to a
// different host process in the disaggregated configuration.
#ifndef AVA_SRC_MIGRATE_SNAPSHOT_H_
#define AVA_SRC_MIGRATE_SNAPSHOT_H_

#include <vector>

#include "src/common/result.h"
#include "src/migrate/recorder.h"
#include "src/router/router.h"
#include "src/server/buffer_hooks.h"

namespace ava {

struct VmSnapshot {
  VmId vm_id = 0;
  std::vector<RecordedCall> calls;
  // Contents of every extant device buffer, keyed by wire id.
  std::vector<std::pair<WireHandle, Bytes>> buffers;

  Bytes Serialize() const;
  static Result<VmSnapshot> Deserialize(const Bytes& data);

  std::size_t TotalBufferBytes() const;
};

// Timings of a capture/restore, for the migration experiment (E6).
struct MigrationTimings {
  std::int64_t suspend_ns = 0;
  std::int64_t snapshot_ns = 0;
  std::int64_t replay_ns = 0;
  std::int64_t restore_buffers_ns = 0;
};

class SwapManager;

class MigrationEngine {
 public:
  explicit MigrationEngine(BufferHooks hooks) : hooks_(std::move(hooks)) {}

  // Lets Capture materialize swapped-out buffers from every tier of the
  // swap hierarchy (compressed pages, disk spill extents). Without it only
  // host-tier and compressed copies can be snapshotted; a disk-tier buffer
  // fails the capture with FailedPrecondition.
  void SetSwapManager(SwapManager* swap) { swap_ = swap; }

  // Suspends `vm_id` on `router` (drains its in-flight call; the device
  // quiesces because buffer read-back is enqueued behind all outstanding
  // work), then captures the replay log and all device buffers.
  // The VM stays paused; the caller decides whether to Resume or migrate.
  Result<VmSnapshot> Capture(Router* router, ApiServerSession* session,
                             const Recorder& recorder,
                             MigrationTimings* timings = nullptr);

  // Rebuilds the VM's accelerator state in a fresh session: replays the
  // recorded calls (restoring the original wire-handle space) and writes the
  // buffer contents back. Calls referencing objects that died before the
  // snapshot are skipped.
  Status Restore(const VmSnapshot& snapshot, ApiServerSession* target,
                 MigrationTimings* timings = nullptr);

 private:
  BufferHooks hooks_;
  SwapManager* swap_ = nullptr;
};

}  // namespace ava

#endif  // AVA_SRC_MIGRATE_SNAPSHOT_H_
