#include "src/migrate/live.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "src/common/hash64.h"
#include "src/common/log.h"
#include "src/common/vclock.h"
#include "src/obs/admin.h"
#include "src/obs/flight.h"
#include "src/obs/metrics.h"
#include "src/server/swap_manager.h"

namespace ava {
namespace {

// ----------------------------- wire frames ---------------------------------

enum class FrameKind : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kOffer = 3,
  kNeed = 4,
  kChunk = 5,
  kManifest = 6,
  kCommit = 7,
  kAbort = 8,
};

constexpr std::uint32_t kMigrateMagic = 0x4156414d;  // "AVAM"
constexpr std::uint32_t kMigrateVersion = 1;

// Sane chunk-size bounds a HELLO may negotiate: below 1 KiB the digest
// bookkeeping outweighs the payloads, above 16 MiB a single chunk defeats
// delta shipping.
constexpr std::size_t kMinChunkBytes = 1u << 10;
constexpr std::size_t kMaxChunkBytes = 16u << 20;

void PutString(ByteWriter* w, const std::string& s) {
  w->PutBlob(s.data(), s.size());
}

std::string GetString(ByteReader* r) {
  Bytes raw = r->GetBlob();
  return std::string(raw.begin(), raw.end());
}

// ----------------------------- env knobs -----------------------------------

std::int64_t EnvInt(const char* name, std::int64_t fallback,
                    std::int64_t min_ok, std::int64_t max_ok) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || parsed < min_ok || parsed > max_ok) {
    AVA_LOG(ERROR) << "ignoring malformed " << name << ": " << env;
    return fallback;
  }
  return static_cast<std::int64_t>(parsed);
}

// ----------------------------- observability -------------------------------

struct MigrateCells {
  std::shared_ptr<obs::Gauge> phase;
  std::shared_ptr<obs::Counter> rounds;
  std::shared_ptr<obs::Counter> bytes_shipped;
  std::shared_ptr<obs::Counter> bytes_deduped;
  std::shared_ptr<obs::Counter> chunks_shipped;
  std::shared_ptr<obs::Counter> aborts;
  std::shared_ptr<obs::Counter> failovers;
  std::shared_ptr<obs::Gauge> last_downtime_ms;
  std::shared_ptr<obs::Gauge> committed_rounds;
};

MigrateCells& Cells() {
  static MigrateCells cells = [] {
    auto& registry = obs::MetricRegistry::Default();
    MigrateCells c;
    c.phase = registry.NewGauge("migrate.phase");
    c.rounds = registry.NewCounter("migrate.rounds");
    c.bytes_shipped = registry.NewCounter("migrate.bytes_shipped");
    c.bytes_deduped = registry.NewCounter("migrate.bytes_deduped");
    c.chunks_shipped = registry.NewCounter("migrate.chunks_shipped");
    c.aborts = registry.NewCounter("migrate.aborts");
    c.failovers = registry.NewCounter("migrate.failovers");
    c.last_downtime_ms = registry.NewGauge("migrate.last_downtime_ms");
    c.committed_rounds = registry.NewGauge("migrate.committed_rounds");
    return c;
  }();
  return cells;
}

// Status board behind `avactl migrate`: the most recent migration activity
// in this process, either side. Guarded global like the router's admin
// handlers, so a query after the engines die gets stale text, never a
// dangling pointer.
struct MigrateBoard {
  std::mutex mutex;
  std::string role = "-";
  VmId vm_id = 0;
  MigratePhase phase = MigratePhase::kIdle;
  int rounds = 0;
  std::uint64_t bytes_shipped = 0;
  std::uint64_t bytes_deduped = 0;
  std::uint64_t residual_bytes = 0;
  std::int64_t downtime_ns = 0;
  std::string last_event = "-";
};

MigrateBoard& Board() {
  static MigrateBoard board;
  return board;
}

void BoardUpdate(const std::string& role, VmId vm_id, MigratePhase phase,
                 const LiveMigrateStats* stats, const std::string& event) {
  MigrateBoard& board = Board();
  std::lock_guard<std::mutex> lock(board.mutex);
  board.role = role;
  board.vm_id = vm_id;
  board.phase = phase;
  if (stats != nullptr) {
    board.rounds = stats->rounds;
    board.bytes_shipped = stats->bytes_shipped;
    board.bytes_deduped = stats->bytes_deduped;
    board.residual_bytes = stats->residual_bytes;
    board.downtime_ns = stats->downtime_ns;
  }
  if (!event.empty()) {
    board.last_event = event;
  }
}

void RecordPhaseFlight(VmId vm_id, MigratePhase phase) {
  Cells().phase->Set(static_cast<std::int64_t>(phase));
  obs::FlightRecorder::Default().RecordEvent(
      obs::FlightKind::kMigratePhase, static_cast<std::uint32_t>(vm_id), 0, 0,
      static_cast<std::uint32_t>(phase), 0);
}

}  // namespace

const char* MigratePhaseName(MigratePhase phase) {
  switch (phase) {
    case MigratePhase::kIdle:
      return "idle";
    case MigratePhase::kPreCopy:
      return "precopy";
    case MigratePhase::kStopAndCopy:
      return "stop_and_copy";
    case MigratePhase::kCutover:
      return "cutover";
    case MigratePhase::kDone:
      return "done";
    case MigratePhase::kAborted:
      return "aborted";
    case MigratePhase::kFailover:
      return "failover";
  }
  return "?";
}

void RegisterMigrateAdminVerb() {
  static std::once_flag once;
  std::call_once(once, [] {
    obs::AdminChannel::Default().RegisterCommand(
        "migrate", [](const std::string&) -> std::string {
          MigrateBoard& board = Board();
          std::lock_guard<std::mutex> lock(board.mutex);
          std::ostringstream out;
          out << "role " << board.role << "\n"
              << "vm " << board.vm_id << "\n"
              << "phase " << MigratePhaseName(board.phase) << "\n"
              << "rounds " << board.rounds << "\n"
              << "bytes_shipped " << board.bytes_shipped << "\n"
              << "bytes_deduped " << board.bytes_deduped << "\n"
              << "residual_bytes " << board.residual_bytes << "\n"
              << "downtime_ms " << board.downtime_ns / 1000000.0 << "\n"
              << "last_event " << board.last_event << "\n";
          return out.str();
        });
  });
}

LiveMigrateOptions LiveMigrateOptions::FromEnv() {
  LiveMigrateOptions options;
  options.chunk_bytes = static_cast<std::size_t>(
      EnvInt("AVA_MIGRATE_CHUNK", static_cast<std::int64_t>(options.chunk_bytes),
             static_cast<std::int64_t>(kMinChunkBytes),
             static_cast<std::int64_t>(kMaxChunkBytes)));
  options.max_rounds = static_cast<int>(
      EnvInt("AVA_MIGRATE_MAX_ROUNDS", options.max_rounds, 1, 1000));
  options.downtime_target_ms = EnvInt(
      "AVA_MIGRATE_DOWNTIME_MS", options.downtime_target_ms, 0, 3600000);
  options.frame_timeout_ms =
      EnvInt("AVA_MIGRATE_TIMEOUT_MS", options.frame_timeout_ms, 1, 3600000);
  return options;
}

// ============================ source side ==================================

LiveMigrationSource::LiveMigrationSource(BufferHooks hooks,
                                         LiveMigrateOptions options)
    : hooks_(std::move(hooks)), options_(options) {
  RegisterMigrateAdminVerb();
}

LiveMigrationSource::~LiveMigrationSource() { RemoveObserver(); }

void LiveMigrationSource::SetPhase(MigratePhase phase) {
  {
    std::lock_guard<std::mutex> lock(phase_mutex_);
    phase_ = phase;
  }
  const VmId vm_id = session_ != nullptr ? session_->vm_id() : 0;
  RecordPhaseFlight(vm_id, phase);
  BoardUpdate("source", vm_id, phase, &stats_, MigratePhaseName(phase));
}

MigratePhase LiveMigrationSource::phase() const {
  std::lock_guard<std::mutex> lock(phase_mutex_);
  return phase_;
}

void LiveMigrationSource::InstallObserver() {
  if (observer_installed_ || session_ == nullptr) {
    return;
  }
  // The tracker is a leaf mutex, so marking from under the registry lock is
  // safe (the documented observer contract).
  DirtyTracker* tracker = &tracker_;
  session_->registry().SetTouchObserver(
      hooks_.buffer_type_tag, [tracker](WireHandle id) { tracker->Mark(id); });
  observer_installed_ = true;
}

void LiveMigrationSource::RemoveObserver() {
  if (!observer_installed_ || session_ == nullptr) {
    return;
  }
  session_->registry().SetTouchObserver(hooks_.buffer_type_tag, nullptr);
  observer_installed_ = false;
}

Status LiveMigrationSource::Bind(Router* router, ApiServerSession* session,
                                 const Recorder* recorder) {
  if (session == nullptr) {
    return InvalidArgument("live migration needs a source session");
  }
  router_ = router;
  session_ = session;
  recorder_ = recorder;
  InstallObserver();
  return OkStatus();
}

Status LiveMigrationSource::SendFrame(Bytes frame) {
  SealFrame(&frame);
  return channel_->Send(frame);
}

Result<Bytes> LiveMigrationSource::RecvFrame() {
  AVA_ASSIGN_OR_RETURN(
      Bytes frame, channel_->RecvTimeout(options_.frame_timeout_ms * 1000000));
  AVA_RETURN_IF_ERROR(CheckAndStripFrame(&frame));
  return frame;
}

Status LiveMigrationSource::Connect(TransportPtr channel) {
  if (channel == nullptr) {
    return InvalidArgument("null migration channel");
  }
  if (session_ == nullptr) {
    return FailedPrecondition("Connect before Bind");
  }
  channel_ = std::move(channel);
  ByteWriter hello;
  hello.PutU8(static_cast<std::uint8_t>(FrameKind::kHello));
  hello.PutU32(kMigrateMagic);
  hello.PutU32(kMigrateVersion);
  hello.PutU64(session_->vm_id());
  hello.PutU64(options_.chunk_bytes);
  AVA_RETURN_IF_ERROR(SendFrame(std::move(hello).TakeBytes()));
  auto ack = RecvFrame();
  if (!ack.ok()) {
    return Aborted("migration handshake failed: " +
                   std::string(ack.status().message()));
  }
  ByteReader r(*ack);
  const auto kind = static_cast<FrameKind>(r.GetU8());
  const bool ok = r.GetBool();
  const std::string reason = GetString(&r);
  if (r.failed() || kind != FrameKind::kHelloAck) {
    return Aborted("migration handshake: malformed HELLO_ACK");
  }
  if (!ok) {
    return Aborted("target rejected migration: " + reason);
  }
  return OkStatus();
}

Status LiveMigrationSource::ScanObject(
    WireHandle id, std::vector<std::pair<ScanChunk, Bytes>>* fresh) {
  Bytes contents;
  bool skipped_pinned = false;
  bool have_bytes = false;
  Status inner = OkStatus();
  Status with = session_->registry().WithEntry(
      id, [&](ObjectRegistry::Entry& entry) {
        if (entry.type_tag != hooks_.buffer_type_tag) {
          return;  // not a buffer; nothing to ship
        }
        if (entry.pinned > 0) {
          // A lane is executing on this buffer right now; re-mark it dirty
          // and let a later round (or the post-quiesce residual pass, where
          // pins are guaranteed zero) pick it up.
          skipped_pinned = true;
          return;
        }
        if (entry.swapped) {
          Result<Bytes> raw = swap_ != nullptr
                                  ? swap_->MaterializeSwapped(entry)
                                  : MaterializeSwappedCopy(entry);
          if (!raw.ok()) {
            inner = raw.status();
            return;
          }
          contents = std::move(raw).value();
          have_bytes = true;
          return;
        }
        inner = hooks_.read_back(&session_->registry(), id, entry, &contents);
        have_bytes = inner.ok();
      });
  if (!with.ok()) {
    // Freed since it was marked dirty: drop it from the manifest table.
    object_digests_.erase(id);
    return OkStatus();
  }
  AVA_RETURN_IF_ERROR(inner);
  if (skipped_pinned) {
    tracker_.Mark(id);
    return OkStatus();
  }
  if (!have_bytes) {
    return OkStatus();  // wrong-type id strayed into the dirty set
  }

  ScannedObject scanned;
  scanned.size = contents.size();
  stats_.objects_scanned += 1;
  stats_.bytes_scanned += contents.size();
  const std::size_t chunk = options_.chunk_bytes;
  for (std::size_t off = 0; off == 0 || off < contents.size(); off += chunk) {
    const std::size_t len = std::min(chunk, contents.size() - off);
    ScanChunk c;
    c.digest = Hash64(contents.data() + off, len);
    c.length = static_cast<std::uint32_t>(len);
    scanned.chunks.push_back(c);
    if (target_has_.insert(c.digest).second) {
      fresh->emplace_back(
          c, Bytes(contents.begin() + static_cast<std::ptrdiff_t>(off),
                   contents.begin() + static_cast<std::ptrdiff_t>(off + len)));
    } else {
      stats_.bytes_deduped += len;
      Cells().bytes_deduped->Increment(len);
    }
    if (contents.empty()) {
      break;  // zero-length buffer still contributes one (empty) chunk
    }
  }
  object_digests_[id] = std::move(scanned);
  return OkStatus();
}

Status LiveMigrationSource::ShipChunks(
    int round, const std::vector<std::pair<ScanChunk, Bytes>>& fresh,
    std::uint64_t* shipped_bytes) {
  ByteWriter offer;
  offer.PutU8(static_cast<std::uint8_t>(FrameKind::kOffer));
  offer.PutU32(static_cast<std::uint32_t>(round));
  offer.PutU32(static_cast<std::uint32_t>(fresh.size()));
  for (const auto& [chunk, bytes] : fresh) {
    offer.PutU64(chunk.digest);
    offer.PutU32(chunk.length);
    stats_.bytes_offered += chunk.length;
  }
  AVA_RETURN_IF_ERROR(SendFrame(std::move(offer).TakeBytes()));

  AVA_ASSIGN_OR_RETURN(Bytes need_frame, RecvFrame());
  ByteReader r(need_frame);
  const auto kind = static_cast<FrameKind>(r.GetU8());
  if (kind == FrameKind::kAbort) {
    return Aborted("target aborted: " + GetString(&r));
  }
  const std::uint32_t need_round = r.GetU32();
  const std::uint32_t need_count = r.GetU32();
  if (r.failed() || kind != FrameKind::kNeed ||
      need_round != static_cast<std::uint32_t>(round) ||
      need_count > fresh.size()) {
    return Aborted("malformed NEED frame from target");
  }
  for (std::uint32_t i = 0; i < need_count; ++i) {
    const std::uint32_t index = r.GetU32();
    if (r.failed() || index >= fresh.size()) {
      return Aborted("malformed NEED index from target");
    }
    const auto& [chunk, bytes] = fresh[index];
    ByteWriter frame;
    frame.PutU8(static_cast<std::uint8_t>(FrameKind::kChunk));
    frame.PutU64(chunk.digest);
    frame.PutBlob(bytes.data(), bytes.size());
    AVA_RETURN_IF_ERROR(SendFrame(std::move(frame).TakeBytes()));
    *shipped_bytes += bytes.size();
    stats_.bytes_shipped += bytes.size();
    stats_.chunks_shipped += 1;
    Cells().bytes_shipped->Increment(bytes.size());
    Cells().chunks_shipped->Increment();
  }
  // Chunks the target did NOT request were already resident over there
  // (deduped by the OFFER/NEED handshake rather than source-side history).
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    bool needed = false;
    ByteReader again(need_frame);
    again.GetU8();
    again.GetU32();
    const std::uint32_t count = again.GetU32();
    for (std::uint32_t j = 0; j < count; ++j) {
      if (again.GetU32() == i) {
        needed = true;
        break;
      }
    }
    if (!needed) {
      stats_.bytes_deduped += fresh[i].first.length;
      Cells().bytes_deduped->Increment(fresh[i].first.length);
    }
  }
  return OkStatus();
}

Bytes LiveMigrationSource::BuildManifest(int round, bool final_round) const {
  ByteWriter w;
  w.PutU8(static_cast<std::uint8_t>(FrameKind::kManifest));
  w.PutU32(static_cast<std::uint32_t>(round));
  w.PutU8(final_round ? 1 : 0);

  ByteWriter body;
  body.PutU64(session_->vm_id());
  const std::vector<RecordedCall> calls =
      recorder_ != nullptr ? recorder_->LiveLog() : std::vector<RecordedCall>();
  body.PutU32(static_cast<std::uint32_t>(calls.size()));
  for (const RecordedCall& call : calls) {
    body.PutU16(call.header.api_id);
    body.PutU32(call.header.func_id);
    body.PutU64(call.header.call_id);
    body.PutU64(call.header.vm_id);
    body.PutU8(call.header.flags);
    body.PutBlob(call.payload.data(), call.payload.size());
    body.PutU32(static_cast<std::uint32_t>(call.created.size()));
    for (WireHandle id : call.created) {
      body.PutU64(id);
    }
  }

  // Object table: every scanned buffer still live in the registry, with the
  // metadata the import side needs to rebuild placement.
  ByteWriter table;
  std::uint32_t table_count = 0;
  for (const auto& [id, scanned] : object_digests_) {
    bool wrote = false;
    Status with = session_->registry().WithEntry(
        id, [&](ObjectRegistry::Entry& entry) {
          if (entry.type_tag != hooks_.buffer_type_tag) {
            return;
          }
          table.PutU64(id);
          table.PutU32(entry.type_tag);
          table.PutU64(entry.parent);
          table.PutU64(scanned.size);
          table.PutU32(static_cast<std::uint32_t>(entry.refcount));
          table.PutU8(entry.interned ? 1 : 0);
          table.PutU8(static_cast<std::uint8_t>(entry.tier));
          table.PutU32(static_cast<std::uint32_t>(entry.pinned));
          table.PutU32(static_cast<std::uint32_t>(scanned.chunks.size()));
          for (const ScanChunk& chunk : scanned.chunks) {
            table.PutU64(chunk.digest);
            table.PutU32(chunk.length);
          }
          wrote = true;
        });
    if (with.ok() && wrote) {
      ++table_count;
    }
  }
  body.PutU32(table_count);
  Bytes table_bytes = std::move(table).TakeBytes();
  body.PutRaw(table_bytes.data(), table_bytes.size());

  Bytes body_bytes = std::move(body).TakeBytes();
  w.PutBlob(body_bytes.data(), body_bytes.size());
  return std::move(w).TakeBytes();
}

Status LiveMigrationSource::AwaitCommit(int round) {
  AVA_ASSIGN_OR_RETURN(Bytes frame, RecvFrame());
  ByteReader r(frame);
  const auto kind = static_cast<FrameKind>(r.GetU8());
  if (kind == FrameKind::kAbort) {
    return Aborted("target aborted: " + GetString(&r));
  }
  const std::uint32_t commit_round = r.GetU32();
  const bool ok = r.GetBool();
  const std::string reason = GetString(&r);
  if (r.failed() || kind != FrameKind::kCommit ||
      commit_round != static_cast<std::uint32_t>(round)) {
    return Aborted("malformed COMMIT frame from target");
  }
  if (!ok) {
    return Aborted("target rejected round " + std::to_string(round) + ": " +
                   reason);
  }
  return OkStatus();
}

std::uint64_t LiveMigrationSource::ResidualDirtyBytes() const {
  std::uint64_t total = 0;
  for (WireHandle id : tracker_.Snapshot()) {
    ObjectRegistry::Entry* entry = session_->registry().Find(id);
    if (entry != nullptr && entry->type_tag == hooks_.buffer_type_tag) {
      total += entry->size;
    }
  }
  return total;
}

double LiveMigrationSource::EffectiveCopyRate() const {
  if (options_.copy_rate_bytes_per_sec > 0) {
    return options_.copy_rate_bytes_per_sec;
  }
  return measured_rate_;
}

Status LiveMigrationSource::AbortLocked(const std::string& reason,
                                        bool notify_target) {
  if (notify_target && channel_ != nullptr) {
    ByteWriter w;
    w.PutU8(static_cast<std::uint8_t>(FrameKind::kAbort));
    PutString(&w, reason);
    (void)SendFrame(std::move(w).TakeBytes());  // best-effort
  }
  if (frozen_ && router_ != nullptr && session_ != nullptr) {
    (void)router_->ResumeVm(session_->vm_id());
  }
  frozen_ = false;
  RemoveObserver();
  Cells().aborts->Increment();
  SetPhase(MigratePhase::kAborted);
  BoardUpdate("source", session_ != nullptr ? session_->vm_id() : 0,
              MigratePhase::kAborted, &stats_, "abort: " + reason);
  AVA_LOG(WARNING) << "live migration aborted: " << reason;
  return OkStatus();
}

Status LiveMigrationSource::Abort(const std::string& reason) {
  return AbortLocked(reason, /*notify_target=*/true);
}

Result<RoundReport> LiveMigrationSource::RunRound() {
  if (session_ == nullptr || channel_ == nullptr) {
    return FailedPrecondition("RunRound before Bind/Connect");
  }
  const MigratePhase now = phase();
  if (now != MigratePhase::kIdle && now != MigratePhase::kPreCopy) {
    return FailedPrecondition(std::string("RunRound in phase ") +
                              MigratePhaseName(now));
  }
  SetPhase(MigratePhase::kPreCopy);
  Stopwatch round_watch;
  const int round = stats_.rounds + 1;

  // Round 1 ships the full working set; later rounds only what the touch
  // observer saw written since the previous Take().
  std::unordered_set<WireHandle> dirty = tracker_.Take();
  if (!first_round_done_) {
    session_->registry().ForEach(
        hooks_.buffer_type_tag,
        [&](WireHandle id, ObjectRegistry::Entry&) { dirty.insert(id); });
  }

  RoundReport report;
  report.round = round;
  report.dirty_objects = dirty.size();

  std::vector<std::pair<ScanChunk, Bytes>> fresh;
  const std::uint64_t offered_before = stats_.bytes_offered;
  for (WireHandle id : dirty) {
    if (Status s = ScanObject(id, &fresh); !s.ok()) {
      const Status err =
          Aborted("pre-copy scan failed: " + std::string(s.message()));
      (void)AbortLocked(std::string(err.message()), /*notify_target=*/true);
      return err;
    }
  }
  first_round_done_ = true;

  std::uint64_t shipped = 0;
  if (Status s = ShipChunks(round, fresh, &shipped); !s.ok()) {
    const Status err = s.code() == StatusCode::kAborted
                           ? s
                           : Aborted("pre-copy ship failed: " +
                                     std::string(s.message()));
    (void)AbortLocked(std::string(err.message()), /*notify_target=*/false);
    return err;
  }
  if (Status s = SendFrame(BuildManifest(round, /*final_round=*/false));
      !s.ok()) {
    const Status err =
        Aborted("manifest send failed: " + std::string(s.message()));
    (void)AbortLocked(std::string(err.message()), /*notify_target=*/false);
    return err;
  }
  if (Status s = AwaitCommit(round); !s.ok()) {
    const Status err = s.code() == StatusCode::kAborted
                           ? s
                           : Aborted("commit wait failed: " +
                                     std::string(s.message()));
    (void)AbortLocked(std::string(err.message()), /*notify_target=*/false);
    return err;
  }

  stats_.rounds = round;
  Cells().rounds->Increment();
  report.bytes_offered = stats_.bytes_offered - offered_before;
  report.bytes_shipped = shipped;
  const std::int64_t elapsed_ns = round_watch.ElapsedNs();
  stats_.precopy_ns += elapsed_ns;
  if (shipped > 0 && elapsed_ns > 0) {
    measured_rate_ = static_cast<double>(shipped) * 1e9 /
                     static_cast<double>(elapsed_ns);
  }
  report.residual_dirty_bytes = ResidualDirtyBytes();
  const double rate = EffectiveCopyRate();
  if (report.residual_dirty_bytes == 0) {
    report.converged = true;
  } else if (rate > 0) {
    const double predicted_ms =
        static_cast<double>(report.residual_dirty_bytes) / rate * 1e3;
    report.converged =
        predicted_ms <= static_cast<double>(options_.downtime_target_ms);
  }
  last_report_ = report;
  BoardUpdate("source", session_->vm_id(), MigratePhase::kPreCopy, &stats_,
              "round " + std::to_string(round) + " committed");
  return report;
}

bool LiveMigrationSource::ShouldStop() const {
  if (stats_.rounds == 0) {
    return false;
  }
  return last_report_.converged || stats_.rounds >= options_.max_rounds;
}

Status LiveMigrationSource::StopAndCopy() {
  if (session_ == nullptr || channel_ == nullptr) {
    return FailedPrecondition("StopAndCopy before Bind/Connect");
  }
  SetPhase(MigratePhase::kStopAndCopy);
  Stopwatch downtime_watch;

  if (router_ != nullptr) {
    if (Status s = router_->QuiesceVm(session_->vm_id(),
                                      options_.quiesce_timeout_ms);
        !s.ok()) {
      const Status err =
          Aborted("stop-and-copy freeze failed: " + std::string(s.message()));
      (void)AbortLocked(std::string(err.message()), /*notify_target=*/true);
      return err;
    }
    frozen_ = true;
  }
  if (options_.stop_copy_delay_ms > 0) {
    // Crash cells aim a SIGKILL into this window: VM frozen, final state
    // not yet committed on the target.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.stop_copy_delay_ms));
  }

  // Pins must be zero across the whole registry: the quiesce drained every
  // lane, so a surviving pin is a leak that would let the device mutate
  // bytes after we declare them final.
  std::int32_t leaked_pins = 0;
  session_->registry().ForEach(
      hooks_.buffer_type_tag, [&](WireHandle, ObjectRegistry::Entry& entry) {
        leaked_pins += entry.pinned;
      });
  if (leaked_pins != 0) {
    const Status err = Aborted("stop-and-copy found " +
                               std::to_string(leaked_pins) + " leaked pins");
    (void)AbortLocked(std::string(err.message()), /*notify_target=*/true);
    return err;
  }

  const int round = stats_.rounds + 1;
  std::unordered_set<WireHandle> residual = tracker_.Take();
  if (!first_round_done_) {
    // Degenerate but legal: StopAndCopy with no pre-copy round is a frozen
    // full copy (matches the offline engine's coverage).
    session_->registry().ForEach(
        hooks_.buffer_type_tag,
        [&](WireHandle id, ObjectRegistry::Entry&) { residual.insert(id); });
    first_round_done_ = true;
  }
  std::uint64_t residual_bytes = 0;
  for (WireHandle id : residual) {
    ObjectRegistry::Entry* entry = session_->registry().Find(id);
    if (entry != nullptr && entry->type_tag == hooks_.buffer_type_tag) {
      residual_bytes += entry->size;
    }
  }
  stats_.residual_bytes = residual_bytes;

  std::vector<std::pair<ScanChunk, Bytes>> fresh;
  for (WireHandle id : residual) {
    if (Status s = ScanObject(id, &fresh); !s.ok()) {
      const Status err =
          Aborted("residual scan failed: " + std::string(s.message()));
      (void)AbortLocked(std::string(err.message()), /*notify_target=*/true);
      return err;
    }
  }
  std::uint64_t shipped = 0;
  if (Status s = ShipChunks(round, fresh, &shipped); !s.ok()) {
    const Status err =
        s.code() == StatusCode::kAborted
            ? s
            : Aborted("residual ship failed: " + std::string(s.message()));
    (void)AbortLocked(std::string(err.message()), /*notify_target=*/false);
    return err;
  }
  if (Status s = SendFrame(BuildManifest(round, /*final_round=*/true));
      !s.ok()) {
    const Status err =
        Aborted("final manifest send failed: " + std::string(s.message()));
    (void)AbortLocked(std::string(err.message()), /*notify_target=*/false);
    return err;
  }
  if (Status s = AwaitCommit(round); !s.ok()) {
    const Status err = s.code() == StatusCode::kAborted
                           ? s
                           : Aborted("final commit failed: " +
                                     std::string(s.message()));
    (void)AbortLocked(std::string(err.message()), /*notify_target=*/false);
    return err;
  }

  stats_.downtime_ns = downtime_watch.ElapsedNs();
  Cells().last_downtime_ms->Set(stats_.downtime_ns / 1000000);
  SetPhase(MigratePhase::kCutover);
  BoardUpdate("source", session_->vm_id(), MigratePhase::kCutover, &stats_,
              "final manifest committed");
  return OkStatus();
}

Status LiveMigrationSource::FinishCutover() {
  if (phase() != MigratePhase::kCutover) {
    return FailedPrecondition("FinishCutover outside kCutover");
  }
  RemoveObserver();
  if (router_ != nullptr) {
    AVA_RETURN_IF_ERROR(router_->DetachVm(session_->vm_id()));
  }
  frozen_ = false;
  SetPhase(MigratePhase::kDone);
  return OkStatus();
}

Status LiveMigrationSource::Run() {
  while (true) {
    AVA_ASSIGN_OR_RETURN(RoundReport report, RunRound());
    (void)report;
    if (ShouldStop()) {
      break;
    }
  }
  return StopAndCopy();
}

// ============================ target side ==================================

LiveMigrationTarget::LiveMigrationTarget(BufferHooks hooks,
                                         LiveMigrateOptions options)
    : hooks_(std::move(hooks)),
      options_(options),
      // Budget "unbounded": migration state must never evict mid-flight.
      store_(static_cast<std::size_t>(-1) / 2) {
  RegisterMigrateAdminVerb();
}

Result<LiveMigrationTarget::Manifest> LiveMigrationTarget::ParseManifest(
    const Bytes& body) {
  ByteReader r(body);
  Manifest manifest;
  manifest.vm_id = r.GetU64();
  const std::uint32_t num_calls = r.GetU32();
  for (std::uint32_t i = 0; i < num_calls && !r.failed(); ++i) {
    RecordedCall call;
    call.header.api_id = r.GetU16();
    call.header.func_id = r.GetU32();
    call.header.call_id = r.GetU64();
    call.header.vm_id = r.GetU64();
    call.header.flags = r.GetU8();
    call.payload = r.GetBlob();
    const std::uint32_t num_created = r.GetU32();
    for (std::uint32_t j = 0; j < num_created && !r.failed(); ++j) {
      call.created.push_back(r.GetU64());
    }
    manifest.calls.push_back(std::move(call));
  }
  const std::uint32_t num_objects = r.GetU32();
  for (std::uint32_t i = 0; i < num_objects && !r.failed(); ++i) {
    ManifestObject object;
    object.id = r.GetU64();
    object.type_tag = r.GetU32();
    object.parent = r.GetU64();
    object.size = r.GetU64();
    object.refcount = static_cast<std::int32_t>(r.GetU32());
    object.interned = r.GetU8() != 0;
    object.tier = r.GetU8();
    object.pinned = static_cast<std::int32_t>(r.GetU32());
    const std::uint32_t num_chunks = r.GetU32();
    for (std::uint32_t j = 0; j < num_chunks && !r.failed(); ++j) {
      const std::uint64_t digest = r.GetU64();
      const std::uint32_t length = r.GetU32();
      object.chunks.emplace_back(digest, length);
    }
    manifest.objects.push_back(std::move(object));
  }
  AVA_RETURN_IF_ERROR(r.status());
  return manifest;
}

Status LiveMigrationTarget::ValidateManifest(const Manifest& manifest) const {
  for (const ManifestObject& object : manifest.objects) {
    if (object.pinned != 0) {
      return FailedPrecondition("pinned object " + std::to_string(object.id) +
                                " in export");
    }
    if (static_cast<SwapTier>(object.tier) == SwapTier::kLost) {
      return FailedPrecondition("object " + std::to_string(object.id) +
                                " is data-lost at the source");
    }
    std::uint64_t total = 0;
    for (const auto& [digest, length] : object.chunks) {
      // const_cast-free: Lookup touches LRU recency, but store_ is mutable
      // state of this const check only in spirit; take it non-const.
      if (const_cast<TransferCache&>(store_).Lookup(digest, length) ==
          nullptr) {
        return FailedPrecondition("object " + std::to_string(object.id) +
                                  " references a chunk the target never " +
                                  "received");
      }
      total += length;
    }
    if (total != object.size) {
      return FailedPrecondition("object " + std::to_string(object.id) +
                                " chunk lengths disagree with its size");
    }
  }
  return OkStatus();
}

Status LiveMigrationTarget::Import(const Manifest& manifest) {
  if (session_ == nullptr) {
    return FailedPrecondition("import without a bound session");
  }
  if (imported_) {
    return FailedPrecondition("session already imported");
  }
  AVA_RETURN_IF_ERROR(ImportCalls(manifest));
  AVA_RETURN_IF_ERROR(ImportObjects(manifest));
  PruneStale(manifest);
  imported_ = true;
  return OkStatus();
}

Status LiveMigrationTarget::BeginImport() {
  if (import_begun_) {
    return OkStatus();
  }
  if (session_->registry().LiveCount() != 0) {
    return FailedPrecondition("target session is not fresh");
  }
  import_begun_ = true;
  return OkStatus();
}

Status LiveMigrationTarget::ImportCalls(const Manifest& manifest) {
  AVA_RETURN_IF_ERROR(BeginImport());
  std::size_t skipped = 0;
  for (const RecordedCall& call : manifest.calls) {
    // Identity, not index: the recorder elides tombstones, so position
    // shifts between rounds while the call itself is unchanged.
    const std::uint64_t key =
        Hash64(call.payload.data(), call.payload.size()) ^
        (static_cast<std::uint64_t>(call.header.func_id) << 32) ^
        call.header.call_id;
    if (!replayed_calls_.insert(key).second) {
      continue;  // replayed during an earlier eager round
    }
    Status s = session_->Replay(call.header, call.payload, call.created);
    if (!s.ok()) {
      ++skipped;
      AVA_LOG(INFO) << "import replay skipped call " << call.header.func_id
                    << ": " << s;
    }
  }
  if (skipped > 0) {
    AVA_LOG(WARNING) << "import replay skipped " << skipped << " of "
                     << manifest.calls.size() << " recorded calls";
  }
  return OkStatus();
}

Status LiveMigrationTarget::ImportObjects(const Manifest& manifest) {
  AVA_RETURN_IF_ERROR(BeginImport());
  for (const ManifestObject& object : manifest.objects) {
    if (object.type_tag != hooks_.buffer_type_tag) {
      continue;
    }
    std::uint64_t sig = 0xcbf29ce484222325ull ^ object.size;
    for (const auto& [digest, length] : object.chunks) {
      sig ^= digest + 0x9E3779B97F4A7C15ull + (sig << 6) + (sig >> 2);
      sig ^= length;
    }
    if (auto it = installed_sig_.find(object.id);
        it != installed_sig_.end() && it->second == sig) {
      continue;  // materialized in an earlier round, chunks unchanged
    }
    Bytes contents;
    contents.reserve(object.size);
    for (const auto& [digest, length] : object.chunks) {
      std::shared_ptr<const Bytes> chunk = store_.Lookup(digest, length);
      if (chunk == nullptr) {
        return Internal("chunk for object " + std::to_string(object.id) +
                        " vanished from the store");
      }
      contents.insert(contents.end(), chunk->begin(), chunk->end());
    }
    ObjectRegistry& registry = session_->registry();
    if (registry.Find(object.id) == nullptr) {
      // Call replay did not recreate this buffer (data-dependent creation
      // path, or a scripted-hooks session with no call log). Mint it under
      // its original wire id as a swapped host-tier entry.
      registry.PushForcedIds({object.id});
      const WireHandle minted = registry.Insert(object.type_tag, nullptr);
      if (minted != object.id) {
        return Internal("forced-id insert minted " + std::to_string(minted) +
                        " instead of " + std::to_string(object.id));
      }
      registry.SetMeta(object.id, object.parent, object.size);
    }
    Status inner = OkStatus();
    Status with = registry.WithEntry(
        object.id, [&](ObjectRegistry::Entry& entry) {
          const auto tier = static_cast<SwapTier>(object.tier);
          if (tier == SwapTier::kDevice && !entry.swapped &&
              entry.real != nullptr) {
            inner = hooks_.write_back(&session_->registry(), object.id, entry,
                                      contents);
            return;
          }
          // The source held the bytes off-device (or the target's own
          // demoter already moved the replayed buffer out, or the entry was
          // just minted above): land them in the host tier and let this
          // server's swap policy re-tier them.
          if (entry.real != nullptr) {
            hooks_.free_buffer(&session_->registry(), entry);
            entry.real = nullptr;
          }
          StoreSwappedHostBytes(entry, std::move(contents));
        });
    if (!with.ok()) {
      return Internal("imported registry is missing buffer " +
                      std::to_string(object.id));
    }
    AVA_RETURN_IF_ERROR(inner);
    installed_sig_[object.id] = sig;
  }
  return OkStatus();
}

void LiveMigrationTarget::PruneStale(const Manifest& manifest) {
  std::unordered_set<WireHandle> live;
  live.reserve(manifest.objects.size());
  for (const ManifestObject& object : manifest.objects) {
    live.insert(object.id);
  }
  ObjectRegistry& registry = session_->registry();
  for (auto it = installed_sig_.begin(); it != installed_sig_.end();) {
    if (live.count(it->first) != 0) {
      ++it;
      continue;
    }
    // The buffer was freed on the source between the eager round that
    // materialized it and this manifest. Non-buffer objects recreated by a
    // since-tombstoned call are NOT swept here: the registry has no
    // type-specific destructor for them, so they persist as unreferenced
    // imports (bounded by the eager rounds' call log).
    (void)registry.WithEntry(it->first, [&](ObjectRegistry::Entry& entry) {
      if (entry.real != nullptr) {
        hooks_.free_buffer(&registry, entry);
        entry.real = nullptr;
      }
      entry.swap_copy.clear();
      entry.swap_copy.shrink_to_fit();
    });
    void* removed = nullptr;
    (void)registry.Release(it->first, &removed);
    it = installed_sig_.erase(it);
  }
}

void LiveMigrationTarget::DiscardEagerState() {
  if (session_ == nullptr) {
    return;
  }
  ObjectRegistry& registry = session_->registry();
  for (const auto& [id, sig] : installed_sig_) {
    (void)registry.WithEntry(id, [&](ObjectRegistry::Entry& entry) {
      if (entry.real != nullptr) {
        hooks_.free_buffer(&registry, entry);
        entry.real = nullptr;
      }
      entry.swap_copy.clear();
      entry.swap_copy.shrink_to_fit();
    });
    void* removed = nullptr;
    (void)registry.Release(id, &removed);
  }
  installed_sig_.clear();
  replayed_calls_.clear();
  import_begun_ = false;
}

Status LiveMigrationTarget::Serve(TransportPtr channel,
                                  ApiServerSession* session) {
  if (channel == nullptr || session == nullptr) {
    return InvalidArgument("Serve needs a channel and a session");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    session_ = session;
    phase_ = MigratePhase::kPreCopy;
  }
  BoardUpdate("target", session->vm_id(), MigratePhase::kPreCopy, nullptr,
              "serving migration stream");

  const auto send_frame = [&](Bytes frame) -> Status {
    SealFrame(&frame);
    return channel->Send(frame);
  };
  const auto send_abort = [&](const std::string& reason) {
    ByteWriter w;
    w.PutU8(static_cast<std::uint8_t>(FrameKind::kAbort));
    PutString(&w, reason);
    (void)send_frame(std::move(w).TakeBytes());
  };
  const auto send_commit = [&](std::uint32_t round, bool ok,
                               const std::string& reason) -> Status {
    ByteWriter w;
    w.PutU8(static_cast<std::uint8_t>(FrameKind::kCommit));
    w.PutU32(round);
    w.PutU8(ok ? 1 : 0);
    PutString(&w, reason);
    return send_frame(std::move(w).TakeBytes());
  };

  bool hello_seen = false;
  while (true) {
    Result<Bytes> received = channel->Recv();
    if (!received.ok()) {
      // Channel death mid-stream: keep every committed round for TakeOver.
      BoardUpdate("target", session->vm_id(), phase(), nullptr,
                  "channel died: " +
                      std::string(received.status().message()));
      return received.status();
    }
    Bytes frame = *std::move(received);
    if (Status crc = CheckAndStripFrame(&frame); !crc.ok()) {
      send_abort("corrupt migration frame");
      return crc;  // DataLoss
    }
    ByteReader r(frame);
    const auto kind = static_cast<FrameKind>(r.GetU8());
    switch (kind) {
      case FrameKind::kHello: {
        const std::uint32_t magic = r.GetU32();
        const std::uint32_t version = r.GetU32();
        const VmId vm_id = r.GetU64();
        const std::uint64_t chunk_bytes = r.GetU64();
        std::string reject;
        if (r.failed() || magic != kMigrateMagic) {
          reject = "bad magic";
        } else if (version != kMigrateVersion) {
          reject = "version mismatch";
        } else if (chunk_bytes < kMinChunkBytes ||
                   chunk_bytes > kMaxChunkBytes) {
          reject = "unreasonable chunk size";
        } else if (session->registry().LiveCount() != 0) {
          reject = "target session is not fresh";
        }
        ByteWriter ack;
        ack.PutU8(static_cast<std::uint8_t>(FrameKind::kHelloAck));
        ack.PutU8(reject.empty() ? 1 : 0);
        PutString(&ack, reject);
        AVA_RETURN_IF_ERROR(send_frame(std::move(ack).TakeBytes()));
        if (!reject.empty()) {
          return Aborted("handshake rejected: " + reject);
        }
        (void)vm_id;
        hello_seen = true;
        break;
      }
      case FrameKind::kOffer: {
        if (!hello_seen) {
          send_abort("OFFER before HELLO");
          return Aborted("protocol violation: OFFER before HELLO");
        }
        const std::uint32_t round = r.GetU32();
        const std::uint32_t count = r.GetU32();
        ByteWriter need;
        need.PutU8(static_cast<std::uint8_t>(FrameKind::kNeed));
        need.PutU32(round);
        std::vector<std::uint32_t> missing;
        for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
          const std::uint64_t digest = r.GetU64();
          const std::uint32_t length = r.GetU32();
          if (store_.Lookup(digest, length) == nullptr) {
            missing.push_back(i);
          }
        }
        if (r.failed()) {
          send_abort("malformed OFFER");
          return Aborted("protocol violation: malformed OFFER");
        }
        need.PutU32(static_cast<std::uint32_t>(missing.size()));
        for (std::uint32_t index : missing) {
          need.PutU32(index);
        }
        AVA_RETURN_IF_ERROR(send_frame(std::move(need).TakeBytes()));
        break;
      }
      case FrameKind::kChunk: {
        const std::uint64_t digest = r.GetU64();
        Bytes payload = r.GetBlob();
        if (r.failed()) {
          send_abort("malformed CHUNK");
          return Aborted("protocol violation: malformed CHUNK");
        }
        // Install-time verification: a forged or bit-flipped digest can
        // never alias wrong bytes into the content-addressed store.
        if (Hash64(payload.data(), payload.size()) != digest) {
          send_abort("chunk digest mismatch");
          return DataLoss("migration chunk failed digest verification");
        }
        store_.Install(digest, std::span<const std::uint8_t>(payload));
        std::lock_guard<std::mutex> lock(mutex_);
        chunk_bytes_received_ += payload.size();
        break;
      }
      case FrameKind::kManifest: {
        const std::uint32_t round = r.GetU32();
        const bool final_round = r.GetU8() != 0;
        const Bytes body = r.GetBlob();
        if (r.failed()) {
          send_abort("malformed MANIFEST");
          return Aborted("protocol violation: malformed MANIFEST");
        }
        auto manifest = ParseManifest(body);
        if (!manifest.ok()) {
          AVA_RETURN_IF_ERROR(send_commit(round, false, "manifest parse"));
          return Aborted("manifest parse failed");
        }
        manifest->round = static_cast<int>(round);
        if (Status v = ValidateManifest(*manifest); !v.ok()) {
          AVA_RETURN_IF_ERROR(
              send_commit(round, false, std::string(v.message())));
          return Aborted("manifest rejected: " + std::string(v.message()));
        }
        if (!final_round) {
          {
            std::lock_guard<std::mutex> lock(mutex_);
            committed_ = std::make_unique<Manifest>(*manifest);
            committed_rounds_ = static_cast<int>(round);
          }
          Cells().committed_rounds->Set(static_cast<std::int64_t>(round));
          AVA_RETURN_IF_ERROR(send_commit(round, true, ""));
          // Eager import: materialize this round's state NOW, after the
          // commit ack (so the source is already off scanning the next
          // round), while the VM still runs on the source. The cutover
          // import then re-installs only objects whose chunks changed, so
          // downtime is proportional to the dirty residual, not the
          // working set. Best-effort: a failure here defers the work to
          // the final import (the signature is only recorded on success).
          if (Status eager = ImportCalls(*manifest); !eager.ok()) {
            AVA_LOG(WARNING) << "eager call replay deferred to cutover: "
                             << eager;
          } else if (Status objects = ImportObjects(*manifest);
                     !objects.ok()) {
            AVA_LOG(WARNING) << "eager object import deferred to cutover: "
                             << objects;
          }
          BoardUpdate("target", session->vm_id(), MigratePhase::kPreCopy,
                      nullptr, "round " + std::to_string(round) +
                                   " committed");
          break;
        }
        {
          std::lock_guard<std::mutex> lock(mutex_);
          phase_ = MigratePhase::kStopAndCopy;
        }
        if (Status imported = Import(*manifest); !imported.ok()) {
          AVA_RETURN_IF_ERROR(
              send_commit(round, false, std::string(imported.message())));
          return Aborted("final import failed: " +
                         std::string(imported.message()));
        }
        AVA_RETURN_IF_ERROR(send_commit(round, true, ""));
        {
          std::lock_guard<std::mutex> lock(mutex_);
          phase_ = MigratePhase::kDone;
          committed_.reset();
        }
        RecordPhaseFlight(session->vm_id(), MigratePhase::kDone);
        BoardUpdate("target", session->vm_id(), MigratePhase::kDone, nullptr,
                    "final manifest imported");
        return OkStatus();
      }
      case FrameKind::kAbort: {
        const std::string reason = GetString(&r);
        {
          // A deliberate source abort invalidates the checkpoints: the
          // source is alive and still owns the state.
          std::lock_guard<std::mutex> lock(mutex_);
          committed_.reset();
          committed_rounds_ = 0;
          phase_ = MigratePhase::kAborted;
        }
        // Tear out eagerly imported buffers too — outside mutex_, the
        // buffer hooks may take the registry/silo locks.
        DiscardEagerState();
        BoardUpdate("target", session->vm_id(), MigratePhase::kAborted,
                    nullptr, "source aborted: " + reason);
        return Aborted("source aborted: " + reason);
      }
      default:
        send_abort("unknown frame kind");
        return Aborted("protocol violation: unknown frame kind");
    }
  }
}

Status LiveMigrationTarget::TakeOver() {
  std::unique_ptr<Manifest> manifest;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (imported_) {
      return OkStatus();  // Serve() already completed the import
    }
    if (committed_ == nullptr || committed_rounds_ == 0) {
      return FailedPrecondition(
          "unsynced: no pre-copy round ever committed on this standby");
    }
    manifest = std::move(committed_);
  }
  if (Status s = Import(*manifest); !s.ok()) {
    // Put the checkpoint back: a retry after (say) a transient silo error
    // should still find it.
    std::lock_guard<std::mutex> lock(mutex_);
    committed_ = std::move(manifest);
    return s;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    phase_ = MigratePhase::kFailover;
  }
  Cells().failovers->Increment();
  RecordPhaseFlight(session_ != nullptr ? session_->vm_id() : 0,
                    MigratePhase::kFailover);
  BoardUpdate("target", session_ != nullptr ? session_->vm_id() : 0,
              MigratePhase::kFailover, nullptr,
              "took over from committed round");
  return OkStatus();
}

}  // namespace ava
