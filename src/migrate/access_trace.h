// Buffer-access transition trace: the record/replay idea of §4.3 applied to
// memory placement. The CAvA recorder logs the calls that create objects;
// this trace logs the order translated buffers are *touched*, as a lossy
// lock-free successor table (touch A then B => slot[A] = B). The swap
// manager feeds it from the translate path and asks it, on every demand
// swap-in, which buffers history says come next — those are promoted back
// to the host tier ahead of their next use. After a migration replay the
// same transitions re-learn within one pass of the working set.
//
// Deliberately lossy: a direct-mapped table of relaxed atomics. Concurrent
// writers may overwrite each other's hints and a hash collision swaps one
// hint for another — both only cost prefetch accuracy, never correctness,
// and the translate fast path pays two relaxed stores.
#ifndef AVA_SRC_MIGRATE_ACCESS_TRACE_H_
#define AVA_SRC_MIGRATE_ACCESS_TRACE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/proto/wire.h"

namespace ava {

class AccessTrace {
 public:
  explicit AccessTrace(std::size_t slots = 4096)
      : mask_(RoundUpPow2(slots) - 1),
        slots_(new Slot[RoundUpPow2(slots)]) {}

  // Records that `id` was touched by `vm`, forming a (previous -> id)
  // transition with the last touch recorded on this thread. Thread-local
  // previous pointers keep concurrent lanes' streams from interleaving
  // into nonsense transitions.
  void NoteTouch(VmId vm, WireHandle id) {
    ThreadCursor& cursor = Cursor();
    if (cursor.trace == this && cursor.vm == vm && cursor.prev != id &&
        cursor.prev != 0) {
      Slot& slot = slots_[Hash(vm, cursor.prev) & mask_];
      slot.key.store(Hash(vm, cursor.prev), std::memory_order_relaxed);
      slot.next.store(id, std::memory_order_relaxed);
    }
    cursor.trace = this;
    cursor.vm = vm;
    cursor.prev = id;
  }

  // Follows the successor chain from `id` for up to `fanout` hops. Stops
  // on an unknown transition or a cycle back into the returned set.
  std::vector<WireHandle> PredictNext(VmId vm, WireHandle id,
                                      int fanout = 2) const {
    std::vector<WireHandle> out;
    WireHandle cur = id;
    for (int hop = 0; hop < fanout; ++hop) {
      const std::uint64_t key = Hash(vm, cur);
      const Slot& slot = slots_[key & mask_];
      if (slot.key.load(std::memory_order_relaxed) != key) {
        break;
      }
      const WireHandle next = slot.next.load(std::memory_order_relaxed);
      if (next == 0 || next == id ||
          std::find(out.begin(), out.end(), next) != out.end()) {
        break;
      }
      out.push_back(next);
      cur = next;
    }
    return out;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> key{0};
    std::atomic<std::uint64_t> next{0};
  };

  struct ThreadCursor {
    const AccessTrace* trace = nullptr;
    VmId vm = 0;
    WireHandle prev = 0;
  };

  static ThreadCursor& Cursor() {
    static thread_local ThreadCursor cursor;
    return cursor;
  }

  static std::uint64_t Hash(VmId vm, WireHandle id) {
    // splitmix64 over the packed pair; full key stored for verification.
    std::uint64_t x = (static_cast<std::uint64_t>(vm) << 48) ^ id;
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x | 1;  // never 0: 0 marks an empty slot
  }

  static std::size_t RoundUpPow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) {
      p <<= 1;
    }
    return p;
  }

  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace ava

#endif  // AVA_SRC_MIGRATE_ACCESS_TRACE_H_
