// Live VM migration + warm failover between API servers (§4.3 grown live).
//
// The offline engine (snapshot.h) freezes the VM for the whole copy. The
// live engine moves the copy off the freeze path with iterative pre-copy:
//
//   precopy      N rounds; each ships only the chunks of buffers written
//                since the last round whose content digests the target does
//                not already hold (the PR-4 TransferCache is the dedup
//                store; dirtiness comes from a registry touch observer).
//   stop&copy    when the predicted residual copy time drops under the
//                downtime target (or the round cap hits): QuiesceVm, ship
//                residual dirty chunks + the object-registry manifest
//                (handles, swap-tier placement; pins must be zero).
//   cutover      guest re-points at the target over the hot re-attach path
//                (GuestEndpoint::ReplaceTransport + Router::AttachVm); the
//                source channel is detached.
//   failover     a standby target that has committed >=1 pre-copy round can
//                TakeOver() when the source dies: it restores the last
//                committed round's state; idempotent in-flight calls replay
//                on the survivor, the rest fail with clean Unavailable.
//
// Wire protocol (every frame CRC-sealed like call frames, so a corrupted
// migration channel classifies as DataLoss, never as silent state damage):
//
//   HELLO / HELLO_ACK   version + vm id + chunk-size handshake
//   OFFER               round + [digest, len] of candidate chunks
//   NEED                indices of offered chunks the target lacks
//   CHUNK               digest + payload (re-hashed at install: a forged
//                       digest can never alias wrong bytes into the store)
//   MANIFEST            round + final flag + recorded call log + object
//                       table (id, type, parent, size, refcount, tier,
//                       pins, chunk digests)
//   COMMIT              target's verdict on a manifest (ok / reason)
//   ABORT               either side cancels; source resumes serving
//
// Lock order: the source scan takes the registry lock per object (via
// WithEntry/ForEach) and never holds it across a channel send; the dirty
// tracker is a leaf mutex callable from under the registry lock (the touch
// observer fires there). Neither side ever holds router mutexes while
// touching the channel.
#ifndef AVA_SRC_MIGRATE_LIVE_H_
#define AVA_SRC_MIGRATE_LIVE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/migrate/recorder.h"
#include "src/router/router.h"
#include "src/server/buffer_hooks.h"
#include "src/server/xfer_cache.h"
#include "src/transport/transport.h"

namespace ava {

class SwapManager;

struct LiveMigrateOptions {
  // Pre-copy chunk granularity (AVA_MIGRATE_CHUNK). Dedup works at this
  // grain: a buffer region whose bytes the target already holds — from an
  // earlier round or from a twin buffer — never travels again.
  std::size_t chunk_bytes = 64u << 10;
  // Pre-copy round cap (AVA_MIGRATE_MAX_ROUNDS): past it, stop-and-copy
  // runs regardless of convergence (the non-converging-workload fallback).
  int max_rounds = 8;
  // Stop-and-copy entry threshold (AVA_MIGRATE_DOWNTIME_MS): enter when
  // residual_dirty_bytes / copy_rate predicts a downtime at or under this.
  std::int64_t downtime_target_ms = 50;
  // Per-frame receive timeout on the migration channel
  // (AVA_MIGRATE_TIMEOUT_MS). A dropped or stalled frame classifies as
  // DeadlineExceeded -> the migration aborts and the source keeps serving.
  std::int64_t frame_timeout_ms = 5000;
  // Bound on the stop-and-copy drain of queued + in-flight guest calls.
  std::int64_t quiesce_timeout_ms = 10000;
  // Modeled copy rate for the convergence predicate. 0 = measure the real
  // per-round rate. Tests pin it so round counts and residual sizes are
  // pure arithmetic — byte-exact reproducible at any machine speed.
  double copy_rate_bytes_per_sec = 0.0;
  // Test hook: sleep inside the stop-and-copy window, after the freeze and
  // before the final manifest ships. Crash cells SIGKILL the source here.
  std::int64_t stop_copy_delay_ms = 0;

  // Reads the AVA_MIGRATE_* knobs (malformed values log and keep defaults).
  static LiveMigrateOptions FromEnv();
};

enum class MigratePhase : int {
  kIdle = 0,
  kPreCopy = 1,
  kStopAndCopy = 2,
  kCutover = 3,   // final manifest committed; VM frozen, ready to re-point
  kDone = 4,      // target imported the final manifest
  kAborted = 5,
  kFailover = 6,  // target took over from a committed pre-copy round
};

const char* MigratePhaseName(MigratePhase phase);

struct LiveMigrateStats {
  int rounds = 0;                    // pre-copy rounds completed
  std::uint64_t objects_scanned = 0;
  std::uint64_t bytes_scanned = 0;   // content bytes hashed across rounds
  std::uint64_t bytes_offered = 0;   // chunk bytes offered to the target
  std::uint64_t bytes_shipped = 0;   // chunk payload bytes actually sent
  std::uint64_t bytes_deduped = 0;   // offered - shipped (target held them)
  std::uint64_t chunks_shipped = 0;
  std::uint64_t residual_bytes = 0;  // dirty bytes entering stop-and-copy
  std::int64_t precopy_ns = 0;
  std::int64_t downtime_ns = 0;      // freeze -> final COMMIT ack
};

// Per-round report, for tests and the bench driver.
struct RoundReport {
  int round = 0;
  std::uint64_t dirty_objects = 0;
  std::uint64_t bytes_offered = 0;
  std::uint64_t bytes_shipped = 0;
  std::uint64_t residual_dirty_bytes = 0;  // still dirty after this round
  bool converged = false;  // predicted residual copy time <= downtime target
};

// Dirty-object set fed by the registry touch observer. Leaf lock: Mark()
// runs under the registry lock, so it must not call back into anything.
class DirtyTracker {
 public:
  void Mark(WireHandle id) {
    std::lock_guard<std::mutex> lock(mutex_);
    dirty_.insert(id);
  }
  // Atomically swaps the dirty set out: writes landing during the
  // subsequent scan accumulate for the NEXT round, never lost.
  std::unordered_set<WireHandle> Take() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::unordered_set<WireHandle> out;
    out.swap(dirty_);
    return out;
  }
  void Restore(const std::unordered_set<WireHandle>& ids) {
    std::lock_guard<std::mutex> lock(mutex_);
    dirty_.insert(ids.begin(), ids.end());
  }
  std::unordered_set<WireHandle> Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dirty_;
  }
  std::size_t Count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dirty_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_set<WireHandle> dirty_;
};

// ----------------------------- source side --------------------------------

class LiveMigrationSource {
 public:
  LiveMigrationSource(BufferHooks hooks,
                      LiveMigrateOptions options = LiveMigrateOptions());
  ~LiveMigrationSource();

  LiveMigrationSource(const LiveMigrationSource&) = delete;
  LiveMigrationSource& operator=(const LiveMigrationSource&) = delete;

  // Lets the residual scan materialize swapped-out buffers from every tier.
  void SetSwapManager(SwapManager* swap) { swap_ = swap; }

  // Binds the source stack and installs the dirty-tracking touch observer
  // on the session's registry. `router` may be null (no freeze plumbing —
  // unit tests driving the session directly). The observer is uninstalled
  // on Abort, on destruction, and after cutover.
  Status Bind(Router* router, ApiServerSession* session,
              const Recorder* recorder);

  // HELLO/HELLO_ACK handshake over the (source end of the) migration
  // channel. The engine owns the channel from here on.
  Status Connect(TransportPtr channel);

  // One pre-copy round: scan (round 1: everything; later: the dirty set),
  // OFFER/NEED/CHUNK the delta, ship a non-final MANIFEST checkpoint, wait
  // for COMMIT. On failure the migration is aborted (VM keeps serving).
  Result<RoundReport> RunRound();

  // Convergence predicate the round loop consults (uses the last round's
  // report; true when predicted residual copy time <= downtime target or
  // the round cap is reached).
  bool ShouldStop() const;

  // Freeze (QuiesceVm), residual scan — pins must be zero — final
  // OFFER/NEED/CHUNK + MANIFEST(final), wait for COMMIT. On success the VM
  // is left paused in phase kCutover: re-point the guest, then call
  // FinishCutover(). Any failure aborts and resumes the VM.
  Status StopAndCopy();

  // Post-cutover bookkeeping: detaches the (now re-pointed) VM from the
  // source router and uninstalls the touch observer.
  Status FinishCutover();

  // Cancels: best-effort ABORT to the target, resume the VM if frozen,
  // uninstall the observer. Safe to call at any phase.
  Status Abort(const std::string& reason);

  // One-shot driver: rounds until ShouldStop(), then StopAndCopy().
  Status Run();

  MigratePhase phase() const;
  const LiveMigrateStats& stats() const { return stats_; }
  const RoundReport& last_report() const { return last_report_; }

 private:
  struct ScanChunk {
    std::uint64_t digest = 0;
    std::uint32_t length = 0;
  };
  struct ScannedObject {
    std::vector<ScanChunk> chunks;
    std::uint64_t size = 0;
  };

  void SetPhase(MigratePhase phase);
  void InstallObserver();
  void RemoveObserver();
  // Re-reads one buffer (any tier), chunks + hashes it, updates
  // object_digests_, and appends chunks missing target-side to `fresh`.
  // NotFound (freed since marked dirty) is not an error.
  Status ScanObject(WireHandle id,
                    std::vector<std::pair<ScanChunk, Bytes>>* fresh);
  // OFFER `fresh` chunks, read NEED, ship the needed CHUNKs.
  Status ShipChunks(int round,
                    const std::vector<std::pair<ScanChunk, Bytes>>& fresh,
                    std::uint64_t* shipped_bytes);
  Bytes BuildManifest(int round, bool final_round) const;
  // Sends one sealed frame; classifies send failures.
  Status SendFrame(Bytes frame);
  // Receives + unseals one frame under the frame timeout.
  Result<Bytes> RecvFrame();
  // Waits for COMMIT(round); target rejection or protocol noise -> error.
  Status AwaitCommit(int round);
  // Dirty bytes still pending (sizes of tracker-marked objects).
  std::uint64_t ResidualDirtyBytes() const;
  double EffectiveCopyRate() const;
  Status AbortLocked(const std::string& reason, bool notify_target);

  BufferHooks hooks_;
  LiveMigrateOptions options_;
  SwapManager* swap_ = nullptr;

  Router* router_ = nullptr;
  ApiServerSession* session_ = nullptr;
  const Recorder* recorder_ = nullptr;
  TransportPtr channel_;

  DirtyTracker tracker_;
  bool observer_installed_ = false;
  bool first_round_done_ = false;
  bool frozen_ = false;

  // Last-scanned chunk list per live object — the manifest's object table.
  // Objects skipped while pinned keep their previous (consistent, older)
  // digests; they stay dirty, so a later round or the residual pass
  // refreshes them.
  std::map<WireHandle, ScannedObject> object_digests_;
  // Digests already shipped to (and acked by) the target. Re-generated
  // digests — a buffer rewritten with old contents, twin buffers — are
  // deduped source-side before they are even offered.
  std::unordered_set<std::uint64_t> target_has_;

  mutable std::mutex phase_mutex_;
  MigratePhase phase_ = MigratePhase::kIdle;
  LiveMigrateStats stats_;
  RoundReport last_report_;
  double measured_rate_ = 0.0;  // bytes/sec over the last shipping round
};

// ----------------------------- target side --------------------------------

class LiveMigrationTarget {
 public:
  LiveMigrationTarget(BufferHooks hooks,
                      LiveMigrateOptions options = LiveMigrateOptions());

  LiveMigrationTarget(const LiveMigrationTarget&) = delete;
  LiveMigrationTarget& operator=(const LiveMigrationTarget&) = delete;

  // Speaks the target half of the protocol over the (target end of the)
  // migration channel, importing into `session` (must be fresh: empty
  // registry). Returns:
  //   OK            final manifest imported; session holds the VM's state
  //   Aborted       source aborted, or this side rejected a manifest
  //   DataLoss      corrupt frame / forged chunk digest (channel poisoned)
  //   Unavailable   channel died mid-stream — committed pre-copy state is
  //                 RETAINED; TakeOver() decides warm failover
  Status Serve(TransportPtr channel, ApiServerSession* session);

  // Warm failover after the source died mid-migration: imports the last
  // committed pre-copy round into the Serve() session. FailedPrecondition
  // when no round ever committed (cleanly "unsynced" — the caller falls
  // back to cold start).
  Status TakeOver();

  int committed_rounds() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return committed_rounds_;
  }
  MigratePhase phase() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return phase_;
  }
  std::uint64_t chunk_bytes_received() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return chunk_bytes_received_;
  }

 private:
  struct ManifestObject {
    WireHandle id = 0;
    std::uint32_t type_tag = 0;
    WireHandle parent = 0;
    std::uint64_t size = 0;
    std::int32_t refcount = 0;
    bool interned = false;
    std::uint8_t tier = 0;  // SwapTier the source held the bytes in
    std::int32_t pinned = 0;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> chunks;
  };
  struct Manifest {
    VmId vm_id = 0;
    int round = 0;
    std::vector<RecordedCall> calls;
    std::vector<ManifestObject> objects;
  };

  static Result<Manifest> ParseManifest(const Bytes& body);
  // Checks a manifest against the chunk store (all digests present, no
  // pinned objects). Non-OK reason goes back in COMMIT.
  Status ValidateManifest(const Manifest& manifest) const;
  // Replays the call log and writes every buffer's bytes back into the
  // session (device tier -> write_back; swapped tiers -> host-tier copy the
  // target's own demoter re-tiers). Incremental: Serve() runs the same
  // steps eagerly at every committed pre-copy round, so by the time the
  // final manifest lands only the dirty residual re-materializes — cutover
  // downtime is proportional to what changed, not the working set.
  Status Import(const Manifest& manifest);
  // One-time freshness gate for the first import activity of any kind.
  Status BeginImport();
  // Replays call-log entries this target has not replayed yet (keyed by
  // call identity — the recorder elides tombstones, so indexes shift).
  Status ImportCalls(const Manifest& manifest);
  // Materializes every buffer whose chunk signature changed since the last
  // imported round, minting swapped host-tier entries for buffers replay
  // did not recreate. Unchanged objects are skipped outright.
  Status ImportObjects(const Manifest& manifest);
  // Drops buffers materialized by an earlier round that `manifest` no
  // longer names (freed at the source mid-migration).
  void PruneStale(const Manifest& manifest);
  // Deliberate source abort: the source still owns the state, so every
  // eagerly materialized buffer is torn back out of the session.
  void DiscardEagerState();

  BufferHooks hooks_;
  LiveMigrateOptions options_;
  ApiServerSession* session_ = nullptr;
  // Content-addressed chunk store: the dedup engine. Effectively unbounded
  // (migration state must not evict mid-flight).
  TransferCache store_;

  mutable std::mutex mutex_;
  MigratePhase phase_ = MigratePhase::kIdle;
  int committed_rounds_ = 0;
  std::unique_ptr<Manifest> committed_;  // last committed (non-final) round
  std::uint64_t chunk_bytes_received_ = 0;
  bool imported_ = false;       // final/takeover import completed
  bool import_begun_ = false;   // freshness checked on first materialize
  // Call identities already replayed across eager import rounds.
  std::unordered_set<std::uint64_t> replayed_calls_;
  // Chunk signature of each materialized buffer: the skip test that makes
  // re-imports incremental, and the prune set for mid-migration frees.
  std::unordered_map<WireHandle, std::uint64_t> installed_sig_;
};

// Registers the `avactl migrate` admin verb (idempotent): a text snapshot
// of the process's most recent migration activity (phase, rounds, bytes,
// downtime). Both engine ctors call it; exposed for tools/tests.
void RegisterMigrateAdminVerb();

}  // namespace ava

#endif  // AVA_SRC_MIGRATE_LIVE_H_
