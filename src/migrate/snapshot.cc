#include "src/migrate/snapshot.h"

#include <utility>

#include "src/common/log.h"
#include "src/common/vclock.h"
#include "src/server/swap_manager.h"

namespace ava {

Bytes VmSnapshot::Serialize() const {
  ByteWriter w;
  w.PutU64(vm_id);
  w.PutU32(static_cast<std::uint32_t>(calls.size()));
  for (const RecordedCall& call : calls) {
    w.PutU16(call.header.api_id);
    w.PutU32(call.header.func_id);
    w.PutU64(call.header.call_id);
    w.PutU64(call.header.vm_id);
    w.PutU8(call.header.flags);
    w.PutBlob(call.payload.data(), call.payload.size());
    w.PutU32(static_cast<std::uint32_t>(call.created.size()));
    for (WireHandle id : call.created) {
      w.PutU64(id);
    }
  }
  w.PutU32(static_cast<std::uint32_t>(buffers.size()));
  for (const auto& [id, data] : buffers) {
    w.PutU64(id);
    w.PutBlob(data.data(), data.size());
  }
  return std::move(w).TakeBytes();
}

Result<VmSnapshot> VmSnapshot::Deserialize(const Bytes& data) {
  ByteReader r(data);
  VmSnapshot out;
  out.vm_id = r.GetU64();
  const std::uint32_t num_calls = r.GetU32();
  out.calls.reserve(num_calls);
  for (std::uint32_t i = 0; i < num_calls && !r.failed(); ++i) {
    RecordedCall call;
    call.header.api_id = r.GetU16();
    call.header.func_id = r.GetU32();
    call.header.call_id = r.GetU64();
    call.header.vm_id = r.GetU64();
    call.header.flags = r.GetU8();
    call.payload = r.GetBlob();
    const std::uint32_t num_created = r.GetU32();
    for (std::uint32_t j = 0; j < num_created && !r.failed(); ++j) {
      call.created.push_back(r.GetU64());
    }
    out.calls.push_back(std::move(call));
  }
  const std::uint32_t num_buffers = r.GetU32();
  out.buffers.reserve(num_buffers);
  for (std::uint32_t i = 0; i < num_buffers && !r.failed(); ++i) {
    WireHandle id = r.GetU64();
    out.buffers.emplace_back(id, r.GetBlob());
  }
  AVA_RETURN_IF_ERROR(r.status());
  return out;
}

std::size_t VmSnapshot::TotalBufferBytes() const {
  std::size_t total = 0;
  for (const auto& [id, data] : buffers) {
    total += data.size();
  }
  return total;
}

Result<VmSnapshot> MigrationEngine::Capture(Router* router,
                                            ApiServerSession* session,
                                            const Recorder& recorder,
                                            MigrationTimings* timings) {
  Stopwatch suspend_watch;
  if (router != nullptr) {
    AVA_RETURN_IF_ERROR(router->PauseVm(session->vm_id()));
  }
  if (timings != nullptr) {
    timings->suspend_ns = suspend_watch.ElapsedNs();
  }

  Stopwatch snapshot_watch;
  VmSnapshot snapshot;
  snapshot.vm_id = session->vm_id();
  snapshot.calls = recorder.LiveLog();

  // Copy out every extant device buffer. read_back is enqueued behind all
  // outstanding device work, so contents are final. Swapped-out buffers
  // materialize from whatever tier of the swap hierarchy holds them (raw
  // host page, compressed page, disk spill extent).
  Status read_status = OkStatus();
  session->registry().ForEach(
      hooks_.buffer_type_tag,
      [&](WireHandle id, ObjectRegistry::Entry& entry) {
        if (entry.swapped) {
          Result<Bytes> raw = swap_ != nullptr
                                  ? swap_->MaterializeSwapped(entry)
                                  : MaterializeSwappedCopy(entry);
          if (!raw.ok()) {
            read_status = raw.status();
            return;
          }
          snapshot.buffers.emplace_back(id, std::move(raw).value());
          return;
        }
        Bytes contents;
        Status s = hooks_.read_back(&session->registry(), id, entry, &contents);
        if (!s.ok()) {
          read_status = s;
          return;
        }
        snapshot.buffers.emplace_back(id, std::move(contents));
      });
  AVA_RETURN_IF_ERROR(read_status);
  if (timings != nullptr) {
    timings->snapshot_ns = snapshot_watch.ElapsedNs();
  }
  return snapshot;
}

Status MigrationEngine::Restore(const VmSnapshot& snapshot,
                                ApiServerSession* target,
                                MigrationTimings* timings) {
  Stopwatch replay_watch;
  std::size_t skipped = 0;
  for (const RecordedCall& call : snapshot.calls) {
    Status s = target->Replay(call.header, call.payload, call.created);
    if (!s.ok()) {
      // Calls that reference objects destroyed before the snapshot (e.g. a
      // kernel-arg binding to a freed buffer) fail translation; skip them.
      ++skipped;
      AVA_LOG(INFO) << "replay skipped call " << call.header.func_id << ": "
                    << s;
    }
  }
  if (skipped > 0) {
    AVA_LOG(WARNING) << "replay skipped " << skipped << " of "
                     << snapshot.calls.size() << " recorded calls";
  }
  if (timings != nullptr) {
    timings->replay_ns = replay_watch.ElapsedNs();
  }

  Stopwatch restore_watch;
  for (const auto& [id, data] : snapshot.buffers) {
    ObjectRegistry::Entry* entry = target->registry().Find(id);
    if (entry == nullptr) {
      return Internal("restored registry is missing buffer " +
                      std::to_string(id));
    }
    Status s = target->registry().WithEntry(
        id, [&](ObjectRegistry::Entry& e) {
          Status ws = hooks_.write_back(&target->registry(), id, e, data);
          if (!ws.ok()) {
            AVA_LOG(ERROR) << "buffer restore failed for " << id << ": " << ws;
          }
        });
    AVA_RETURN_IF_ERROR(s);
  }
  if (timings != nullptr) {
    timings->restore_buffers_ns = restore_watch.ElapsedNs();
  }
  return OkStatus();
}

}  // namespace ava
