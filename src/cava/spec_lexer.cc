#include "src/cava/spec_lexer.h"

#include <cctype>

namespace cava {

ava::Result<std::vector<SpecToken>> LexSpec(std::string_view src) {
  std::vector<SpecToken> out;
  std::size_t i = 0;
  int line = 1;
  auto error = [&](const std::string& message) {
    return ava::InvalidArgument("spec line " + std::to_string(line) + ": " +
                                message);
  };
  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          ++line;
        }
        ++i;
      }
      if (i + 1 >= src.size()) {
        return error("unterminated block comment");
      }
      i += 2;
      continue;
    }
    SpecToken tok;
    tok.line = line;
    // Verbatim block.
    if (c == '{' && i + 1 < src.size() && src[i + 1] == '{') {
      i += 2;
      std::string body;
      int depth = 1;
      while (i < src.size()) {
        if (src[i] == '{' && i + 1 < src.size() && src[i + 1] == '{') {
          depth++;
          body += "{{";
          i += 2;
          continue;
        }
        if (src[i] == '}' && i + 1 < src.size() && src[i + 1] == '}') {
          depth--;
          if (depth == 0) {
            i += 2;
            break;
          }
          body += "}}";
          i += 2;
          continue;
        }
        if (src[i] == '\n') {
          ++line;
        }
        body.push_back(src[i++]);
      }
      if (depth != 0) {
        return error("unterminated verbatim block");
      }
      tok.kind = STok::kVerbatim;
      tok.text = body;
      out.push_back(std::move(tok));
      continue;
    }
    // String literal.
    if (c == '"') {
      ++i;
      std::string body;
      while (i < src.size() && src[i] != '"') {
        if (src[i] == '\n') {
          return error("newline in string literal");
        }
        body.push_back(src[i++]);
      }
      if (i >= src.size()) {
        return error("unterminated string literal");
      }
      ++i;
      tok.kind = STok::kString;
      tok.text = body;
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string body;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        body.push_back(src[i++]);
      }
      tok.kind = STok::kIdent;
      tok.text = body;
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string body;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '.' || src[i] == 'x')) {
        body.push_back(src[i++]);
      }
      tok.kind = STok::kNumber;
      tok.text = body;
      out.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators worth keeping whole (for condition expressions).
    static const char* two_char[] = {"==", "!=", "<=", ">=", "&&", "||"};
    bool matched = false;
    for (const char* op : two_char) {
      if (c == op[0] && i + 1 < src.size() && src[i + 1] == op[1]) {
        tok.kind = STok::kPunct;
        tok.text = op;
        out.push_back(std::move(tok));
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) {
      continue;
    }
    static const std::string kSingle = "(){}[]*;,=<>|&!+-/:.?%";
    if (kSingle.find(c) != std::string::npos) {
      tok.kind = STok::kPunct;
      tok.text = std::string(1, c);
      out.push_back(std::move(tok));
      ++i;
      continue;
    }
    return error(std::string("unexpected character '") + c + "'");
  }
  SpecToken eof;
  eof.kind = STok::kEof;
  eof.line = line;
  out.push_back(eof);
  return out;
}

}  // namespace cava
