// `cava lint`: the guidance arrow of the paper's Figure 2 workflow. After
// CAvA drafts a preliminary specification, the developer refines it *with
// guidance from CAvA*; this pass is that guidance — it flags semantic
// hazards the type-based inference cannot rule out:
//
//   - async-capable functions whose out-parameters are neither shadowed nor
//     guarded by the sync condition (data would be silently lost)
//   - allocating functions that are not `record`ed (migration would lose
//     the object) or lack registry metadata for sizing/parentage
//   - deallocators/referencers missing `record` (replayed retain counts
//     would drift)
//   - enqueue-style functions without `consumes(...)` (the scheduler would
//     fly blind)
//   - handle types with shadow users but no complete_hook, etc.
#ifndef AVA_SRC_CAVA_LINT_H_
#define AVA_SRC_CAVA_LINT_H_

#include <string>
#include <vector>

#include "src/cava/spec_model.h"

namespace cava {

struct LintFinding {
  enum class Severity { kWarning, kAdvice };
  Severity severity = Severity::kWarning;
  std::string function;  // empty for type-level findings
  std::string message;
};

// Analyzes a parsed, validated spec. Findings are guidance, not errors: a
// spec with warnings still generates (matching the paper's "this simple
// usage will provide virtualization, but will not enforce ..." framing).
std::vector<LintFinding> LintSpec(const ApiSpec& spec);

// Renders findings as "warning: fn: message" lines.
std::string FormatFindings(const std::vector<LintFinding>& findings);

}  // namespace cava

#endif  // AVA_SRC_CAVA_LINT_H_
