#include "src/cava/spec_parser.h"

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/cava/spec_lexer.h"

namespace cava {

bool IsBuiltinScalar(const std::string& name) {
  static const std::set<std::string>* kScalars = new std::set<std::string>{
      "void",   "char",     "int",      "unsigned", "long",     "short",
      "float",  "double",   "size_t",   "int8_t",   "uint8_t",  "int16_t",
      "uint16_t", "int32_t", "uint32_t", "int64_t",  "uint64_t", "bool",
  };
  return kScalars->count(name) != 0;
}

namespace {

class SpecParser {
 public:
  explicit SpecParser(std::vector<SpecToken> toks) : toks_(std::move(toks)) {}

  ava::Result<ApiSpec> Run() {
    while (!Check(STok::kEof)) {
      if (CheckIdent("api")) {
        AVA_RETURN_IF_ERROR(ParseApiDecl());
      } else if (CheckIdent("include")) {
        AVA_RETURN_IF_ERROR(ParseInclude());
      } else if (CheckIdent("type")) {
        AVA_RETURN_IF_ERROR(ParseTypeDecl());
      } else {
        AVA_RETURN_IF_ERROR(ParseFunction());
      }
    }
    AVA_RETURN_IF_ERROR(ApplySemantics());
    return std::move(spec_);
  }

 private:
  // ---------------------------- token helpers ------------------------------

  const SpecToken& Peek(std::size_t d = 0) const {
    std::size_t i = pos_ + d;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool Check(STok kind) const { return Peek().kind == kind; }
  bool CheckPunct(const std::string& p) const {
    return Peek().kind == STok::kPunct && Peek().text == p;
  }
  bool CheckIdent(const std::string& id) const {
    return Peek().kind == STok::kIdent && Peek().text == id;
  }
  const SpecToken& Advance() {
    const SpecToken& t = toks_[pos_];
    if (pos_ + 1 < toks_.size()) {
      ++pos_;
    }
    return t;
  }
  bool MatchPunct(const std::string& p) {
    if (!CheckPunct(p)) {
      return false;
    }
    Advance();
    return true;
  }
  bool MatchIdent(const std::string& id) {
    if (!CheckIdent(id)) {
      return false;
    }
    Advance();
    return true;
  }

  ava::Status Error(const std::string& message) const {
    return ava::InvalidArgument("spec line " + std::to_string(Peek().line) +
                                ": " + message);
  }

  ava::Status ExpectPunct(const std::string& p) {
    if (MatchPunct(p)) {
      return ava::OkStatus();
    }
    return Error("expected '" + p + "', found '" + Peek().text + "'");
  }

  ava::Result<std::string> ExpectIdent() {
    if (!Check(STok::kIdent)) {
      return Error("expected identifier, found '" + Peek().text + "'");
    }
    return Advance().text;
  }

  // Captures tokens verbatim until the matching close paren (the opening
  // paren is already consumed). Reconstructs with single spaces.
  ava::Result<std::string> CaptureUntilCloseParen() {
    std::string out;
    int depth = 1;
    while (true) {
      if (Check(STok::kEof)) {
        return Error("unterminated expression");
      }
      if (CheckPunct("(")) {
        ++depth;
      } else if (CheckPunct(")")) {
        --depth;
        if (depth == 0) {
          Advance();
          return out;
        }
      }
      const SpecToken& t = Advance();
      if (!out.empty()) {
        out += " ";
      }
      if (t.kind == STok::kString) {
        out += "\"" + t.text + "\"";
      } else {
        out += t.text;
      }
    }
  }

  // ----------------------------- top level ---------------------------------

  ava::Status ParseApiDecl() {
    Advance();  // api
    AVA_ASSIGN_OR_RETURN(spec_.name, ExpectIdent());
    if (!Check(STok::kNumber)) {
      return Error("expected numeric api id");
    }
    spec_.api_id = static_cast<std::uint16_t>(std::stoul(Advance().text));
    return ExpectPunct(";");
  }

  ava::Status ParseInclude() {
    Advance();  // include
    if (!Check(STok::kString)) {
      return Error("expected \"header path\"");
    }
    spec_.includes.push_back(Advance().text);
    return ExpectPunct(";");
  }

  ava::Status ParseTypeDecl() {
    Advance();  // type
    AVA_RETURN_IF_ERROR(ExpectPunct("("));
    AVA_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    AVA_RETURN_IF_ERROR(ExpectPunct(")"));
    AVA_RETURN_IF_ERROR(ExpectPunct("{"));
    TypeDecl decl;
    decl.name = name;
    while (!MatchPunct("}")) {
      AVA_ASSIGN_OR_RETURN(std::string prop, ExpectIdent());
      if (prop == "scalar") {
        decl.kind = TypeKind::kScalar;
        AVA_RETURN_IF_ERROR(ExpectPunct(";"));
      } else if (prop == "handle") {
        decl.kind = TypeKind::kHandle;
        AVA_RETURN_IF_ERROR(ExpectPunct(";"));
      } else if (prop == "interned") {
        decl.interned = true;
        AVA_RETURN_IF_ERROR(ExpectPunct(";"));
      } else if (prop == "transient") {
        decl.transient = true;
        AVA_RETURN_IF_ERROR(ExpectPunct(";"));
      } else if (prop == "swappable") {
        decl.swappable = true;
        AVA_RETURN_IF_ERROR(ExpectPunct(";"));
      } else if (prop == "success") {
        AVA_RETURN_IF_ERROR(ExpectPunct("("));
        AVA_ASSIGN_OR_RETURN(decl.success_value, CaptureUntilCloseParen());
        AVA_RETURN_IF_ERROR(ExpectPunct(";"));
      } else if (prop == "failure") {
        AVA_RETURN_IF_ERROR(ExpectPunct("("));
        AVA_ASSIGN_OR_RETURN(decl.failure_value, CaptureUntilCloseParen());
        AVA_RETURN_IF_ERROR(ExpectPunct(";"));
      } else if (prop == "retain_hook" || prop == "release_hook" ||
                 prop == "complete_hook") {
        if (!Check(STok::kVerbatim)) {
          return Error(prop + " requires a {{ verbatim }} block");
        }
        std::string body = Advance().text;
        if (prop == "retain_hook") {
          decl.retain_hook = body;
        } else if (prop == "release_hook") {
          decl.release_hook = body;
        } else {
          decl.complete_hook = body;
        }
        MatchPunct(";");
      } else {
        return Error("unknown type property '" + prop + "'");
      }
    }
    spec_.types[name] = std::move(decl);
    return ava::OkStatus();
  }

  // ------------------------- function declarations -------------------------

  ava::Result<CType> ParseCType() {
    CType type;
    bool is_const = false;
    while (MatchIdent("const")) {
      is_const = true;
    }
    AVA_ASSIGN_OR_RETURN(type.base, ExpectIdent());
    // Multi-word builtins ("unsigned int", "long long") are collapsed.
    while ((type.base == "unsigned" || type.base == "long") &&
           Check(STok::kIdent) &&
           (CheckIdent("int") || CheckIdent("long") || CheckIdent("char"))) {
      type.base += " " + Advance().text;
    }
    while (MatchIdent("const")) {
      is_const = true;
    }
    if (MatchPunct("*")) {
      type.is_pointer = true;
      type.pointee_const = is_const;
      while (MatchIdent("const")) {
        // pointer-to-const pointer qualifiers: ignore (top-level const)
      }
      if (CheckPunct("*")) {
        return Error("multi-level pointers are not supported");
      }
    }
    return type;
  }

  ava::Status ParseFunction() {
    FunctionSpec fn;
    fn.line = Peek().line;
    AVA_ASSIGN_OR_RETURN(fn.return_type, ParseCType());
    AVA_ASSIGN_OR_RETURN(fn.name, ExpectIdent());
    AVA_RETURN_IF_ERROR(ExpectPunct("("));
    if (!CheckPunct(")")) {
      do {
        if (CheckIdent("void") && Peek(1).kind == STok::kPunct &&
            Peek(1).text == ")") {
          Advance();  // f(void)
          break;
        }
        ParamSpec param;
        AVA_ASSIGN_OR_RETURN(param.type, ParseCType());
        AVA_ASSIGN_OR_RETURN(param.name, ExpectIdent());
        fn.params.push_back(std::move(param));
      } while (MatchPunct(","));
    }
    AVA_RETURN_IF_ERROR(ExpectPunct(")"));
    AVA_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!MatchPunct("}")) {
      AVA_RETURN_IF_ERROR(ParseFunctionAnnotation(&fn));
    }
    fn.func_id = static_cast<std::uint32_t>(spec_.functions.size());
    spec_.functions.push_back(std::move(fn));
    return ava::OkStatus();
  }

  ava::Status ParseFunctionAnnotation(FunctionSpec* fn) {
    if (MatchIdent("sync")) {
      fn->is_sync = true;
      fn->sync_condition.clear();
      return ExpectPunct(";");
    }
    if (MatchIdent("async")) {
      fn->is_sync = false;
      fn->sync_condition.clear();
      return ExpectPunct(";");
    }
    if (MatchIdent("if")) {
      AVA_RETURN_IF_ERROR(ExpectPunct("("));
      AVA_ASSIGN_OR_RETURN(fn->sync_condition, CaptureUntilCloseParen());
      // Accept exactly: sync; else async;
      if (!MatchIdent("sync")) {
        return Error("conditional forwarding must be 'if (...) sync; else async;'");
      }
      AVA_RETURN_IF_ERROR(ExpectPunct(";"));
      if (!MatchIdent("else")) {
        return Error("expected 'else async;'");
      }
      if (!MatchIdent("async")) {
        return Error("expected 'else async;'");
      }
      return ExpectPunct(";");
    }
    if (MatchIdent("parameter")) {
      AVA_RETURN_IF_ERROR(ExpectPunct("("));
      AVA_ASSIGN_OR_RETURN(std::string pname, ExpectIdent());
      AVA_RETURN_IF_ERROR(ExpectPunct(")"));
      ParamSpec* param = nullptr;
      for (auto& p : fn->params) {
        if (p.name == pname) {
          param = &p;
          break;
        }
      }
      if (param == nullptr) {
        return Error("parameter '" + pname + "' is not declared by " +
                     fn->name);
      }
      param->annotated = true;
      AVA_RETURN_IF_ERROR(ExpectPunct("{"));
      while (!MatchPunct("}")) {
        AVA_RETURN_IF_ERROR(ParseParamProp(param));
      }
      return ava::OkStatus();
    }
    if (MatchIdent("return")) {
      AVA_RETURN_IF_ERROR(ExpectPunct("{"));
      while (!MatchPunct("}")) {
        AVA_ASSIGN_OR_RETURN(std::string prop, ExpectIdent());
        if (prop == "allocates") {
          fn->return_alloc = AllocClass::kAllocates;
        } else {
          return Error("unknown return property '" + prop + "'");
        }
        AVA_RETURN_IF_ERROR(ExpectPunct(";"));
      }
      return ava::OkStatus();
    }
    if (MatchIdent("consumes")) {
      AVA_RETURN_IF_ERROR(ExpectPunct("("));
      AVA_ASSIGN_OR_RETURN(std::string resource, ExpectIdent());
      AVA_RETURN_IF_ERROR(ExpectPunct(","));
      AVA_ASSIGN_OR_RETURN(std::string expr, CaptureUntilCloseParen());
      AVA_RETURN_IF_ERROR(ExpectPunct(";"));
      if (resource == "device_time") {
        fn->cost_device_time = expr;
      } else if (resource == "bandwidth") {
        fn->cost_bandwidth = expr;
      } else {
        return Error("unknown resource '" + resource + "'");
      }
      return ava::OkStatus();
    }
    if (MatchIdent("record")) {
      fn->record = true;
      return ExpectPunct(";");
    }
    if (MatchIdent("idempotent")) {
      fn->idempotent = true;
      return ExpectPunct(";");
    }
    if (MatchIdent("lane")) {
      AVA_RETURN_IF_ERROR(ExpectPunct("("));
      AVA_ASSIGN_OR_RETURN(fn->lane_param, ExpectIdent());
      AVA_RETURN_IF_ERROR(ExpectPunct(")"));
      return ExpectPunct(";");
    }
    if (MatchIdent("retry_oom")) {
      AVA_RETURN_IF_ERROR(ExpectPunct("("));
      AVA_ASSIGN_OR_RETURN(fn->retry_oom_bytes, CaptureUntilCloseParen());
      return ExpectPunct(";");
    }
    if (MatchIdent("registry_meta")) {
      AVA_RETURN_IF_ERROR(ExpectPunct("("));
      RegistryMeta meta;
      // key = value pairs separated by commas, until ')'.
      while (true) {
        AVA_ASSIGN_OR_RETURN(std::string key, ExpectIdent());
        AVA_RETURN_IF_ERROR(ExpectPunct("="));
        std::string value;
        while (!CheckPunct(",") && !CheckPunct(")")) {
          if (Check(STok::kEof)) {
            return Error("unterminated registry_meta");
          }
          if (!value.empty()) {
            value += " ";
          }
          value += Advance().text;
        }
        if (key == "target") {
          meta.target = value;
        } else if (key == "size") {
          meta.size_expr = value;
        } else if (key == "parent") {
          meta.parent_param = value;
        } else {
          return Error("unknown registry_meta key '" + key + "'");
        }
        if (MatchPunct(")")) {
          break;
        }
        AVA_RETURN_IF_ERROR(ExpectPunct(","));
      }
      AVA_RETURN_IF_ERROR(ExpectPunct(";"));
      if (meta.target.empty()) {
        meta.target = "return";
      }
      fn->registry_meta.push_back(std::move(meta));
      return ava::OkStatus();
    }
    return Error("unknown annotation '" + Peek().text + "' in " + fn->name);
  }

  ava::Status ParseParamProp(ParamSpec* param) {
    AVA_ASSIGN_OR_RETURN(std::string prop, ExpectIdent());
    if (prop == "in") {
      param->direction = ParamDirection::kIn;
      param->direction_set = true;
    } else if (prop == "out") {
      param->direction = ParamDirection::kOut;
      param->direction_set = true;
    } else if (prop == "inout") {
      param->direction = ParamDirection::kInOut;
      param->direction_set = true;
    } else if (prop == "buffer") {
      AVA_RETURN_IF_ERROR(ExpectPunct("("));
      AVA_ASSIGN_OR_RETURN(param->count_expr, CaptureUntilCloseParen());
      param->shape = ParamShape::kBuffer;
      param->shape_set = true;
    } else if (prop == "bytes") {
      AVA_RETURN_IF_ERROR(ExpectPunct("("));
      AVA_ASSIGN_OR_RETURN(param->count_expr, CaptureUntilCloseParen());
      param->shape = ParamShape::kBytesBuffer;
      param->shape_set = true;
    } else if (prop == "element") {
      param->shape = ParamShape::kElement;
      param->shape_set = true;
    } else if (prop == "string") {
      param->shape = ParamShape::kString;
      param->shape_set = true;
    } else if (prop == "allocates") {
      param->alloc = AllocClass::kAllocates;
    } else if (prop == "references") {
      param->alloc = AllocClass::kReferences;
    } else if (prop == "deallocates") {
      param->alloc = AllocClass::kDeallocates;
    } else if (prop == "reusable") {
      param->reusable = true;
    } else if (prop == "shadow_on") {
      AVA_RETURN_IF_ERROR(ExpectPunct("("));
      AVA_ASSIGN_OR_RETURN(param->shadow_on, CaptureUntilCloseParen());
    } else {
      return Error("unknown parameter property '" + prop + "'");
    }
    return ExpectPunct(";");
  }

  // --------------------------- semantic pass -------------------------------

  ava::Status SemError(const FunctionSpec& fn, const std::string& message) {
    return ava::InvalidArgument("spec line " + std::to_string(fn.line) + " (" +
                                fn.name + "): " + message);
  }

  ava::Status ApplySemantics() {
    if (spec_.name.empty()) {
      return ava::InvalidArgument("spec is missing an 'api NAME ID;' line");
    }
    for (auto& fn : spec_.functions) {
      // Return type must be a scalar or handle.
      if (fn.return_type.is_pointer) {
        return SemError(fn, "pointer return types are not supported");
      }
      const bool ret_handle = spec_.IsHandleType(fn.return_type.base);
      if (!ret_handle && fn.return_type.base != "void" &&
          !IsBuiltinScalar(fn.return_type.base) &&
          spec_.FindType(fn.return_type.base) == nullptr) {
        return SemError(fn, "unknown return type " + fn.return_type.base);
      }
      if (fn.return_alloc == AllocClass::kAllocates && !ret_handle) {
        return SemError(fn, "return { allocates; } requires a handle type");
      }
      for (auto& param : fn.params) {
        AVA_RETURN_IF_ERROR(InferParam(fn, &param));
      }
      // `reusable;` is only meaningful for input payloads the guest can
      // fingerprint before the call: out/inout data is produced by the
      // server, and `record;` calls replay their payloads after migration
      // (a replayed cache descriptor could alias whatever the cache holds
      // by then).
      for (auto& param : fn.params) {
        if (!param.reusable) {
          continue;
        }
        if (param.shape != ParamShape::kBuffer &&
            param.shape != ParamShape::kBytesBuffer) {
          return SemError(fn, "reusable parameter " + param.name +
                                  " must be a buffer(...) or bytes(...) "
                                  "parameter");
        }
        if (param.direction != ParamDirection::kIn) {
          return SemError(fn, "reusable parameter " + param.name +
                                  " must be `in` (the cache deduplicates "
                                  "guest-supplied payloads only)");
        }
        if (fn.record) {
          return SemError(fn, "reusable parameter " + param.name +
                                  " is not allowed on a `record;` function "
                                  "(replayed descriptors would dangle)");
        }
      }
      // `lane(param);` must name a by-value handle parameter: the lane key
      // is the handle's wire id, patched into the call header at marshal
      // time, so the parameter must be marshaled as a handle value (not a
      // pointer the guest owns).
      if (!fn.lane_param.empty()) {
        const ParamSpec* lp = fn.FindParam(fn.lane_param);
        if (lp == nullptr) {
          return SemError(fn, "lane(" + fn.lane_param +
                                  ") does not name a declared parameter");
        }
        if (lp->type.is_pointer || !spec_.IsHandleType(lp->type.base)) {
          return SemError(fn, "lane(" + fn.lane_param +
                                  ") must name a by-value handle parameter");
        }
      }
      // shadow_on targets must name a handle out-element param.
      for (auto& param : fn.params) {
        if (!param.shadow_on.empty()) {
          const ParamSpec* ev = fn.FindParam(param.shadow_on);
          if (ev == nullptr || !spec_.IsHandleType(ev->type.base) ||
              ev->direction != ParamDirection::kOut) {
            return SemError(fn, "shadow_on(" + param.shadow_on +
                                    ") must name an out handle parameter");
          }
          const TypeDecl* t = spec_.FindType(ev->type.base);
          if (t->complete_hook.empty()) {
            return SemError(fn, "shadow_on requires complete_hook on type " +
                                    ev->type.base);
          }
        }
      }
    }
    return ava::OkStatus();
  }

  ava::Status InferParam(const FunctionSpec& fn, ParamSpec* param) {
    const std::string& base = param->type.base;
    const bool is_handle = spec_.IsHandleType(base);
    const bool known_scalar =
        IsBuiltinScalar(base) || (spec_.FindType(base) != nullptr && !is_handle);
    if (!param->type.is_pointer) {
      if (is_handle) {
        param->shape = ParamShape::kHandle;
      } else if (known_scalar) {
        param->shape = ParamShape::kScalar;
      } else {
        return SemError(fn, "unknown type " + base + " for parameter " +
                                param->name);
      }
      param->direction = ParamDirection::kIn;
      return ava::OkStatus();
    }
    // Pointer parameter. Type-based inference (paper §3): const pointee =>
    // input; otherwise output; const char* => string.
    if (!param->shape_set) {
      if (base == "char" && param->type.pointee_const) {
        param->shape = ParamShape::kString;
      } else if (base == "void") {
        return SemError(fn, "void* parameter " + param->name +
                                " requires bytes(expr)");
      } else {
        param->shape = ParamShape::kElement;
      }
    }
    if (!param->direction_set) {
      param->direction = param->type.pointee_const ? ParamDirection::kIn
                                                   : ParamDirection::kOut;
    }
    if (param->shape == ParamShape::kBuffer && param->count_expr.empty()) {
      return SemError(fn, "buffer parameter " + param->name +
                              " requires a count expression");
    }
    if (base == "void" && param->shape != ParamShape::kBytesBuffer) {
      return SemError(fn, "void* parameter " + param->name +
                              " must use bytes(expr)");
    }
    if (is_handle && param->shape == ParamShape::kString) {
      return SemError(fn, "handle parameter cannot be a string");
    }
    return ava::OkStatus();
  }

  std::vector<SpecToken> toks_;
  std::size_t pos_ = 0;
  ApiSpec spec_;
};

}  // namespace

ava::Result<ApiSpec> ParseSpec(std::string_view source) {
  AVA_ASSIGN_OR_RETURN(auto tokens, LexSpec(source));
  return SpecParser(std::move(tokens)).Run();
}

}  // namespace cava
