#include "src/cava/lint.h"

#include <cctype>
#include <sstream>

namespace cava {
namespace {

bool AsyncCapable(const FunctionSpec& fn) {
  return !fn.is_sync || !fn.sync_condition.empty();
}

bool MentionsParam(const std::string& expr, const std::string& name) {
  // Token-boundary containment: good enough for guidance.
  std::size_t pos = 0;
  while ((pos = expr.find(name, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || (!std::isalnum(static_cast<unsigned char>(expr[pos - 1])) &&
                     expr[pos - 1] != '_');
    const std::size_t end = pos + name.size();
    const bool right_ok =
        end >= expr.size() ||
        (!std::isalnum(static_cast<unsigned char>(expr[end])) &&
         expr[end] != '_');
    if (left_ok && right_ok) {
      return true;
    }
    pos = end;
  }
  return false;
}

bool LooksLikeEnqueue(const FunctionSpec& fn) {
  return fn.name.find("Enqueue") != std::string::npos ||
         fn.name.find("Load") != std::string::npos ||
         fn.name.find("Submit") != std::string::npos;
}

}  // namespace

std::vector<LintFinding> LintSpec(const ApiSpec& spec) {
  std::vector<LintFinding> findings;
  auto warn = [&](const std::string& fn, const std::string& message) {
    findings.push_back({LintFinding::Severity::kWarning, fn, message});
  };
  auto advise = [&](const std::string& fn, const std::string& message) {
    findings.push_back({LintFinding::Severity::kAdvice, fn, message});
  };

  for (const auto& fn : spec.functions) {
    const bool async_capable = AsyncCapable(fn);

    bool allocates_something = fn.return_alloc == AllocClass::kAllocates;
    for (const auto& p : fn.params) {
      const TypeDecl* pt = spec.FindType(p.type.base);
      const bool transient = pt != nullptr && pt->transient;
      if (p.alloc == AllocClass::kAllocates && !transient) {
        allocates_something = true;
      }

      // Out-parameters of async-capable functions must be shadowed or
      // guarded by the sync condition naming them (e.g. `ev != nullptr`).
      if (async_capable && p.type.is_pointer &&
          p.direction != ParamDirection::kIn && p.shadow_on.empty()) {
        const bool guarded =
            !fn.sync_condition.empty() &&
            MentionsParam(fn.sync_condition, p.name);
        if (!guarded) {
          warn(fn.name,
               "out parameter '" + p.name +
                   "' can be forwarded asynchronously without a shadow "
                   "buffer or a sync-condition guard; its data would be "
                   "lost (add shadow_on(...) or guard the condition)");
        }
      }

      // Lifetime classes without record: migration replay would drift.
      if ((p.alloc == AllocClass::kReferences ||
           p.alloc == AllocClass::kDeallocates) &&
          !fn.record && !transient &&
          !(pt != nullptr && pt->interned)) {
        advise(fn.name,
               "'" + p.name + "' changes an object's lifetime but the "
               "call is not `record`ed; retain counts will not survive "
               "migration (mark the type `transient;` if intentional)");
      }
    }

    if (allocates_something && !fn.record) {
      warn(fn.name,
           "allocates an object but is not `record`ed; the object cannot "
           "be reconstructed after migration");
    }
    if (allocates_something) {
      bool has_meta = !fn.registry_meta.empty();
      const TypeDecl* ret_type = spec.FindType(fn.return_type.base);
      const bool swappable_ret = ret_type != nullptr && ret_type->swappable;
      if (swappable_ret && !has_meta) {
        warn(fn.name,
             "allocates a swappable object without registry_meta(size=..., "
             "parent=...); the swap manager cannot size or re-create it");
      } else if (!has_meta) {
        advise(fn.name,
               "allocates an object without registry_meta; parent/size "
               "metadata improves migration and accounting");
      }
    }

    // Enqueue-ish work without cost annotations starves the scheduler.
    if (LooksLikeEnqueue(fn) && fn.cost_device_time.empty() &&
        fn.cost_bandwidth.empty()) {
      advise(fn.name,
             "looks like a work-submission call but has no consumes(...) "
             "annotation; the router will schedule it at zero cost");
    }

    // Retry only exists on the synchronous path; an idempotent marking on a
    // pure-async function can never take effect.
    if (fn.idempotent && !fn.is_sync && fn.sync_condition.empty()) {
      advise(fn.name,
             "`idempotent;` has no effect on an async-only function; "
             "retries apply to synchronous forwarding");
    }
    // Mutating names marked idempotent deserve a second look: a retried
    // call re-executes on the server.
    if (fn.idempotent && LooksLikeEnqueue(fn)) {
      warn(fn.name,
           "marked `idempotent;` but looks like a work-submission call; a "
           "transport-level retry would re-execute the work");
    }

    // Large input payloads on hot submission paths are where the transfer
    // cache pays off; suggest `reusable;` where it is missing, and flag
    // placements where the annotation can never take effect.
    for (const auto& p : fn.params) {
      const bool bulk_in = (p.shape == ParamShape::kBuffer ||
                            p.shape == ParamShape::kBytesBuffer) &&
                           p.direction == ParamDirection::kIn;
      if (!p.reusable && bulk_in && !fn.record && LooksLikeEnqueue(fn)) {
        advise(fn.name,
               "in-buffer '" + p.name + "' on a work-submission call is a "
               "transfer-cache candidate; `reusable;` would let repeated "
               "identical payloads travel as a digest descriptor");
      }
      if (p.reusable && !fn.is_sync && fn.sync_condition.empty()) {
        warn(fn.name,
             "`reusable;` on '" + p.name + "' has no effect on an "
             "async-only function; the cache-miss handshake needs a "
             "synchronous reply");
      }
    }

    // Lane-key derivation picks the FIRST by-value handle parameter. When a
    // call touches several objects (kernel + queue, graph + device) that
    // choice is a policy decision the spec author should make explicitly:
    // concurrent lanes only order calls that share a key.
    {
      int value_handles = 0;
      for (const auto& p : fn.params) {
        if (!p.type.is_pointer && spec.IsHandleType(p.type.base)) {
          ++value_handles;
        }
      }
      if (value_handles >= 2 && fn.lane_param.empty()) {
        advise(fn.name,
               "touches " + std::to_string(value_handles) +
                   " handle objects; the execution lane defaults to the "
                   "first one — add `lane(param);` to pick the ordering "
                   "object explicitly");
      }
    }

    // Conditional-sync without any async-capable benefit.
    if (!fn.sync_condition.empty()) {
      bool any_out = false;
      for (const auto& p : fn.params) {
        any_out = any_out ||
                  (p.type.is_pointer && p.direction != ParamDirection::kIn);
      }
      if (!any_out && fn.return_alloc == AllocClass::kNone) {
        advise(fn.name,
               "conditional sync/async but no outputs; consider plain "
               "`async;`");
      }
    }
  }

  // Type-level checks.
  for (const auto& [name, decl] : spec.types) {
    if (decl.kind != TypeKind::kHandle) {
      continue;
    }
    bool used_as_shadow_event = false;
    for (const auto& fn : spec.functions) {
      for (const auto& p : fn.params) {
        if (!p.shadow_on.empty()) {
          const ParamSpec* ev = fn.FindParam(p.shadow_on);
          if (ev != nullptr && ev->type.base == name) {
            used_as_shadow_event = true;
          }
        }
      }
    }
    if (used_as_shadow_event && decl.release_hook.empty()) {
      warn("", "handle type '" + name +
                   "' completes shadow buffers but has no release_hook; "
                   "server-held events would leak");
    }
  }
  return findings;
}

std::string FormatFindings(const std::vector<LintFinding>& findings) {
  std::ostringstream out;
  for (const auto& finding : findings) {
    out << (finding.severity == LintFinding::Severity::kWarning ? "warning"
                                                                : "advice");
    if (!finding.function.empty()) {
      out << ": " << finding.function;
    }
    out << ": " << finding.message << "\n";
  }
  return out.str();
}

}  // namespace cava
