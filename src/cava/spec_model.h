// CAvA's model of an annotated API specification (paper §4.2, Figure 4).
//
// A spec file contains:
//   api NAME ID;                       — API identity (wire api_id)
//   include "header.h";                — the unmodified vendor header(s)
//   type(NAME) { ...type props... }    — scalar widths, handle declarations
//   RET NAME(PARAMS) { ...annot... }   — one block per forwarded function
//
// Type properties:
//   scalar;                            — plain value type (width from C)
//   handle;                            — opaque object handle
//   interned;                          — handle the silo owns (platform/device)
//   transient;                         — not migrated (events etc.)
//   swappable;                         — device buffer subject to swapping
//   success(EXPR);                     — value async stubs return
//   retain_hook {{ C++ }}              — extra server-side retain (h in scope)
//   release_hook {{ C++ }}             — server-side release
//   complete_hook {{ C++ }}            — completion predicate (bool, h in scope)
//
// Function annotations:
//   sync; | async; | if (EXPR) sync; else async;
//   parameter(NAME) { in|out|inout; buffer(COUNT)|bytes(COUNT)|element|string;
//                     allocates|references|deallocates; shadow_on(EVENT);
//                     reusable; userdata; }
//   return { allocates; }
//   consumes(device_time|bandwidth, EXPR);
//   record;
//   lane(PARAM);
//   retry_oom(BYTES_EXPR);
//   registry_meta(target = PARAM|return, size = EXPR, parent = PARAM);
#ifndef AVA_SRC_CAVA_SPEC_MODEL_H_
#define AVA_SRC_CAVA_SPEC_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cava {

// A (simplified) C type: base type name, optional single pointer, const.
struct CType {
  std::string base;      // "vcl_int", "size_t", "void", "char", ...
  bool is_pointer = false;
  bool pointee_const = false;

  std::string ToString() const {
    std::string s = pointee_const ? "const " + base : base;
    if (is_pointer) {
      s += "*";
    }
    return s;
  }
};

enum class TypeKind : std::uint8_t { kScalar, kHandle };

struct TypeDecl {
  std::string name;
  TypeKind kind = TypeKind::kScalar;
  bool interned = false;
  bool swappable = false;
  // Transient objects (e.g. events) are deliberately NOT migrated: they
  // only exist between a submission and its completion.
  bool transient = false;
  std::string success_value;   // verbatim expr, e.g. "VCL_SUCCESS"
  std::string failure_value;   // value sync stubs return on transport failure
  std::string retain_hook;     // verbatim C++; `h` (void*) in scope
  std::string release_hook;
  std::string complete_hook;   // verbatim C++ expression/stmt returning bool
};

enum class ParamDirection : std::uint8_t { kIn, kOut, kInOut };

enum class ParamShape : std::uint8_t {
  kScalar,        // non-pointer value
  kHandle,        // non-pointer handle
  kElement,       // pointer to a single element
  kBuffer,        // pointer + element count expression
  kBytesBuffer,   // pointer + byte count expression (void* etc.)
  kString,        // NUL-terminated char*
};

enum class AllocClass : std::uint8_t {
  kNone,
  kAllocates,     // inserts a registry entry
  kReferences,    // registry retain
  kDeallocates,   // registry release
};

struct ParamSpec {
  CType type;
  std::string name;
  ParamDirection direction = ParamDirection::kIn;
  ParamShape shape = ParamShape::kScalar;
  std::string count_expr;      // kBuffer / kBytesBuffer
  AllocClass alloc = AllocClass::kNone;
  std::string shadow_on;       // event param enabling deferred delivery
  // In-buffer whose contents tend to be re-sent unchanged (model weights,
  // per-timestep input matrices): the guest routes it through the
  // content-addressed transfer cache, so the Nth identical send travels as
  // a 24-byte digest descriptor instead of the bytes. Valid only on `in`
  // buffer/bytes parameters of non-`record` functions.
  bool reusable = false;
  bool annotated = false;      // had an explicit parameter(...) block
  bool direction_set = false;  // in/out/inout given explicitly
  bool shape_set = false;      // buffer/bytes/element/string given explicitly
};

struct RegistryMeta {
  std::string target;   // param name or "return"
  std::string size_expr;
  std::string parent_param;
};

struct FunctionSpec {
  CType return_type;
  std::string name;
  std::vector<ParamSpec> params;

  // Forwarding mode: if sync_condition empty -> unconditional (is_sync).
  bool is_sync = true;
  std::string sync_condition;  // verbatim: sync iff condition true

  AllocClass return_alloc = AllocClass::kNone;
  std::string cost_device_time;  // verbatim expr (vns)
  std::string cost_bandwidth;    // verbatim expr (bytes)
  bool record = false;
  // Declares the call safe to re-send after a transport-classified failure
  // (the guest endpoint retries only annotated calls; see GuestEndpoint).
  bool idempotent = false;
  // Execution-lane override (`lane(param);`): names the handle parameter
  // whose wire id keys this call's per-object execution lane. Empty means
  // the emitter derives it — first non-pointer handle parameter, or the
  // shared default lane (key 0) when the function has none.
  std::string lane_param;
  std::string retry_oom_bytes;   // verbatim expr
  std::vector<RegistryMeta> registry_meta;

  std::uint32_t func_id = 0;  // assigned by spec order
  int line = 0;

  const ParamSpec* FindParam(const std::string& n) const {
    for (const auto& p : params) {
      if (p.name == n) {
        return &p;
      }
    }
    return nullptr;
  }
};

struct ApiSpec {
  std::string name;          // "vcl"
  std::uint16_t api_id = 0;  // wire id
  std::vector<std::string> includes;
  std::map<std::string, TypeDecl> types;
  std::vector<FunctionSpec> functions;

  const TypeDecl* FindType(const std::string& n) const {
    auto it = types.find(n);
    return it == types.end() ? nullptr : &it->second;
  }
  bool IsHandleType(const std::string& n) const {
    const TypeDecl* t = FindType(n);
    return t != nullptr && t->kind == TypeKind::kHandle;
  }
};

// C built-in scalar types CAvA understands without a type() declaration.
bool IsBuiltinScalar(const std::string& name);

}  // namespace cava

#endif  // AVA_SRC_CAVA_SPEC_MODEL_H_
