// `cava draft`: generates a preliminary API specification from C function
// declarations, applying the paper's type-based inference (§3): const
// pointers become in-buffers, `const char*` becomes a string, plain pointers
// become out-parameters, unknown non-builtin types become opaque handles,
// and a pointer whose neighbouring parameter is named `<ptr>_size` / `size`
// / `count` is sized by it (the "documented convention" inference). The
// developer then refines the emitted spec by hand (§4, Figure 2).
#ifndef AVA_SRC_CAVA_DRAFT_H_
#define AVA_SRC_CAVA_DRAFT_H_

#include <string>
#include <string_view>

#include "src/common/result.h"

namespace cava {

// `header_decls` is a C header reduced to declarations: typedefs of the form
// `typedef struct x* name;` (handles), `typedef <builtin> name;` (scalars),
// and function prototypes. Returns the draft spec text.
ava::Result<std::string> DraftSpecFromHeader(std::string_view header_decls,
                                             const std::string& api_name,
                                             int api_id);

}  // namespace cava

#endif  // AVA_SRC_CAVA_DRAFT_H_
