// Parser + semantic pass for the CAvA spec language. Produces a validated
// ApiSpec with inference-applied parameter annotations (paper §3: CAvA
// infers semantics from types — const pointers are in-buffers, plain
// pointers are out-parameters, `const char*` is a string — and the developer
// refines the rest).
#ifndef AVA_SRC_CAVA_SPEC_PARSER_H_
#define AVA_SRC_CAVA_SPEC_PARSER_H_

#include <string_view>

#include "src/common/result.h"
#include "src/cava/spec_model.h"

namespace cava {

ava::Result<ApiSpec> ParseSpec(std::string_view source);

}  // namespace cava

#endif  // AVA_SRC_CAVA_SPEC_PARSER_H_
