// CAvA command-line tool (paper Figure 2):
//
//   cava gen <spec.ava> -o <out_dir>
//       Generates the full remoting stack (guest stubs, server dispatch,
//       native binding, ids/table header) from an annotated specification.
//
//   cava draft <decls.h> --api <name> --id <n> [-o <out.ava>]
//       Produces a preliminary specification from C declarations using
//       type-based inference, for the developer to refine.
//
//   cava check <spec.ava>
//       Parses and validates a specification, printing a summary.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/cava/draft.h"
#include "src/cava/lint.h"
#include "src/cava/emit.h"
#include "src/cava/spec_parser.h"

namespace {

int Usage() {
  std::cerr << "usage:\n"
               "  cava gen <spec.ava> -o <out_dir>\n"
               "  cava draft <decls.h> --api <name> --id <n> [-o <out.ava>]\n"
               "  cava check <spec.ava>\n"
               "  cava lint <spec.ava>\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cava: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cava: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

int RunGen(const std::string& spec_path, const std::string& out_dir) {
  std::string source;
  if (!ReadFile(spec_path, &source)) {
    return 1;
  }
  auto spec = cava::ParseSpec(source);
  if (!spec.ok()) {
    std::cerr << "cava: " << spec_path << ": " << spec.status().ToString()
              << "\n";
    return 1;
  }
  auto files = cava::GenerateStack(*spec);
  if (!files.ok()) {
    std::cerr << "cava: " << files.status().ToString() << "\n";
    return 1;
  }
  for (const auto& [name, content] : *files) {
    const std::string path = out_dir + "/" + name;
    if (!WriteFile(path, content)) {
      return 1;
    }
    std::cout << "cava: wrote " << path << "\n";
  }
  return 0;
}

int RunDraft(const std::string& header_path, const std::string& api,
             int api_id, const std::string& out_path) {
  std::string source;
  if (!ReadFile(header_path, &source)) {
    return 1;
  }
  auto draft = cava::DraftSpecFromHeader(source, api, api_id);
  if (!draft.ok()) {
    std::cerr << "cava: " << draft.status().ToString() << "\n";
    return 1;
  }
  if (out_path.empty()) {
    std::cout << *draft;
    return 0;
  }
  return WriteFile(out_path, *draft) ? 0 : 1;
}

int RunCheck(const std::string& spec_path) {
  std::string source;
  if (!ReadFile(spec_path, &source)) {
    return 1;
  }
  auto spec = cava::ParseSpec(source);
  if (!spec.ok()) {
    std::cerr << "cava: " << spec_path << ": " << spec.status().ToString()
              << "\n";
    return 1;
  }
  int handles = 0;
  for (const auto& [name, decl] : spec->types) {
    if (decl.kind == cava::TypeKind::kHandle) {
      ++handles;
    }
  }
  int async_capable = 0;
  int recorded = 0;
  for (const auto& fn : spec->functions) {
    if (!fn.is_sync || !fn.sync_condition.empty()) {
      ++async_capable;
    }
    if (fn.record) {
      ++recorded;
    }
  }
  auto findings = cava::LintSpec(*spec);
  std::cout << "api:            " << spec->name << " (id " << spec->api_id
            << ")\n"
            << "functions:      " << spec->functions.size() << "\n"
            << "handle types:   " << handles << "\n"
            << "async-capable:  " << async_capable << "\n"
            << "recorded (mig): " << recorded << "\n"
            << "lint findings:  " << findings.size() << "\n";
  if (!findings.empty()) {
    std::cout << cava::FormatFindings(findings);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  const std::string cmd = argv[1];
  std::string input = argv[2];
  std::string out;
  std::string api = "api";
  int api_id = 1;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--api" && i + 1 < argc) {
      api = argv[++i];
    } else if (arg == "--id" && i + 1 < argc) {
      api_id = std::atoi(argv[++i]);
    } else {
      return Usage();
    }
  }
  if (cmd == "gen") {
    if (out.empty()) {
      return Usage();
    }
    return RunGen(input, out);
  }
  if (cmd == "draft") {
    return RunDraft(input, api, api_id, out);
  }
  if (cmd == "check") {
    return RunCheck(input);
  }
  if (cmd == "lint") {
    std::string source;
    if (!ReadFile(input, &source)) {
      return 1;
    }
    auto spec = cava::ParseSpec(source);
    if (!spec.ok()) {
      std::cerr << "cava: " << spec.status().ToString() << "\n";
      return 1;
    }
    auto findings = cava::LintSpec(*spec);
    std::cout << cava::FormatFindings(findings);
    return 0;
  }
  return Usage();
}
