#include "src/cava/draft.h"

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "src/cava/spec_lexer.h"
#include "src/cava/spec_model.h"

namespace cava {
namespace {

struct DraftParam {
  CType type;
  std::string name;
};

struct DraftFn {
  CType ret;
  std::string name;
  std::vector<DraftParam> params;
};

class HeaderScanner {
 public:
  explicit HeaderScanner(std::vector<SpecToken> toks) : toks_(std::move(toks)) {}

  ava::Status Run() {
    while (!Check(STok::kEof)) {
      if (CheckIdent("typedef")) {
        AVA_RETURN_IF_ERROR(ParseTypedef());
      } else {
        AVA_RETURN_IF_ERROR(ParseFunction());
      }
    }
    return ava::OkStatus();
  }

  const std::set<std::string>& handles() const { return handle_types_; }
  const std::map<std::string, std::string>& scalars() const {
    return scalar_types_;
  }
  const std::vector<DraftFn>& functions() const { return functions_; }

 private:
  const SpecToken& Peek(std::size_t d = 0) const {
    std::size_t i = pos_ + d;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool Check(STok k) const { return Peek().kind == k; }
  bool CheckIdent(const std::string& s) const {
    return Peek().kind == STok::kIdent && Peek().text == s;
  }
  bool CheckPunct(const std::string& s) const {
    return Peek().kind == STok::kPunct && Peek().text == s;
  }
  const SpecToken& Advance() {
    const SpecToken& t = toks_[pos_];
    if (pos_ + 1 < toks_.size()) {
      ++pos_;
    }
    return t;
  }
  bool MatchIdent(const std::string& s) {
    if (!CheckIdent(s)) {
      return false;
    }
    Advance();
    return true;
  }
  bool MatchPunct(const std::string& s) {
    if (!CheckPunct(s)) {
      return false;
    }
    Advance();
    return true;
  }
  ava::Status Error(const std::string& m) const {
    return ava::InvalidArgument("header line " + std::to_string(Peek().line) +
                                ": " + m);
  }

  ava::Status ParseTypedef() {
    Advance();  // typedef
    if (MatchIdent("struct")) {
      // typedef struct tag* name;
      if (!Check(STok::kIdent)) {
        return Error("expected struct tag");
      }
      Advance();  // tag
      if (!MatchPunct("*")) {
        return Error("only pointer-to-struct typedefs are recognized");
      }
      if (!Check(STok::kIdent)) {
        return Error("expected typedef name");
      }
      handle_types_.insert(Advance().text);
    } else {
      // typedef <builtin...> name;
      std::string base;
      while (Check(STok::kIdent) && Peek(1).kind == STok::kIdent) {
        if (!base.empty()) {
          base += " ";
        }
        base += Advance().text;
      }
      if (!Check(STok::kIdent)) {
        return Error("expected typedef name");
      }
      scalar_types_[Advance().text] = base;
    }
    while (!MatchPunct(";")) {
      if (Check(STok::kEof)) {
        return Error("unterminated typedef");
      }
      Advance();
    }
    return ava::OkStatus();
  }

  ava::Result<CType> ParseCType() {
    CType t;
    bool is_const = false;
    while (MatchIdent("const")) {
      is_const = true;
    }
    if (!Check(STok::kIdent)) {
      return Error("expected type name");
    }
    t.base = Advance().text;
    while ((t.base == "unsigned" || t.base == "long") && Check(STok::kIdent) &&
           (CheckIdent("int") || CheckIdent("long") || CheckIdent("char"))) {
      t.base += " " + Advance().text;
    }
    while (MatchIdent("const")) {
      is_const = true;
    }
    if (MatchPunct("*")) {
      t.is_pointer = true;
      t.pointee_const = is_const;
    }
    return t;
  }

  ava::Status ParseFunction() {
    DraftFn fn;
    AVA_ASSIGN_OR_RETURN(fn.ret, ParseCType());
    if (!Check(STok::kIdent)) {
      return Error("expected function name");
    }
    fn.name = Advance().text;
    if (!MatchPunct("(")) {
      return Error("expected '(' after function name");
    }
    if (!CheckPunct(")")) {
      do {
        if (CheckIdent("void") && Peek(1).kind == STok::kPunct &&
            Peek(1).text == ")") {
          Advance();  // f(void)
          break;
        }
        DraftParam p;
        AVA_ASSIGN_OR_RETURN(p.type, ParseCType());
        if (Check(STok::kIdent)) {
          p.name = Advance().text;
        } else {
          p.name = "arg" + std::to_string(fn.params.size());
        }
        fn.params.push_back(std::move(p));
      } while (MatchPunct(","));
    }
    if (!MatchPunct(")")) {
      return Error("expected ')'");
    }
    if (!MatchPunct(";")) {
      return Error("expected ';' after declaration");
    }
    functions_.push_back(std::move(fn));
    return ava::OkStatus();
  }

  std::vector<SpecToken> toks_;
  std::size_t pos_ = 0;
  std::set<std::string> handle_types_;
  std::map<std::string, std::string> scalar_types_;
  std::vector<DraftFn> functions_;
};

// Finds a size-like sibling parameter for `ptr` ("<name>_size", "size",
// "count", "num_<name>", "n") — the documented-convention inference.
std::string FindSizeParam(const DraftFn& fn, const DraftParam& ptr) {
  auto has = [&](const std::string& n) -> bool {
    for (const auto& p : fn.params) {
      if (p.name == n && !p.type.is_pointer) {
        return true;
      }
    }
    return false;
  };
  if (has(ptr.name + "_size")) {
    return ptr.name + "_size";
  }
  if (has("num_" + ptr.name)) {
    return "num_" + ptr.name;
  }
  for (const char* generic : {"size", "count", "n", "num", "length", "len"}) {
    if (has(generic)) {
      return generic;
    }
  }
  return "";
}

}  // namespace

ava::Result<std::string> DraftSpecFromHeader(std::string_view header_decls,
                                             const std::string& api_name,
                                             int api_id) {
  AVA_ASSIGN_OR_RETURN(auto toks, LexSpec(header_decls));
  HeaderScanner scanner(std::move(toks));
  AVA_RETURN_IF_ERROR(scanner.Run());

  std::ostringstream out;
  out << "// Preliminary specification drafted by `cava draft` — refine the\n"
         "// TODO annotations, then feed to `cava gen` (see Figure 2 of the\n"
         "// paper: spec -> developer refinement -> generation).\n";
  out << "api " << api_name << " " << api_id << ";\n\n";
  for (const auto& [name, base] : scanner.scalars()) {
    out << "type(" << name << ") { scalar; }\n";
  }
  for (const auto& name : scanner.handles()) {
    out << "type(" << name << ") { handle; }\n";
  }
  out << "\n";
  for (const auto& fn : scanner.functions()) {
    out << fn.ret.ToString() << " " << fn.name << "(";
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      if (i > 0) {
        out << ", ";
      }
      out << fn.params[i].type.ToString() << " " << fn.params[i].name;
    }
    out << ") {\n";
    out << "  sync;  // TODO: annotate async if no outputs need replies\n";
    for (const auto& p : fn.params) {
      if (!p.type.is_pointer) {
        continue;
      }
      const bool is_handle = scanner.handles().count(p.type.base) != 0;
      const bool in = p.type.pointee_const;
      std::string size = FindSizeParam(fn, p);
      out << "  parameter(" << p.name << ") { " << (in ? "in; " : "out; ");
      if (p.type.base == "char" && in) {
        out << "string; ";
      } else if (size.empty()) {
        out << "element;  /* TODO: buffer(size-expr)? */ ";
      } else if (p.type.base == "void") {
        out << "bytes(" << size << "); ";
      } else {
        out << "buffer(" << size << "); ";
      }
      if (is_handle && !in) {
        out << "allocates;  /* TODO: verify ownership */ ";
      }
      out << "}\n";
    }
    if (scanner.handles().count(fn.ret.base) != 0) {
      out << "  return { allocates; }  // TODO: verify ownership\n";
    }
    out << "}\n\n";
  }
  return out.str();
}

}  // namespace cava
