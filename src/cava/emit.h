// CAvA code generation: ApiSpec -> C++ sources for the complete remoting
// stack (paper §3: "AvA generates API-specific components of the API
// remoting and interposition stack").
//
// For an API named `foo`, generation produces:
//   foo_gen.h         — func ids, handle type tags, the FooApi call table,
//                       factory declarations
//   foo_gen_native.cc — MakeFooNativeApi(): table bound to the vendor silo
//   foo_gen_guest.cc  — marshaling guest stubs + MakeFooGuestApi(endpoint)
//   foo_gen_server.cc — MakeFooApiHandler(): the server-side dispatcher
#ifndef AVA_SRC_CAVA_EMIT_H_
#define AVA_SRC_CAVA_EMIT_H_

#include <map>
#include <string>

#include "src/common/result.h"
#include "src/cava/spec_model.h"

namespace cava {

// Generates every output file. Keys are file names (e.g. "vcl_gen.h").
ava::Result<std::map<std::string, std::string>> GenerateStack(
    const ApiSpec& spec);

}  // namespace cava

#endif  // AVA_SRC_CAVA_EMIT_H_
