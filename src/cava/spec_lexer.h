// Tokenizer for the CAvA specification language: C-ish tokens plus string
// literals and raw verbatim blocks ({{ ... }}).
#ifndef AVA_SRC_CAVA_SPEC_LEXER_H_
#define AVA_SRC_CAVA_SPEC_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace cava {

enum class STok : std::uint8_t {
  kEof,
  kIdent,
  kNumber,
  kString,    // "..." (content in text, without quotes)
  kVerbatim,  // {{ ... }} (raw content in text)
  kPunct,     // single/multi char punctuation in text: ( ) { } [ ] * ; , = < > | & ! + - / :
};

struct SpecToken {
  STok kind = STok::kEof;
  std::string text;
  int line = 0;
};

ava::Result<std::vector<SpecToken>> LexSpec(std::string_view source);

}  // namespace cava

#endif  // AVA_SRC_CAVA_SPEC_LEXER_H_
