// Small marshaling helpers shared by CAvA-generated guest stubs and server
// handlers. The generated code composes these with ByteWriter/ByteReader;
// keeping them here keeps the emitted code thin and auditable.
#ifndef AVA_SRC_PROTO_MARSHAL_H_
#define AVA_SRC_PROTO_MARSHAL_H_

#include <cstring>
#include <string>

#include "src/common/serial.h"
#include "src/proto/wire.h"

namespace ava {

// ------------------------------ handles ------------------------------------

// Guest-side handles ARE wire ids: the generated guest library fabricates
// opaque pointers whose bit pattern is the per-VM registry id. The guest
// never sees a host pointer.
template <typename H>
WireHandle HandleToWire(H handle) {
  return static_cast<WireHandle>(reinterpret_cast<std::uintptr_t>(handle));
}

template <typename H>
H WireToHandle(WireHandle id) {
  return reinterpret_cast<H>(static_cast<std::uintptr_t>(id));
}

// ---------------------------- optional data --------------------------------

// Nullable in-buffer: presence flag + raw bytes.
inline void PutOptionalBytes(ByteWriter* w, const void* data,
                             std::size_t bytes) {
  w->PutBool(data != nullptr);
  if (data != nullptr) {
    w->PutBlob(data, bytes);
  }
}

// Nullable NUL-terminated string.
inline void PutOptionalCString(ByteWriter* w, const char* s) {
  w->PutBool(s != nullptr);
  if (s != nullptr) {
    w->PutString(s);
  }
}

// ----------------------------- bulk buffers --------------------------------
//
// Large `buffer(size)` parameters travel either inline in the command block
// or out-of-band in a shared-memory buffer arena (src/transport/arena.h). A
// one-byte marker selects the encoding; the arena form carries only this
// compact descriptor instead of the bytes. Encoding 0/1 deliberately matches
// the older PutBool presence flag, so the inline form is byte-identical to
// the pre-arena wire format.
inline constexpr std::uint8_t kBulkNull = 0;    // absent (null pointer)
inline constexpr std::uint8_t kBulkInline = 1;  // length-prefixed blob follows
inline constexpr std::uint8_t kBulkArena = 2;   // ArenaDesc follows
// Content-addressed transfer cache (src/server/xfer_cache.h): the payload is
// bytes the server already holds; only a CachedDesc travels.
inline constexpr std::uint8_t kBulkCached = 3;  // CachedDesc follows
// Cache install: CachedDesc, then a one-byte inner marker (kBulkInline or
// kBulkArena) carrying the actual bytes. The server verifies the digest over
// the received bytes, installs them, and acks residency on the reply.
inline constexpr std::uint8_t kBulkCachedInstall = 4;

struct ArenaDesc {
  std::uint32_t arena_id = 0;    // which arena (guards cross-channel mixups)
  std::uint32_t slot = 0;        // slot index; byte offset = slot * slot_bytes
  std::uint64_t length = 0;      // valid bytes (in) or capacity (out)
  std::uint32_t generation = 0;  // slot generation at acquire; stale = reject
};

inline void PutArenaDesc(ByteWriter* w, const ArenaDesc& d) {
  w->PutU32(d.arena_id);
  w->PutU32(d.slot);
  w->PutU64(d.length);
  w->PutU32(d.generation);
}

inline ArenaDesc GetArenaDesc(ByteReader* r) {
  ArenaDesc d;
  d.arena_id = r->GetU32();
  d.slot = r->GetU32();
  d.length = r->GetU64();
  d.generation = r->GetU32();
  return d;
}

// Transfer-cache descriptor: 24 bytes naming content the server (should)
// hold. `slot` is the server-assigned install slot, advisory on lookups —
// the cache is keyed by (hash, length); a recycled slot can never serve
// wrong bytes. `reserved` keeps the struct 8-byte aligned for future use.
struct CachedDesc {
  std::uint64_t hash = 0;      // Hash64 of the payload bytes
  std::uint64_t length = 0;    // payload length in bytes
  std::uint32_t slot = 0;      // server install slot (advisory)
  std::uint32_t reserved = 0;
};

inline void PutCachedDesc(ByteWriter* w, const CachedDesc& d) {
  w->PutU64(d.hash);
  w->PutU64(d.length);
  w->PutU32(d.slot);
  w->PutU32(d.reserved);
}

inline CachedDesc GetCachedDesc(ByteReader* r) {
  CachedDesc d;
  d.hash = r->GetU64();
  d.length = r->GetU64();
  d.slot = r->GetU32();
  d.reserved = r->GetU32();
  return d;
}

// Out-parameter descriptor sent guest -> server: does the caller want the
// value, and (for buffers) how many bytes of capacity it provided.
inline void PutOutDesc(ByteWriter* w, const void* ptr, std::size_t capacity) {
  w->PutBool(ptr != nullptr);
  w->PutU64(static_cast<std::uint64_t>(capacity));
}

struct OutDesc {
  bool wanted = false;
  std::uint64_t capacity = 0;
};

inline OutDesc GetOutDesc(ByteReader* r) {
  OutDesc d;
  d.wanted = r->GetBool();
  d.capacity = r->GetU64();
  return d;
}

// Server -> guest out-buffer payload: presence + bytes. The guest copies
// into the application pointer it kept across the call.
inline void PutOutBytes(ByteWriter* w, bool present, const void* data,
                        std::size_t bytes) {
  w->PutBool(present);
  if (present) {
    w->PutBlob(data, bytes);
  }
}

// Reads an out-buffer payload into `dst` (if non-null). Returns bytes copied.
inline std::size_t GetOutBytes(ByteReader* r, void* dst,
                               std::size_t capacity) {
  if (!r->GetBool()) {
    return 0;
  }
  auto view = r->GetBlobView();
  const std::size_t n = view.size() < capacity ? view.size() : capacity;
  if (dst != nullptr && n > 0) {
    std::memcpy(dst, view.data(), n);
  }
  return n;
}

}  // namespace ava

#endif  // AVA_SRC_PROTO_MARSHAL_H_
