#include "src/proto/wire.h"

#include <algorithm>
#include <cstring>

namespace ava {
namespace {

// Layout offsets within a reply message (see ReplyBuilder):
//   [0]  u8  kind
//   [1]  u64 call_id
//   [9]  u64 vm_id
//   [17] i32 status
//   [21] i64 cost
//   [29] u64 trace_id
//   [37] i64 t_rx_ns        (patched by the router)
//   [45] i64 t_dispatch_ns  (patched by the router)
//   [53] i64 t_exec_start_ns
//   [61] i64 t_exec_end_ns
//   [69] u64 payload blob (length + data)
//   ...  u32 shadow count, then per shadow: u64 id + blob
constexpr std::size_t kReplyStatusOffset = 17;
constexpr std::size_t kReplyCostOffset = 21;
constexpr std::size_t kReplyTraceIdOffset = 29;
constexpr std::size_t kReplyRxOffset = 37;
constexpr std::size_t kReplyDispatchOffset = 45;

// Offsets of the back-patchable call-header fields (see PutCallHeader):
// call_id at 7, vm_id at 15, flags at 23, trace_id at 24, t_send_ns at 32,
// bulk_bytes at 40 (kCallBulkBytesOffset, public: stubs patch it directly).
constexpr std::size_t kCallIdOffset = 7;
constexpr std::size_t kCallVmOffset = 15;
constexpr std::size_t kCallFlagsOffset = 23;
constexpr std::size_t kCallTraceIdOffset = 24;
constexpr std::size_t kCallSendNsOffset = 32;

void PutCallHeader(ByteWriter* w, const CallHeader& h) {
  w->PutU8(static_cast<std::uint8_t>(MsgKind::kCall));
  w->PutU16(h.api_id);
  w->PutU32(h.func_id);
  w->PutU64(h.call_id);
  w->PutU64(h.vm_id);
  w->PutU8(h.flags);
  w->PutU64(h.trace_id);
  w->PutI64(h.t_send_ns);
  w->PutU64(h.bulk_bytes);
  w->PutU64(h.cached_bytes);
  w->PutU64(h.lane_key);
  w->PutU64(h.cost_hint);
}

}  // namespace

Bytes EncodeCall(const CallHeader& header, const Bytes& payload) {
  ByteWriter w;
  PutCallHeader(&w, header);
  w.PutRaw(payload.data(), payload.size());
  return std::move(w).TakeBytes();
}

ByteWriter BeginCall(std::uint16_t api_id, std::uint32_t func_id) {
  ByteWriter w;
  CallHeader header;
  header.api_id = api_id;
  header.func_id = func_id;
  PutCallHeader(&w, header);
  return w;
}

void PatchCallIdentity(Bytes* message, CallId call_id, VmId vm_id,
                       std::uint8_t flags) {
  if (message->size() < kCallHeaderSize) {
    return;
  }
  std::memcpy(message->data() + kCallIdOffset, &call_id, sizeof(call_id));
  std::memcpy(message->data() + kCallVmOffset, &vm_id, sizeof(vm_id));
  (*message)[kCallFlagsOffset] = flags;
}

void PatchCallTrace(Bytes* message, std::uint64_t trace_id,
                    std::int64_t t_send_ns) {
  if (message->size() < kCallHeaderSize) {
    return;
  }
  std::memcpy(message->data() + kCallTraceIdOffset, &trace_id,
              sizeof(trace_id));
  std::memcpy(message->data() + kCallSendNsOffset, &t_send_ns,
              sizeof(t_send_ns));
}

ReplyBuilder::ReplyBuilder(const ReplyHeader& header) {
  writer_.PutU8(static_cast<std::uint8_t>(MsgKind::kReply));
  writer_.PutU64(header.call_id);
  writer_.PutU64(header.vm_id);
  writer_.PutI32(header.status_code);
  cost_offset_ = writer_.size();
  writer_.PutI64(header.cost_vns);
  writer_.PutU64(header.trace_id);
  writer_.PutI64(header.t_rx_ns);
  writer_.PutI64(header.t_dispatch_ns);
  writer_.PutI64(header.t_exec_start_ns);
  writer_.PutI64(header.t_exec_end_ns);
}

void ReplyBuilder::SetPayload(const Bytes& payload) {
  payload_set_ = true;
  writer_.PutBlob(payload.data(), payload.size());
  shadow_count_offset_ = writer_.size();
  writer_.PutU32(0);
}

void ReplyBuilder::AddShadow(std::uint64_t shadow_id, const Bytes& data) {
  if (!payload_set_) {
    SetPayload({});
  }
  writer_.PutU64(shadow_id);
  writer_.PutBlob(data.data(), data.size());
  ++shadow_count_;
  writer_.PatchAt<std::uint32_t>(shadow_count_offset_, shadow_count_);
}

void ReplyBuilder::SetCost(std::int64_t cost_vns) {
  writer_.PatchAt<std::int64_t>(cost_offset_, cost_vns);
}

Bytes ReplyBuilder::Finish() && {
  if (!payload_set_) {
    SetPayload({});
  }
  return std::move(writer_).TakeBytes();
}

Bytes EncodeBatch(const std::vector<Bytes>& calls) {
  ByteWriter w;
  w.PutU8(static_cast<std::uint8_t>(MsgKind::kBatch));
  w.PutU32(static_cast<std::uint32_t>(calls.size()));
  for (const Bytes& call : calls) {
    w.PutBlob(call.data(), call.size());
  }
  return std::move(w).TakeBytes();
}

Result<MsgKind> PeekKind(const Bytes& message) {
  if (message.empty()) {
    return DataLoss("empty message");
  }
  const std::uint8_t kind = message[0];
  if (kind < 1 || kind > 3) {
    return DataLoss("unknown message kind " + std::to_string(kind));
  }
  return static_cast<MsgKind>(kind);
}

Result<DecodedCall> DecodeCall(const Bytes& message) {
  ByteReader r(message);
  if (r.GetU8() != static_cast<std::uint8_t>(MsgKind::kCall)) {
    return DataLoss("not a call message");
  }
  DecodedCall out;
  out.header.api_id = r.GetU16();
  out.header.func_id = r.GetU32();
  out.header.call_id = r.GetU64();
  out.header.vm_id = r.GetU64();
  out.header.flags = r.GetU8();
  out.header.trace_id = r.GetU64();
  out.header.t_send_ns = r.GetI64();
  out.header.bulk_bytes = r.GetU64();
  out.header.cached_bytes = r.GetU64();
  out.header.lane_key = r.GetU64();
  out.header.cost_hint = r.GetU64();
  AVA_RETURN_IF_ERROR(r.status());
  // The payload is the remainder of the message.
  out.payload = std::span<const std::uint8_t>(
      message.data() + kCallHeaderSize, message.size() - kCallHeaderSize);
  return out;
}

Result<DecodedReply> DecodeReply(const Bytes& message) {
  ByteReader r(message);
  if (r.GetU8() != static_cast<std::uint8_t>(MsgKind::kReply)) {
    return DataLoss("not a reply message");
  }
  DecodedReply out;
  out.header.call_id = r.GetU64();
  out.header.vm_id = r.GetU64();
  out.header.status_code = r.GetI32();
  out.header.cost_vns = r.GetI64();
  out.header.trace_id = r.GetU64();
  out.header.t_rx_ns = r.GetI64();
  out.header.t_dispatch_ns = r.GetI64();
  out.header.t_exec_start_ns = r.GetI64();
  out.header.t_exec_end_ns = r.GetI64();
  out.payload = r.GetBlobView();
  const std::uint32_t shadow_count = r.GetU32();
  // The count is untrusted: never pre-reserve from it, and stop at the
  // first decode failure (a hostile count must not drive the loop).
  out.shadows.reserve(std::min<std::uint32_t>(shadow_count, 64));
  for (std::uint32_t i = 0; i < shadow_count && !r.failed(); ++i) {
    ShadowUpdate update;
    update.shadow_id = r.GetU64();
    update.data = r.GetBlobView();
    if (!r.failed()) {
      out.shadows.push_back(update);
    }
  }
  AVA_RETURN_IF_ERROR(r.status());
  return out;
}

Result<std::vector<Bytes>> DecodeBatch(const Bytes& message) {
  ByteReader r(message);
  if (r.GetU8() != static_cast<std::uint8_t>(MsgKind::kBatch)) {
    return DataLoss("not a batch message");
  }
  const std::uint32_t count = r.GetU32();
  std::vector<Bytes> calls;
  // The count is untrusted (see DecodeReply): bound the reserve and bail on
  // the first truncated entry.
  calls.reserve(std::min<std::uint32_t>(count, 64));
  for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
    Bytes call = r.GetBlob();
    if (!r.failed()) {
      calls.push_back(std::move(call));
    }
  }
  AVA_RETURN_IF_ERROR(r.status());
  return calls;
}

Result<std::int64_t> PeekReplyCost(const Bytes& message) {
  if (message.size() < kReplyCostOffset + sizeof(std::int64_t) ||
      message[0] != static_cast<std::uint8_t>(MsgKind::kReply)) {
    return DataLoss("not a reply message");
  }
  ByteReader r(message.data() + kReplyCostOffset, sizeof(std::int64_t));
  return r.GetI64();
}

Result<std::uint64_t> PeekReplyTraceId(const Bytes& message) {
  if (message.size() < kReplyTraceIdOffset + sizeof(std::uint64_t) ||
      message[0] != static_cast<std::uint8_t>(MsgKind::kReply)) {
    return DataLoss("not a reply message");
  }
  ByteReader r(message.data() + kReplyTraceIdOffset, sizeof(std::uint64_t));
  return r.GetU64();
}

void PatchReplyRouterTrace(Bytes* message, std::int64_t t_rx_ns,
                           std::int64_t t_dispatch_ns) {
  if (message->size() < kReplyDispatchOffset + sizeof(std::int64_t) ||
      (*message)[0] != static_cast<std::uint8_t>(MsgKind::kReply)) {
    return;
  }
  std::memcpy(message->data() + kReplyRxOffset, &t_rx_ns, sizeof(t_rx_ns));
  std::memcpy(message->data() + kReplyDispatchOffset, &t_dispatch_ns,
              sizeof(t_dispatch_ns));
}

Result<std::uint64_t> PeekCallBulkBytes(const Bytes& message) {
  if (message.size() < kCallHeaderSize ||
      message[0] != static_cast<std::uint8_t>(MsgKind::kCall)) {
    return DataLoss("not a call message");
  }
  ByteReader r(message.data() + kCallBulkBytesOffset, sizeof(std::uint64_t));
  return r.GetU64();
}

Result<std::uint64_t> PeekCallCachedBytes(const Bytes& message) {
  if (message.size() < kCallHeaderSize ||
      message[0] != static_cast<std::uint8_t>(MsgKind::kCall)) {
    return DataLoss("not a call message");
  }
  ByteReader r(message.data() + kCallCachedBytesOffset,
               sizeof(std::uint64_t));
  return r.GetU64();
}

Result<std::uint64_t> PeekCallLaneKey(const Bytes& message) {
  if (message.size() < kCallHeaderSize ||
      message[0] != static_cast<std::uint8_t>(MsgKind::kCall)) {
    return DataLoss("not a call message");
  }
  ByteReader r(message.data() + kCallLaneKeyOffset, sizeof(std::uint64_t));
  return r.GetU64();
}

void PatchCallLaneKey(Bytes* message, std::uint64_t lane_key) {
  if (message->size() < kCallHeaderSize ||
      (*message)[0] != static_cast<std::uint8_t>(MsgKind::kCall)) {
    return;
  }
  std::memcpy(message->data() + kCallLaneKeyOffset, &lane_key,
              sizeof(lane_key));
}

Result<std::uint64_t> PeekCallCostHint(const Bytes& message) {
  if (message.size() < kCallHeaderSize ||
      message[0] != static_cast<std::uint8_t>(MsgKind::kCall)) {
    return DataLoss("not a call message");
  }
  ByteReader r(message.data() + kCallCostHintOffset, sizeof(std::uint64_t));
  return r.GetU64();
}

void PatchCallCostHint(Bytes* message, std::uint64_t cost_hint) {
  if (message->size() < kCallHeaderSize ||
      (*message)[0] != static_cast<std::uint8_t>(MsgKind::kCall)) {
    return;
  }
  std::memcpy(message->data() + kCallCostHintOffset, &cost_hint,
              sizeof(cost_hint));
}

Result<std::int32_t> PeekReplyStatus(const Bytes& message) {
  if (message.size() < kReplyStatusOffset + sizeof(std::int32_t) ||
      message[0] != static_cast<std::uint8_t>(MsgKind::kReply)) {
    return DataLoss("not a reply message");
  }
  ByteReader r(message.data() + kReplyStatusOffset, sizeof(std::int32_t));
  return r.GetI32();
}

namespace {

// CRC-32C (Castagnoli, reflected). Chosen over the IEEE polynomial because
// x86 has a dedicated instruction for it (SSE4.2 `crc32`): the typical frame
// here is under 200 bytes, where a table-driven CRC is dominated by cache
// misses on its 4 KiB of tables — measurably worse than the whole-frame
// compute on the hardware path. The software fallback uses the same
// polynomial, so checksums agree across processes and machines regardless of
// which path each side takes.
struct Crc32Tables {
  std::uint32_t t[4][256];

  Crc32Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

std::uint32_t Crc32Sw(const std::uint8_t* p, std::size_t size,
                      std::uint32_t crc) {
  static const Crc32Tables tables;
  while (size >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = tables.t[3][crc & 0xFFu] ^ tables.t[2][(crc >> 8) & 0xFFu] ^
          tables.t[1][(crc >> 16) & 0xFFu] ^ tables.t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p++) & 0xFFu];
  }
  return crc;
}

#if defined(__x86_64__)
__attribute__((target("sse4.2"))) std::uint32_t Crc32Hw(const std::uint8_t* p,
                                                        std::size_t size,
                                                        std::uint32_t crc) {
  std::uint64_t crc64 = crc;
  while (size >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, sizeof(chunk));
    crc64 = __builtin_ia32_crc32di(crc64, chunk);
    p += 8;
    size -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
  while (size-- > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
  }
  return crc;
}
#endif

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
#if defined(__x86_64__)
  static const bool hw = __builtin_cpu_supports("sse4.2");
  crc = hw ? Crc32Hw(p, size, crc) : Crc32Sw(p, size, crc);
#else
  crc = Crc32Sw(p, size, crc);
#endif
  return crc ^ 0xFFFFFFFFu;
}

void SealFrame(Bytes* message) {
  const std::uint32_t crc = Crc32(message->data(), message->size());
  const std::size_t at = message->size();
  message->resize(at + sizeof(crc));
  std::memcpy(message->data() + at, &crc, sizeof(crc));
}

Status CheckAndStripFrame(Bytes* message) {
  if (message->size() < sizeof(std::uint32_t)) {
    return DataLoss("frame shorter than its checksum");
  }
  const std::size_t body = message->size() - sizeof(std::uint32_t);
  std::uint32_t stored = 0;
  std::memcpy(&stored, message->data() + body, sizeof(stored));
  if (Crc32(message->data(), body) != stored) {
    return DataLoss("frame checksum mismatch");
  }
  message->resize(body);
  return OkStatus();
}

}  // namespace ava
