// AvA wire protocol: command blocks exchanged between the generated guest
// library, the router, and the API server.
//
// Message kinds:
//   kCall   — one forwarded API invocation (header + marshaled arguments)
//   kReply  — result of a synchronous call: transport status, marshaled
//             return/out values, piggybacked shadow-buffer updates, and the
//             server-accounted cost (read by the router for scheduling)
//   kBatch  — a sequence of async kCall messages flushed together (lazy RPC /
//             API batching, §4.2)
//
// All integers little-endian via ByteWriter/ByteReader. Handles cross the
// wire as u64 ids minted by the per-VM ObjectRegistry; 0 is the null handle.
#ifndef AVA_SRC_PROTO_WIRE_H_
#define AVA_SRC_PROTO_WIRE_H_

#include <cstdint>
#include <span>

#include "src/common/result.h"
#include "src/common/serial.h"

namespace ava {

using VmId = std::uint64_t;
using CallId = std::uint64_t;
using WireHandle = std::uint64_t;

enum class MsgKind : std::uint8_t {
  kCall = 1,
  kReply = 2,
  kBatch = 3,
};

// Call flags.
inline constexpr std::uint8_t kCallFlagAsync = 0x1;

// Reserved shadow id carrying latched async API errors (§4.2: asynchronous
// forwarding cannot report errors faithfully; the server delivers them on a
// later synchronous reply).
inline constexpr std::uint64_t kAsyncErrorShadowId = 0;

// Reserved shadow id carrying transfer-cache install acknowledgements: a
// sequence of CachedDesc records for digests the server installed while
// executing this call. The guest endpoint consumes it (marking the digests
// resident) instead of routing it to an application shadow buffer.
inline constexpr std::uint64_t kXferCacheAckShadowId = ~0ull;

struct CallHeader {
  std::uint16_t api_id = 0;
  std::uint32_t func_id = 0;
  CallId call_id = 0;
  VmId vm_id = 0;
  std::uint8_t flags = 0;
  // Trace context (observability): nonzero trace_id marks the call as
  // traced; t_send_ns is the guest-side send timestamp. Zero when tracing
  // is disabled.
  std::uint64_t trace_id = 0;
  std::int64_t t_send_ns = 0;
  // Bytes this call moved out-of-band through the shared-memory buffer
  // arena (descriptors in the payload point at them). The router adds this
  // to the frame size for bytes-per-second policies, so arena traffic is
  // not invisible to rate limiting. Zero for inline-only calls.
  std::uint64_t bulk_bytes = 0;
  // Logical payload bytes this call references through the content-addressed
  // transfer cache (kBulkCached descriptors) — bytes the server already
  // holds, which never cross the transport. The router counts them for
  // observability but does NOT charge them against bytes-per-second budgets:
  // deduplicated traffic costs only its descriptors.
  std::uint64_t cached_bytes = 0;
  // Execution-lane key: calls carrying the same nonzero key (derived by the
  // generated stub from the function's lane handle parameter, see CAvA
  // `lane(param);`) execute strictly in issue order; calls on distinct keys
  // from the same VM may run concurrently when the VM's parallelism allows
  // it. Zero is the default lane for functions without a handle parameter.
  std::uint64_t lane_key = 0;
  // Predicted device cost (vns) of this call, evaluated guest-side by the
  // generated stub from the spec's `consumes(device_time|bandwidth, EXPR)`
  // clauses. The router's fair scheduler pre-charges it at dispatch and
  // reconciles against the server-accounted cost at completion, so a wide
  // VM cannot over-dispatch expensive calls before their first completion
  // lands. Zero means "no estimate" (the scheduler charges everything at
  // completion, as before). Advisory only: never trusted for accounting.
  std::uint64_t cost_hint = 0;

  bool is_async() const { return (flags & kCallFlagAsync) != 0; }
};

struct ReplyHeader {
  CallId call_id = 0;
  VmId vm_id = 0;
  // Transport/dispatch status (OK when the call reached and ran its
  // handler; the API-level return code travels in the payload).
  std::int32_t status_code = 0;
  // Modeled device cost of this call, reported by the server and consumed by
  // the router's fair scheduler (§4.3).
  std::int64_t cost_vns = 0;
  // Trace context carried back to the guest: the call's trace id plus the
  // hop timestamps the hypervisor side observed. The server fills the
  // execute pair when it builds the reply; the router back-patches the
  // RX/dispatch pair before sending (PatchReplyRouterTrace). All zero for
  // untraced calls.
  std::uint64_t trace_id = 0;
  std::int64_t t_rx_ns = 0;          // router received the message
  std::int64_t t_dispatch_ns = 0;    // WFQ scheduler dispatched it
  std::int64_t t_exec_start_ns = 0;  // server handler entered
  std::int64_t t_exec_end_ns = 0;    // server handler returned
};

// One piggybacked shadow-buffer update: data the server produced for an
// earlier asynchronous call (e.g. a non-blocking read) that the guest
// endpoint must copy into the registered application pointer.
struct ShadowUpdate {
  std::uint64_t shadow_id = 0;
  std::span<const std::uint8_t> data;
};

// ------------------------------- encoding ----------------------------------

// Fixed size of an encoded call header; the argument payload is the
// remainder of the message (no length prefix, no copy). Layout:
// kind(1) api_id(2) func_id(4) call_id(8) vm_id(8) flags(1) trace_id(8)
// t_send_ns(8) bulk_bytes(8) cached_bytes(8) lane_key(8) cost_hint(8).
inline constexpr std::size_t kCallHeaderSize =
    1 + 2 + 4 + 8 + 8 + 1 + 8 + 8 + 8 + 8 + 8 + 8;

// Offset of the bulk_bytes field within an encoded call. Generated stubs
// back-patch it (via ByteWriter::PatchAt) after marshaling arena-resident
// arguments; the router reads it without a full decode.
inline constexpr std::size_t kCallBulkBytesOffset = 40;

// Offset of the cached_bytes field (same back-patch/peek discipline as
// bulk_bytes).
inline constexpr std::size_t kCallCachedBytesOffset = 48;

// Offset of the lane_key field (same back-patch/peek discipline as
// bulk_bytes; generated stubs patch it with the wire id of the function's
// lane handle right after marshaling it).
inline constexpr std::size_t kCallLaneKeyOffset = 56;

// Offset of the cost_hint field (same back-patch/peek discipline as
// bulk_bytes; generated stubs patch it with the spec cost expression
// evaluated against the call's own arguments).
inline constexpr std::size_t kCallCostHintOffset = 64;

// Starts a call message: writes the header with placeholder call/vm/flags
// fields. Generated stubs marshal arguments directly into the returned
// writer, avoiding a payload copy.
ByteWriter BeginCall(std::uint16_t api_id, std::uint32_t func_id);

// Back-patches the identity fields the endpoint owns.
void PatchCallIdentity(Bytes* message, CallId call_id, VmId vm_id,
                       std::uint8_t flags);

// Back-patches the trace context of an encoded call (endpoint-owned, set
// only when tracing is enabled).
void PatchCallTrace(Bytes* message, std::uint64_t trace_id,
                    std::int64_t t_send_ns);

// Serializes header + payload into one transport message (test/utility
// path; the generated stubs use BeginCall instead).
Bytes EncodeCall(const CallHeader& header, const Bytes& payload);

// Reply message: header, payload, then shadow updates.
class ReplyBuilder {
 public:
  explicit ReplyBuilder(const ReplyHeader& header);

  // Appends the marshaled return/out-value payload (exactly once).
  void SetPayload(const Bytes& payload);
  void AddShadow(std::uint64_t shadow_id, const Bytes& data);
  // Back-patches the cost field (known only after execution).
  void SetCost(std::int64_t cost_vns);

  Bytes Finish() &&;

 private:
  ByteWriter writer_;
  std::size_t cost_offset_ = 0;
  std::size_t shadow_count_offset_ = 0;
  std::uint32_t shadow_count_ = 0;
  bool payload_set_ = false;
};

// Batch of call messages (each length-prefixed).
Bytes EncodeBatch(const std::vector<Bytes>& calls);

// ------------------------------- decoding ----------------------------------

// Peeks the message kind without consuming.
Result<MsgKind> PeekKind(const Bytes& message);

struct DecodedCall {
  CallHeader header;
  // View into the original message; valid while it lives.
  std::span<const std::uint8_t> payload;
};

Result<DecodedCall> DecodeCall(const Bytes& message);

struct DecodedReply {
  ReplyHeader header;
  std::span<const std::uint8_t> payload;
  std::vector<ShadowUpdate> shadows;
};

Result<DecodedReply> DecodeReply(const Bytes& message);

// Splits a batch into its constituent call messages (copies).
Result<std::vector<Bytes>> DecodeBatch(const Bytes& message);

// Reads just the cost field of an encoded reply (router fast path).
Result<std::int64_t> PeekReplyCost(const Bytes& message);

// Reads just the trace id of an encoded reply (router fast path; 0 means
// the call was not traced).
Result<std::uint64_t> PeekReplyTraceId(const Bytes& message);

// Back-patches the router-observed hop timestamps into an encoded reply
// (the server cannot know them; see ReplyHeader).
void PatchReplyRouterTrace(Bytes* message, std::int64_t t_rx_ns,
                           std::int64_t t_dispatch_ns);

// Reads just the status field of an encoded reply (router fast path; lets
// the scheduler notice a dead backend without a full decode).
Result<std::int32_t> PeekReplyStatus(const Bytes& message);

// Reads just the bulk_bytes field of an encoded call (router fast path:
// arena accounting without a full decode).
Result<std::uint64_t> PeekCallBulkBytes(const Bytes& message);

// Reads just the cached_bytes field of an encoded call (router fast path:
// transfer-cache observability without a full decode).
Result<std::uint64_t> PeekCallCachedBytes(const Bytes& message);

// Reads just the lane_key field of an encoded call (router fast path: the
// RX loop sorts calls into per-object execution lanes without a full
// decode).
Result<std::uint64_t> PeekCallLaneKey(const Bytes& message);

// Back-patches the lane_key field of an encoded call (tests and hand-rolled
// call builders; generated stubs patch the offset directly).
void PatchCallLaneKey(Bytes* message, std::uint64_t lane_key);

// Reads just the cost_hint field of an encoded call (router fast path: the
// scheduler pre-charges the estimate at dispatch without a full decode).
Result<std::uint64_t> PeekCallCostHint(const Bytes& message);

// Back-patches the cost_hint field of an encoded call (tests and
// hand-rolled call builders; generated stubs patch the offset directly).
void PatchCallCostHint(Bytes* message, std::uint64_t cost_hint);

// ------------------------------ framing CRC --------------------------------
//
// Frames sealed at the transport boundary carry a trailing CRC32 so a
// corrupted message is rejected per-call (DataLoss) instead of being decoded
// into garbage. Sealing happens exactly once per direction, after every
// back-patch (PatchCallIdentity / PatchCallTrace / SetCost /
// PatchReplyRouterTrace); the receiving side checks and strips before any
// decode, so encoders and inner batch entries never see the checksum.

// CRC-32C (Castagnoli polynomial, reflected). Uses the SSE4.2 crc32
// instruction when the CPU has it; software fallback computes the same
// polynomial, so values agree across hosts either way.
std::uint32_t Crc32(const void* data, std::size_t size);

// Appends the CRC32 of `*message` to it.
void SealFrame(Bytes* message);

// Verifies and removes a trailing CRC32. DataLoss when the frame is shorter
// than a checksum or the CRC does not match.
Status CheckAndStripFrame(Bytes* message);

}  // namespace ava

#endif  // AVA_SRC_PROTO_WIRE_H_
