// pathfinder — Rodinia-style dynamic programming over a wide grid: one wide,
// shallow kernel per row. Balanced call/compute mix.
#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/workloads/vcl_workloads.h"

namespace workloads {
namespace {

constexpr const char* kSource = R"(
__kernel void path_step(__global const int* wall, __global const int* src,
                        __global int* dst, int cols, int row) {
  int c = get_global_id(0);
  if (c >= cols) return;
  int best = src[c];
  if (c > 0) best = min(best, src[c - 1]);
  if (c < cols - 1) best = min(best, src[c + 1]);
  dst[c] = wall[row * cols + c] + best;
}
)";

}  // namespace

ava::Status RunPathfinder(const ava_gen_vcl::VclApi& api,
                          const WorkloadOptions& options) {
  const int cols = 100000 * options.scale;
  const int rows = 50;
  ava::Rng rng(options.seed);
  std::vector<std::int32_t> wall(static_cast<std::size_t>(rows) * cols);
  for (auto& v : wall) {
    v = static_cast<std::int32_t>(rng.NextBelow(10));
  }

  AVA_ASSIGN_OR_RETURN(VclSession s, VclSession::Open(api));
  AVA_ASSIGN_OR_RETURN(vcl_kernel step, s.BuildKernel(kSource, "path_step"));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_wall,
                       s.MakeBuffer(wall.size() * 4, wall.data()));
  // dp row 0 = wall row 0.
  AVA_ASSIGN_OR_RETURN(
      vcl_mem d_src,
      s.MakeBuffer(static_cast<std::size_t>(cols) * 4, wall.data()));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_dst,
                       s.MakeBuffer(static_cast<std::size_t>(cols) * 4));

  api.vclSetKernelArgBuffer(step, 0, d_wall);
  api.vclSetKernelArgScalar(step, 3, sizeof(int), &cols);

  vcl_mem src = d_src, dst = d_dst;
  for (int row = 1; row < rows; ++row) {
    api.vclSetKernelArgBuffer(step, 1, src);
    api.vclSetKernelArgBuffer(step, 2, dst);
    api.vclSetKernelArgScalar(step, 4, sizeof(int), &row);
    AVA_RETURN_IF_ERROR(s.Launch1D(step, static_cast<std::size_t>(cols)));
    std::swap(src, dst);
  }
  std::vector<std::int32_t> got(static_cast<std::size_t>(cols), 0);
  AVA_RETURN_IF_ERROR(s.Read(src, got.data(), got.size() * 4));

  if (!options.validate) {
    return ava::OkStatus();
  }
  std::vector<std::int32_t> cur(wall.begin(), wall.begin() + cols);
  std::vector<std::int32_t> nxt(static_cast<std::size_t>(cols), 0);
  for (int row = 1; row < rows; ++row) {
    for (int c = 0; c < cols; ++c) {
      std::int32_t best = cur[static_cast<std::size_t>(c)];
      if (c > 0) {
        best = std::min(best, cur[static_cast<std::size_t>(c - 1)]);
      }
      if (c < cols - 1) {
        best = std::min(best, cur[static_cast<std::size_t>(c + 1)]);
      }
      nxt[static_cast<std::size_t>(c)] =
          wall[static_cast<std::size_t>(row) * cols + c] + best;
    }
    std::swap(cur, nxt);
  }
  return CheckEqual(got, cur, "pathfinder dp row");
}

}  // namespace workloads
