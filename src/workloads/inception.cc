#include "src/workloads/inception.h"

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/mvnc/graph.h"

namespace workloads {
namespace {

// A small CNN standing in for Inception v3: same API call pattern, scaled
// FLOPs (see DESIGN.md §2).
mvnc::GraphDef InceptionSimGraph(std::uint64_t seed) {
  return mvnc::GraphBuilder(3, 32, 32, seed)
      .Named("inception-sim")
      .Conv2d(12, 3)
      .MaxPool(2)
      .Conv2d(24, 3)
      .MaxPool(2)
      .Dense(64)
      .Dense(10, /*relu=*/false)
      .Softmax()
      .Build();
}

}  // namespace

ava::Status RunInception(const ava_gen_mvnc::MvncApi& api,
                         const WorkloadOptions& options, int images) {
  mvnc::GraphDef def = InceptionSimGraph(options.seed);
  ava::Bytes file = def.Serialize();

  mvnc_device dev = nullptr;
  if (api.mvncOpenDevice("ncs0", &dev) != MVNC_OK) {
    return ava::Unavailable("cannot open ncs0");
  }
  mvnc_graph graph = nullptr;
  if (api.mvncAllocateGraph(dev, &graph, file.data(),
                            static_cast<std::uint32_t>(file.size())) !=
      MVNC_OK) {
    api.mvncCloseDevice(dev);
    return ava::Internal("mvncAllocateGraph failed");
  }

  ava::Rng rng(options.seed + 1);
  const std::size_t in_elems = def.InputElements();
  ava::Status failure = ava::OkStatus();
  for (int img = 0; img < images; ++img) {
    std::vector<float> input(in_elems);
    for (auto& v : input) {
      v = rng.NextFloat(-1.0f, 1.0f);
    }
    if (api.mvncLoadTensor(
            graph, input.data(),
            static_cast<std::uint32_t>(in_elems * sizeof(float))) !=
        MVNC_OK) {
      failure = ava::Internal("mvncLoadTensor failed");
      break;
    }
    std::vector<float> result(10, 0.0f);
    std::uint32_t result_size = 0;
    if (api.mvncGetResult(graph, result.data(), 10 * sizeof(float),
                          &result_size) != MVNC_OK ||
        result_size != 10 * sizeof(float)) {
      failure = ava::Internal("mvncGetResult failed");
      break;
    }
    if (options.validate) {
      mvnc::Tensor in = mvnc::Tensor::Chw(3, 32, 32);
      in.data = input;
      auto want = def.Run(in, nullptr);
      if (!want.ok()) {
        failure = want.status();
        break;
      }
      for (int i = 0; i < 10; ++i) {
        if (std::fabs(result[static_cast<std::size_t>(i)] -
                      want->data[static_cast<std::size_t>(i)]) > 1e-4f) {
          failure = ava::Internal("inception result mismatch at class " +
                                  std::to_string(i));
          break;
        }
      }
      if (!failure.ok()) {
        break;
      }
    }
  }
  api.mvncDeallocateGraph(graph);
  api.mvncCloseDevice(dev);
  return failure;
}

}  // namespace workloads
