// nw — Needleman-Wunsch sequence alignment: anti-diagonal wavefront over the
// score matrix, one small launch per diagonal. Like gaussian, heavily
// call-latency-bound.
#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/workloads/vcl_workloads.h"

namespace workloads {
namespace {

constexpr const char* kSource = R"(
__kernel void nw_diag(__global int* score, __global const int* ref, int n,
                      int d, int penalty) {
  int k = get_global_id(0);
  int i_min = (d - n > 1) ? (d - n) : 1;
  int i = i_min + k;
  int j = d - i;
  if (i > n || j < 1 || j > n) return;
  int w = n + 1;
  int up = score[(i - 1) * w + j] - penalty;
  int left = score[i * w + (j - 1)] - penalty;
  int diag = score[(i - 1) * w + (j - 1)] + ref[(i - 1) * n + (j - 1)];
  int best = max(max(up, left), diag);
  score[i * w + j] = best;
}
)";

}  // namespace

ava::Status RunNw(const ava_gen_vcl::VclApi& api,
                  const WorkloadOptions& options) {
  const int n = 224 * options.scale;
  const int penalty = 10;
  const int w = n + 1;
  ava::Rng rng(options.seed);
  std::vector<std::int32_t> ref(static_cast<std::size_t>(n) * n);
  for (auto& v : ref) {
    v = static_cast<std::int32_t>(rng.NextInRange(-6, 6));
  }
  std::vector<std::int32_t> score(static_cast<std::size_t>(w) * w, 0);
  for (int i = 0; i <= n; ++i) {
    score[static_cast<std::size_t>(i) * w] = -i * penalty;
    score[static_cast<std::size_t>(i)] = -i * penalty;
  }

  AVA_ASSIGN_OR_RETURN(VclSession s, VclSession::Open(api));
  AVA_ASSIGN_OR_RETURN(vcl_kernel diag, s.BuildKernel(kSource, "nw_diag"));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_score,
                       s.MakeBuffer(score.size() * 4, score.data()));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_ref, s.MakeBuffer(ref.size() * 4, ref.data()));

  api.vclSetKernelArgBuffer(diag, 0, d_score);
  api.vclSetKernelArgBuffer(diag, 1, d_ref);
  api.vclSetKernelArgScalar(diag, 2, sizeof(int), &n);
  api.vclSetKernelArgScalar(diag, 4, sizeof(int), &penalty);

  for (int d = 2; d <= 2 * n; ++d) {
    const int i_min = std::max(1, d - n);
    const int i_max = std::min(n, d - 1);
    const int len = i_max - i_min + 1;
    api.vclSetKernelArgScalar(diag, 3, sizeof(int), &d);
    AVA_RETURN_IF_ERROR(s.Launch1D(diag, static_cast<std::size_t>(len)));
  }
  std::vector<std::int32_t> got(score.size(), 0);
  AVA_RETURN_IF_ERROR(s.Read(d_score, got.data(), got.size() * 4));

  if (!options.validate) {
    return ava::OkStatus();
  }
  std::vector<std::int32_t> want = score;
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) {
      const std::int32_t up =
          want[static_cast<std::size_t>(i - 1) * w + j] - penalty;
      const std::int32_t left =
          want[static_cast<std::size_t>(i) * w + (j - 1)] - penalty;
      const std::int32_t dd =
          want[static_cast<std::size_t>(i - 1) * w + (j - 1)] +
          ref[static_cast<std::size_t>(i - 1) * n + (j - 1)];
      want[static_cast<std::size_t>(i) * w + j] =
          std::max({up, left, dd});
    }
  }
  return CheckEqual(got, want, "nw score matrix");
}

}  // namespace workloads
