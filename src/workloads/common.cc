#include <cmath>
#include <string>
#include <utility>

#include "src/workloads/vcl_workloads.h"

namespace workloads {

ava::Result<VclSession> VclSession::Open(const ava_gen_vcl::VclApi& api) {
  VclSession s(&api);
  if (api.vclGetPlatformIDs(1, &s.platform_, nullptr) != VCL_SUCCESS) {
    return ava::Unavailable("no VCL platform");
  }
  if (api.vclGetDeviceIDs(s.platform_, VCL_DEVICE_TYPE_GPU, 1, &s.device_,
                          nullptr) != VCL_SUCCESS) {
    return ava::Unavailable("no VCL device");
  }
  vcl_int err = VCL_SUCCESS;
  s.context_ = api.vclCreateContext(&s.device_, 1, &err);
  if (err != VCL_SUCCESS) {
    return ava::Internal("vclCreateContext failed: " + std::to_string(err));
  }
  s.queue_ = api.vclCreateCommandQueue(s.context_, s.device_,
                                       VCL_QUEUE_PROFILING_ENABLE, &err);
  if (err != VCL_SUCCESS) {
    return ava::Internal("vclCreateCommandQueue failed: " +
                         std::to_string(err));
  }
  return s;
}

VclSession::VclSession(VclSession&& other) noexcept
    : api_(other.api_),
      platform_(other.platform_),
      device_(other.device_),
      context_(other.context_),
      queue_(other.queue_),
      buffers_(std::move(other.buffers_)),
      programs_(std::move(other.programs_)),
      kernels_(std::move(other.kernels_)) {
  other.context_ = nullptr;
  other.queue_ = nullptr;
  other.buffers_.clear();
  other.programs_.clear();
  other.kernels_.clear();
}

VclSession::~VclSession() {
  for (vcl_kernel k : kernels_) {
    api_->vclReleaseKernel(k);
  }
  for (vcl_program p : programs_) {
    api_->vclReleaseProgram(p);
  }
  for (vcl_mem m : buffers_) {
    api_->vclReleaseMemObject(m);
  }
  if (queue_ != nullptr) {
    api_->vclFinish(queue_);
    api_->vclReleaseCommandQueue(queue_);
  }
  if (context_ != nullptr) {
    api_->vclReleaseContext(context_);
  }
}

ava::Result<vcl_program> VclSession::BuildProgram(const char* source) {
  vcl_int err = VCL_SUCCESS;
  vcl_program program = api_->vclCreateProgramWithSource(context_, source,
                                                         &err);
  if (err != VCL_SUCCESS) {
    return ava::Internal("vclCreateProgramWithSource failed");
  }
  programs_.push_back(program);
  if (api_->vclBuildProgram(program, nullptr) != VCL_SUCCESS) {
    char log[2048] = {0};
    api_->vclGetProgramBuildInfo(program, VCL_PROGRAM_BUILD_LOG, sizeof(log),
                                 log, nullptr);
    return ava::InvalidArgument(std::string("kernel build failed: ") + log);
  }
  return program;
}

ava::Result<vcl_kernel> VclSession::BuildKernel(const char* source,
                                                const char* name) {
  AVA_ASSIGN_OR_RETURN(vcl_program program, BuildProgram(source));
  vcl_int err = VCL_SUCCESS;
  vcl_kernel kernel = api_->vclCreateKernel(program, name, &err);
  if (err != VCL_SUCCESS) {
    return ava::Internal(std::string("vclCreateKernel failed for ") + name);
  }
  kernels_.push_back(kernel);
  return kernel;
}

ava::Result<vcl_mem> VclSession::MakeBuffer(std::size_t bytes,
                                            const void* init) {
  vcl_int err = VCL_SUCCESS;
  vcl_bitfield flags = VCL_MEM_READ_WRITE;
  if (init != nullptr) {
    flags |= VCL_MEM_COPY_HOST_PTR;
  }
  vcl_mem mem = api_->vclCreateBuffer(context_, flags, bytes, init, &err);
  if (err != VCL_SUCCESS) {
    return ava::ResourceExhausted("vclCreateBuffer failed: " +
                                  std::to_string(err));
  }
  buffers_.push_back(mem);
  return mem;
}

ava::Status VclSession::Write(vcl_mem buffer, const void* data,
                              std::size_t bytes, bool blocking) {
  vcl_int rc = api_->vclEnqueueWriteBuffer(queue_, buffer,
                                           blocking ? VCL_TRUE : VCL_FALSE, 0,
                                           bytes, data, 0, nullptr, nullptr);
  return rc == VCL_SUCCESS
             ? ava::OkStatus()
             : ava::Internal("write failed: " + std::to_string(rc));
}

ava::Status VclSession::Read(vcl_mem buffer, void* data, std::size_t bytes) {
  vcl_int rc = api_->vclEnqueueReadBuffer(queue_, buffer, VCL_TRUE, 0, bytes,
                                          data, 0, nullptr, nullptr);
  return rc == VCL_SUCCESS
             ? ava::OkStatus()
             : ava::Internal("read failed: " + std::to_string(rc));
}

ava::Status VclSession::Launch1D(vcl_kernel kernel, std::size_t global,
                                 std::size_t local) {
  vcl_int rc = api_->vclEnqueueNDRangeKernel(
      queue_, kernel, 1, nullptr, &global, local != 0 ? &local : nullptr, 0,
      nullptr, nullptr);
  return rc == VCL_SUCCESS
             ? ava::OkStatus()
             : ava::Internal("launch failed: " + std::to_string(rc));
}

ava::Status VclSession::Launch2D(vcl_kernel kernel, std::size_t gx,
                                 std::size_t gy, std::size_t lx,
                                 std::size_t ly) {
  std::size_t global[2] = {gx, gy};
  std::size_t local[2] = {lx, ly};
  vcl_int rc = api_->vclEnqueueNDRangeKernel(
      queue_, kernel, 2, nullptr, global, lx != 0 ? local : nullptr, 0,
      nullptr, nullptr);
  return rc == VCL_SUCCESS
             ? ava::OkStatus()
             : ava::Internal("2D launch failed: " + std::to_string(rc));
}

ava::Status VclSession::Finish() {
  vcl_int rc = api_->vclFinish(queue_);
  return rc == VCL_SUCCESS
             ? ava::OkStatus()
             : ava::Internal("finish failed: " + std::to_string(rc));
}

ava::Status CheckClose(const std::vector<float>& got,
                       const std::vector<float>& want, float tol,
                       const std::string& what) {
  if (got.size() != want.size()) {
    return ava::Internal(what + ": size mismatch");
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(want[i]));
    if (std::fabs(got[i] - want[i]) > tol * scale) {
      return ava::Internal(what + ": mismatch at " + std::to_string(i) +
                           ": got " + std::to_string(got[i]) + ", want " +
                           std::to_string(want[i]));
    }
  }
  return ava::OkStatus();
}

ava::Status CheckEqual(const std::vector<std::int32_t>& got,
                       const std::vector<std::int32_t>& want,
                       const std::string& what) {
  if (got.size() != want.size()) {
    return ava::Internal(what + ": size mismatch");
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) {
      return ava::Internal(what + ": mismatch at " + std::to_string(i) +
                           ": got " + std::to_string(got[i]) + ", want " +
                           std::to_string(want[i]));
    }
  }
  return ava::OkStatus();
}

const std::vector<VclWorkload>& AllVclWorkloads() {
  static const auto* workloads = new std::vector<VclWorkload>{
      {"backprop", &RunBackprop}, {"bfs", &RunBfs},
      {"gaussian", &RunGaussian}, {"hotspot", &RunHotspot},
      {"nn", &RunNn},             {"nw", &RunNw},
      {"pathfinder", &RunPathfinder}, {"srad", &RunSrad},
  };
  return *workloads;
}

}  // namespace workloads
