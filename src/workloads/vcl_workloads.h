// Rodinia-style benchmark workloads ported to the VCL kernel language.
//
// Every workload is written against the generated VclApi table, so the same
// code runs native (table bound to the silo) or virtualized (table bound to
// the AvA guest stubs) — exactly how Figure 5 compares the two. Each
// workload validates its device results against a CPU reference and fails
// loudly on divergence.
#ifndef AVA_SRC_WORKLOADS_VCL_WORKLOADS_H_
#define AVA_SRC_WORKLOADS_VCL_WORKLOADS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "vcl_gen.h"

namespace workloads {

struct WorkloadOptions {
  // Problem-size multiplier: 1 = the default (sub-second native) size.
  int scale = 1;
  std::uint64_t seed = 42;
  bool validate = true;
};

struct VclWorkload {
  std::string name;
  // Runs end to end (setup, transfers, kernels, validation, teardown).
  std::function<ava::Status(const ava_gen_vcl::VclApi&,
                            const WorkloadOptions&)>
      run;
};

// The eight Rodinia-style workloads of Figure 5, in the paper's order.
const std::vector<VclWorkload>& AllVclWorkloads();

// Individual accessors (used by focused tests/benches).
ava::Status RunBackprop(const ava_gen_vcl::VclApi& api,
                        const WorkloadOptions& options);
ava::Status RunBfs(const ava_gen_vcl::VclApi& api,
                   const WorkloadOptions& options);
ava::Status RunGaussian(const ava_gen_vcl::VclApi& api,
                        const WorkloadOptions& options);
ava::Status RunHotspot(const ava_gen_vcl::VclApi& api,
                       const WorkloadOptions& options);
ava::Status RunNn(const ava_gen_vcl::VclApi& api,
                  const WorkloadOptions& options);
ava::Status RunNw(const ava_gen_vcl::VclApi& api,
                  const WorkloadOptions& options);
ava::Status RunPathfinder(const ava_gen_vcl::VclApi& api,
                          const WorkloadOptions& options);
ava::Status RunSrad(const ava_gen_vcl::VclApi& api,
                    const WorkloadOptions& options);

// ---------------------------------------------------------------------------
// Shared plumbing for workload implementations.
// ---------------------------------------------------------------------------

// RAII bundle of platform/device/context/queue plus helpers, all through the
// API table.
class VclSession {
 public:
  static ava::Result<VclSession> Open(const ava_gen_vcl::VclApi& api);
  ~VclSession();

  VclSession(VclSession&& other) noexcept;
  VclSession& operator=(VclSession&&) = delete;
  VclSession(const VclSession&) = delete;

  const ava_gen_vcl::VclApi& api() const { return *api_; }
  vcl_context context() const { return context_; }
  vcl_command_queue queue() const { return queue_; }
  vcl_device_id device() const { return device_; }

  // Builds a program or returns the build log as an error.
  ava::Result<vcl_program> BuildProgram(const char* source);
  ava::Result<vcl_kernel> BuildKernel(const char* source, const char* name);

  ava::Result<vcl_mem> MakeBuffer(std::size_t bytes,
                                  const void* init = nullptr);
  ava::Status Write(vcl_mem buffer, const void* data, std::size_t bytes,
                    bool blocking = true);
  ava::Status Read(vcl_mem buffer, void* data, std::size_t bytes);
  ava::Status Launch1D(vcl_kernel kernel, std::size_t global,
                       std::size_t local = 0);
  ava::Status Launch2D(vcl_kernel kernel, std::size_t gx, std::size_t gy,
                       std::size_t lx = 0, std::size_t ly = 0);
  ava::Status Finish();

 private:
  explicit VclSession(const ava_gen_vcl::VclApi* api) : api_(api) {}

  const ava_gen_vcl::VclApi* api_;
  vcl_platform_id platform_ = nullptr;
  vcl_device_id device_ = nullptr;
  vcl_context context_ = nullptr;
  vcl_command_queue queue_ = nullptr;
  std::vector<vcl_mem> buffers_;
  std::vector<vcl_program> programs_;
  std::vector<vcl_kernel> kernels_;
};

// Verifies |got - want| <= tol * max(1, |want|) elementwise.
ava::Status CheckClose(const std::vector<float>& got,
                       const std::vector<float>& want, float tol,
                       const std::string& what);
ava::Status CheckEqual(const std::vector<std::int32_t>& got,
                       const std::vector<std::int32_t>& want,
                       const std::string& what);

}  // namespace workloads

#endif  // AVA_SRC_WORKLOADS_VCL_WORKLOADS_H_
