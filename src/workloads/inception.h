// inception-sim — the Movidius workload of Figure 5: a CNN with the
// Inception-v3 call pattern (allocate graph once, stream input tensors,
// fetch classification results), scaled to this repo's software NCS.
#ifndef AVA_SRC_WORKLOADS_INCEPTION_H_
#define AVA_SRC_WORKLOADS_INCEPTION_H_

#include "mvnc_gen.h"
#include "src/common/result.h"
#include "src/workloads/vcl_workloads.h"

namespace workloads {

// Runs `images` inferences through the MVNC API table, validating each
// result against a direct run of the inference engine.
ava::Status RunInception(const ava_gen_mvnc::MvncApi& api,
                         const WorkloadOptions& options, int images = 8);

}  // namespace workloads

#endif  // AVA_SRC_WORKLOADS_INCEPTION_H_
