// backprop — Rodinia-style MLP layer training step: forward pass through a
// sigmoid hidden layer plus a weight-adjustment pass, iterated. Mix: a few
// medium kernels per iteration with no data transfer in the loop.
#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/workloads/vcl_workloads.h"

namespace workloads {
namespace {

constexpr const char* kSource = R"(
__kernel void layerforward(__global const float* input,
                           __global const float* weights,
                           __global float* hidden, int in_n, int hid_n) {
  int j = get_global_id(0);
  if (j >= hid_n) return;
  float sum = weights[j];  // bias row
  for (int i = 0; i < in_n; i++) {
    sum += weights[(i + 1) * hid_n + j] * input[i];
  }
  hidden[j] = 1.0f / (1.0f + exp(-sum));
}

__kernel void adjust_weights(__global float* weights,
                             __global const float* input,
                             __global const float* delta, int in_n, int hid_n,
                             float eta) {
  int idx = get_global_id(0);
  if (idx >= (in_n + 1) * hid_n) return;
  int i = idx / hid_n;
  int j = idx % hid_n;
  float x = (i == 0) ? 1.0f : input[i - 1];
  weights[idx] += eta * delta[j] * x;
}
)";

}  // namespace

ava::Status RunBackprop(const ava_gen_vcl::VclApi& api,
                        const WorkloadOptions& options) {
  const int in_n = 2048 * options.scale;
  const int hid_n = 128;
  const int iterations = 6;
  const float eta = 0.3f;

  ava::Rng rng(options.seed);
  std::vector<float> input(in_n), weights((in_n + 1) * hid_n), delta(hid_n);
  for (auto& v : input) {
    v = rng.NextFloat(0.0f, 1.0f);
  }
  for (auto& v : weights) {
    v = rng.NextFloat(-0.05f, 0.05f);
  }
  for (auto& v : delta) {
    v = rng.NextFloat(-0.01f, 0.01f);
  }

  AVA_ASSIGN_OR_RETURN(VclSession s, VclSession::Open(api));
  AVA_ASSIGN_OR_RETURN(vcl_program program, s.BuildProgram(kSource));
  vcl_int err = VCL_SUCCESS;
  vcl_kernel forward = api.vclCreateKernel(program, "layerforward", &err);
  vcl_kernel adjust = api.vclCreateKernel(program, "adjust_weights", &err);
  if (err != VCL_SUCCESS) {
    return ava::Internal("kernel creation failed");
  }

  AVA_ASSIGN_OR_RETURN(
      vcl_mem d_input, s.MakeBuffer(input.size() * 4, input.data()));
  AVA_ASSIGN_OR_RETURN(
      vcl_mem d_weights, s.MakeBuffer(weights.size() * 4, weights.data()));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_hidden, s.MakeBuffer(hid_n * 4));
  AVA_ASSIGN_OR_RETURN(
      vcl_mem d_delta, s.MakeBuffer(delta.size() * 4, delta.data()));

  api.vclSetKernelArgBuffer(forward, 0, d_input);
  api.vclSetKernelArgBuffer(forward, 1, d_weights);
  api.vclSetKernelArgBuffer(forward, 2, d_hidden);
  api.vclSetKernelArgScalar(forward, 3, sizeof(int), &in_n);
  api.vclSetKernelArgScalar(forward, 4, sizeof(int), &hid_n);

  api.vclSetKernelArgBuffer(adjust, 0, d_weights);
  api.vclSetKernelArgBuffer(adjust, 1, d_input);
  api.vclSetKernelArgBuffer(adjust, 2, d_delta);
  api.vclSetKernelArgScalar(adjust, 3, sizeof(int), &in_n);
  api.vclSetKernelArgScalar(adjust, 4, sizeof(int), &hid_n);
  api.vclSetKernelArgScalar(adjust, 5, sizeof(float), &eta);

  for (int it = 0; it < iterations; ++it) {
    AVA_RETURN_IF_ERROR(s.Launch1D(forward, hid_n));
    AVA_RETURN_IF_ERROR(
        s.Launch1D(adjust, static_cast<std::size_t>(in_n + 1) * hid_n));
  }
  std::vector<float> hidden(hid_n, 0.0f);
  AVA_RETURN_IF_ERROR(s.Read(d_hidden, hidden.data(), hid_n * 4));

  if (!options.validate) {
    return ava::OkStatus();
  }
  // CPU reference: identical iteration order.
  std::vector<float> ref_w = weights;
  std::vector<float> ref_h(hid_n, 0.0f);
  for (int it = 0; it < iterations; ++it) {
    for (int j = 0; j < hid_n; ++j) {
      float sum = ref_w[static_cast<std::size_t>(j)];
      for (int i = 0; i < in_n; ++i) {
        sum += ref_w[static_cast<std::size_t>(i + 1) * hid_n + j] * input[i];
      }
      ref_h[static_cast<std::size_t>(j)] = 1.0f / (1.0f + std::exp(-sum));
    }
    for (int i = 0; i <= in_n; ++i) {
      const float x = i == 0 ? 1.0f : input[static_cast<std::size_t>(i - 1)];
      for (int j = 0; j < hid_n; ++j) {
        ref_w[static_cast<std::size_t>(i) * hid_n + j] +=
            eta * delta[static_cast<std::size_t>(j)] * x;
      }
    }
  }
  return CheckClose(hidden, ref_h, 1e-3f, "backprop hidden layer");
}

}  // namespace workloads
