// bfs — Rodinia-style frontier BFS over a CSR graph. Mix: many small kernel
// launches with a tiny blocking readback (the "changed" flag) per level —
// the call-latency-sensitive end of Figure 5.
#include <deque>
#include <vector>

#include "src/common/rng.h"
#include "src/workloads/vcl_workloads.h"

namespace workloads {
namespace {

constexpr const char* kSource = R"(
__kernel void bfs_step(__global const int* offsets, __global const int* edges,
                       __global int* frontier, __global int* next_frontier,
                       __global int* visited, __global int* cost,
                       __global int* changed, int n, int level) {
  int v = get_global_id(0);
  if (v >= n) return;
  if (frontier[v] == 0) return;
  frontier[v] = 0;
  for (int e = offsets[v]; e < offsets[v + 1]; e++) {
    int u = edges[e];
    if (visited[u] == 0) {
      visited[u] = 1;
      cost[u] = level + 1;
      next_frontier[u] = 1;
      changed[0] = 1;
    }
  }
}
)";

}  // namespace

ava::Status RunBfs(const ava_gen_vcl::VclApi& api,
                   const WorkloadOptions& options) {
  const int n = 20000 * options.scale;
  const int avg_degree = 4;
  ava::Rng rng(options.seed);

  // Random digraph in CSR form, plus a chain thread so it has real depth.
  std::vector<std::vector<std::int32_t>> adj(static_cast<std::size_t>(n));
  for (int v = 0; v + 1 < n; v += 7) {
    adj[static_cast<std::size_t>(v)].push_back(v + 1);
  }
  for (int e = 0; e < n * avg_degree; ++e) {
    int a = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(n)));
    int b = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(n)));
    adj[static_cast<std::size_t>(a)].push_back(b);
  }
  std::vector<std::int32_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<std::int32_t> edges;
  for (int v = 0; v < n; ++v) {
    offsets[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(edges.size());
    for (std::int32_t u : adj[static_cast<std::size_t>(v)]) {
      edges.push_back(u);
    }
  }
  offsets[static_cast<std::size_t>(n)] =
      static_cast<std::int32_t>(edges.size());

  AVA_ASSIGN_OR_RETURN(VclSession s, VclSession::Open(api));
  AVA_ASSIGN_OR_RETURN(vcl_kernel step, s.BuildKernel(kSource, "bfs_step"));

  std::vector<std::int32_t> frontier(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> visited(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> cost(static_cast<std::size_t>(n), -1);
  frontier[0] = 1;
  visited[0] = 1;
  cost[0] = 0;

  AVA_ASSIGN_OR_RETURN(vcl_mem d_off,
                       s.MakeBuffer(offsets.size() * 4, offsets.data()));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_edges,
                       s.MakeBuffer(std::max<std::size_t>(edges.size(), 1) * 4,
                                    edges.empty() ? nullptr : edges.data()));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_front,
                       s.MakeBuffer(frontier.size() * 4, frontier.data()));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_next, s.MakeBuffer(frontier.size() * 4));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_visited,
                       s.MakeBuffer(visited.size() * 4, visited.data()));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_cost,
                       s.MakeBuffer(cost.size() * 4, cost.data()));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_changed, s.MakeBuffer(4));

  api.vclSetKernelArgBuffer(step, 0, d_off);
  api.vclSetKernelArgBuffer(step, 1, d_edges);
  api.vclSetKernelArgBuffer(step, 4, d_visited);
  api.vclSetKernelArgBuffer(step, 5, d_cost);
  api.vclSetKernelArgBuffer(step, 6, d_changed);
  api.vclSetKernelArgScalar(step, 7, sizeof(int), &n);

  vcl_mem cur = d_front;
  vcl_mem next = d_next;
  const std::int32_t zero = 0;
  for (int level = 0; level < n; ++level) {
    api.vclEnqueueFillBuffer(s.queue(), d_changed, &zero, 4, 0, 4, 0, nullptr,
                             nullptr);
    api.vclSetKernelArgBuffer(step, 2, cur);
    api.vclSetKernelArgBuffer(step, 3, next);
    api.vclSetKernelArgScalar(step, 8, sizeof(int), &level);
    AVA_RETURN_IF_ERROR(s.Launch1D(step, static_cast<std::size_t>(n)));
    std::int32_t changed = 0;
    AVA_RETURN_IF_ERROR(s.Read(d_changed, &changed, 4));
    if (changed == 0) {
      break;
    }
    std::swap(cur, next);
  }
  std::vector<std::int32_t> got(static_cast<std::size_t>(n), 0);
  AVA_RETURN_IF_ERROR(
      s.Read(d_cost, got.data(), got.size() * 4));

  if (!options.validate) {
    return ava::OkStatus();
  }
  // CPU reference BFS.
  std::vector<std::int32_t> want(static_cast<std::size_t>(n), -1);
  std::deque<int> queue = {0};
  want[0] = 0;
  while (!queue.empty()) {
    int v = queue.front();
    queue.pop_front();
    for (std::int32_t e = offsets[static_cast<std::size_t>(v)];
         e < offsets[static_cast<std::size_t>(v) + 1]; ++e) {
      std::int32_t u = edges[static_cast<std::size_t>(e)];
      if (want[static_cast<std::size_t>(u)] < 0) {
        want[static_cast<std::size_t>(u)] =
            want[static_cast<std::size_t>(v)] + 1;
        queue.push_back(u);
      }
    }
  }
  return CheckEqual(got, want, "bfs levels");
}

}  // namespace workloads
