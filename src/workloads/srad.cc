// srad — Rodinia-style speckle-reducing anisotropic diffusion: two stencil
// kernels per iteration plus a full-image blocking readback for the host-
// side statistics, mixing compute with recurring large transfers.
#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/workloads/vcl_workloads.h"

namespace workloads {
namespace {

constexpr const char* kSource = R"(
__kernel void srad1(__global const float* J, __global float* dN,
                    __global float* dS, __global float* dW,
                    __global float* dE, __global float* C, int rows, int cols,
                    float q0sqr) {
  int idx = get_global_id(0);
  if (idx >= rows * cols) return;
  int r = idx / cols;
  int c = idx % cols;
  float Jc = J[idx];
  float dn = ((r > 0) ? J[idx - cols] : Jc) - Jc;
  float ds = ((r < rows - 1) ? J[idx + cols] : Jc) - Jc;
  float dw = ((c > 0) ? J[idx - 1] : Jc) - Jc;
  float de = ((c < cols - 1) ? J[idx + 1] : Jc) - Jc;
  float g2 = (dn * dn + ds * ds + dw * dw + de * de) / (Jc * Jc);
  float l = (dn + ds + dw + de) / Jc;
  float num = (0.5f * g2) - ((1.0f / 16.0f) * l * l);
  float den = 1.0f + 0.25f * l;
  float qsqr = num / (den * den);
  den = (qsqr - q0sqr) / (q0sqr * (1.0f + q0sqr));
  float cval = 1.0f / (1.0f + den);
  if (cval < 0.0f) cval = 0.0f;
  if (cval > 1.0f) cval = 1.0f;
  dN[idx] = dn;
  dS[idx] = ds;
  dW[idx] = dw;
  dE[idx] = de;
  C[idx] = cval;
}

__kernel void srad2(__global float* J, __global const float* dN,
                    __global const float* dS, __global const float* dW,
                    __global const float* dE, __global const float* C,
                    int rows, int cols, float lambda) {
  int idx = get_global_id(0);
  if (idx >= rows * cols) return;
  int r = idx / cols;
  int c = idx % cols;
  float cN = C[idx];
  float cS = (r < rows - 1) ? C[idx + cols] : C[idx];
  float cW = C[idx];
  float cE = (c < cols - 1) ? C[idx + 1] : C[idx];
  float d = cN * dN[idx] + cS * dS[idx] + cW * dW[idx] + cE * dE[idx];
  J[idx] = J[idx] + 0.25f * lambda * d;
}
)";

struct HostStats {
  float q0sqr;
};

HostStats ComputeStats(const std::vector<float>& image) {
  double sum = 0.0, sum2 = 0.0;
  for (float v : image) {
    sum += v;
    sum2 += static_cast<double>(v) * v;
  }
  const double mean = sum / static_cast<double>(image.size());
  const double var =
      sum2 / static_cast<double>(image.size()) - mean * mean;
  HostStats s;
  s.q0sqr = static_cast<float>(var / (mean * mean));
  return s;
}

}  // namespace

ava::Status RunSrad(const ava_gen_vcl::VclApi& api,
                    const WorkloadOptions& options) {
  const int rows = 128 * options.scale;
  const int cols = 128;
  const int iterations = 12;
  const float lambda = 0.5f;
  const std::size_t cells = static_cast<std::size_t>(rows) * cols;
  ava::Rng rng(options.seed);
  std::vector<float> image(cells);
  for (auto& v : image) {
    v = std::exp(rng.NextFloat(0.0f, 1.0f));  // positive speckled image
  }

  AVA_ASSIGN_OR_RETURN(VclSession s, VclSession::Open(api));
  AVA_ASSIGN_OR_RETURN(vcl_program program, s.BuildProgram(kSource));
  vcl_int err = VCL_SUCCESS;
  vcl_kernel k1 = api.vclCreateKernel(program, "srad1", &err);
  vcl_kernel k2 = api.vclCreateKernel(program, "srad2", &err);
  if (err != VCL_SUCCESS) {
    return ava::Internal("kernel creation failed");
  }
  AVA_ASSIGN_OR_RETURN(vcl_mem d_j, s.MakeBuffer(cells * 4, image.data()));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_dn, s.MakeBuffer(cells * 4));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_ds, s.MakeBuffer(cells * 4));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_dw, s.MakeBuffer(cells * 4));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_de, s.MakeBuffer(cells * 4));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_c, s.MakeBuffer(cells * 4));

  api.vclSetKernelArgBuffer(k1, 0, d_j);
  api.vclSetKernelArgBuffer(k1, 1, d_dn);
  api.vclSetKernelArgBuffer(k1, 2, d_ds);
  api.vclSetKernelArgBuffer(k1, 3, d_dw);
  api.vclSetKernelArgBuffer(k1, 4, d_de);
  api.vclSetKernelArgBuffer(k1, 5, d_c);
  api.vclSetKernelArgScalar(k1, 6, sizeof(int), &rows);
  api.vclSetKernelArgScalar(k1, 7, sizeof(int), &cols);
  api.vclSetKernelArgBuffer(k2, 0, d_j);
  api.vclSetKernelArgBuffer(k2, 1, d_dn);
  api.vclSetKernelArgBuffer(k2, 2, d_ds);
  api.vclSetKernelArgBuffer(k2, 3, d_dw);
  api.vclSetKernelArgBuffer(k2, 4, d_de);
  api.vclSetKernelArgBuffer(k2, 5, d_c);
  api.vclSetKernelArgScalar(k2, 6, sizeof(int), &rows);
  api.vclSetKernelArgScalar(k2, 7, sizeof(int), &cols);
  api.vclSetKernelArgScalar(k2, 8, sizeof(float), &lambda);

  std::vector<float> scratch(cells, 0.0f);
  for (int it = 0; it < iterations; ++it) {
    // Host-side statistics over the current image (full readback).
    AVA_RETURN_IF_ERROR(s.Read(d_j, scratch.data(), cells * 4));
    const HostStats stats = ComputeStats(scratch);
    api.vclSetKernelArgScalar(k1, 8, sizeof(float), &stats.q0sqr);
    AVA_RETURN_IF_ERROR(s.Launch1D(k1, cells));
    AVA_RETURN_IF_ERROR(s.Launch1D(k2, cells));
  }
  std::vector<float> got(cells, 0.0f);
  AVA_RETURN_IF_ERROR(s.Read(d_j, got.data(), cells * 4));

  if (!options.validate) {
    return ava::OkStatus();
  }
  // CPU reference mirroring the kernel math exactly.
  std::vector<float> J = image, dn(cells), ds(cells), dw(cells), de(cells),
                     C(cells);
  for (int it = 0; it < iterations; ++it) {
    const HostStats stats = ComputeStats(J);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        const std::size_t idx = static_cast<std::size_t>(r) * cols + c;
        const float Jc = J[idx];
        const float vn = (r > 0 ? J[idx - cols] : Jc) - Jc;
        const float vs = (r < rows - 1 ? J[idx + cols] : Jc) - Jc;
        const float vw = (c > 0 ? J[idx - 1] : Jc) - Jc;
        const float ve = (c < cols - 1 ? J[idx + 1] : Jc) - Jc;
        const float g2 = (vn * vn + vs * vs + vw * vw + ve * ve) / (Jc * Jc);
        const float l = (vn + vs + vw + ve) / Jc;
        const float num = 0.5f * g2 - (1.0f / 16.0f) * l * l;
        float den = 1.0f + 0.25f * l;
        const float qsqr = num / (den * den);
        den = (qsqr - stats.q0sqr) / (stats.q0sqr * (1.0f + stats.q0sqr));
        float cval = 1.0f / (1.0f + den);
        cval = std::min(1.0f, std::max(0.0f, cval));
        dn[idx] = vn;
        ds[idx] = vs;
        dw[idx] = vw;
        de[idx] = ve;
        C[idx] = cval;
      }
    }
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        const std::size_t idx = static_cast<std::size_t>(r) * cols + c;
        const float cN = C[idx];
        const float cS = r < rows - 1 ? C[idx + cols] : C[idx];
        const float cW = C[idx];
        const float cE = c < cols - 1 ? C[idx + 1] : C[idx];
        const float d =
            cN * dn[idx] + cS * ds[idx] + cW * dw[idx] + cE * de[idx];
        J[idx] = J[idx] + 0.25f * lambda * d;
      }
    }
  }
  return CheckClose(got, J, 5e-3f, "srad image");
}

}  // namespace workloads
