// nn — Rodinia-style nearest neighbor: one large distance kernel over the
// record set, then a host-side top-k over the read-back distances. Mix:
// few calls, large data movement — the transfer-bandwidth-sensitive point
// of Figure 5.
#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/workloads/vcl_workloads.h"

namespace workloads {
namespace {

constexpr const char* kSource = R"(
__kernel void euclid(__global const float* lat, __global const float* lng,
                     __global float* dist, int n, float target_lat,
                     float target_lng) {
  int i = get_global_id(0);
  if (i >= n) return;
  float dx = lat[i] - target_lat;
  float dy = lng[i] - target_lng;
  dist[i] = sqrt(dx * dx + dy * dy);
}
)";

}  // namespace

ava::Status RunNn(const ava_gen_vcl::VclApi& api,
                  const WorkloadOptions& options) {
  const int n = 400000 * options.scale;
  const int k = 10;
  const float target_lat = 30.0f, target_lng = -98.0f;
  ava::Rng rng(options.seed);
  std::vector<float> lat(static_cast<std::size_t>(n)),
      lng(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    lat[static_cast<std::size_t>(i)] = rng.NextFloat(-90.0f, 90.0f);
    lng[static_cast<std::size_t>(i)] = rng.NextFloat(-180.0f, 180.0f);
  }

  AVA_ASSIGN_OR_RETURN(VclSession s, VclSession::Open(api));
  AVA_ASSIGN_OR_RETURN(vcl_kernel euclid, s.BuildKernel(kSource, "euclid"));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_lat,
                       s.MakeBuffer(lat.size() * 4, lat.data()));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_lng,
                       s.MakeBuffer(lng.size() * 4, lng.data()));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_dist, s.MakeBuffer(lat.size() * 4));

  api.vclSetKernelArgBuffer(euclid, 0, d_lat);
  api.vclSetKernelArgBuffer(euclid, 1, d_lng);
  api.vclSetKernelArgBuffer(euclid, 2, d_dist);
  api.vclSetKernelArgScalar(euclid, 3, sizeof(int), &n);
  api.vclSetKernelArgScalar(euclid, 4, sizeof(float), &target_lat);
  api.vclSetKernelArgScalar(euclid, 5, sizeof(float), &target_lng);
  AVA_RETURN_IF_ERROR(s.Launch1D(euclid, static_cast<std::size_t>(n)));

  std::vector<float> dist(static_cast<std::size_t>(n), 0.0f);
  AVA_RETURN_IF_ERROR(s.Read(d_dist, dist.data(), dist.size() * 4));

  // Host-side top-k (indices of the k smallest distances).
  std::vector<int> idx(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    idx[static_cast<std::size_t>(i)] = i;
  }
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](int a, int b) {
                      return dist[static_cast<std::size_t>(a)] <
                             dist[static_cast<std::size_t>(b)];
                    });

  if (!options.validate) {
    return ava::OkStatus();
  }
  // Reference: recompute distances on the CPU and verify the winner set.
  auto ref_dist = [&](int i) {
    const float dx = lat[static_cast<std::size_t>(i)] - target_lat;
    const float dy = lng[static_cast<std::size_t>(i)] - target_lng;
    return std::sqrt(dx * dx + dy * dy);
  };
  for (int i = 0; i < n; i += 173) {
    const float want = ref_dist(i);
    if (std::fabs(dist[static_cast<std::size_t>(i)] - want) > 1e-3f) {
      return ava::Internal("nn distance mismatch at " + std::to_string(i));
    }
  }
  // The best candidate must truly be the global minimum.
  float best = ref_dist(idx[0]);
  for (int i = 0; i < n; ++i) {
    if (ref_dist(i) < best - 1e-5f) {
      return ava::Internal("nn top-1 is not the global minimum");
    }
  }
  return ava::OkStatus();
}

}  // namespace workloads
