// gaussian — Rodinia-style Gaussian elimination: two tiny kernels per pivot
// row, so hundreds of small launches dominate. This is the worst case for
// API-remoting overhead in Figure 5.
#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/workloads/vcl_workloads.h"

namespace workloads {
namespace {

constexpr const char* kSource = R"(
__kernel void fan1(__global const float* a, __global float* m, int n, int t) {
  int i = get_global_id(0);
  if (i >= n - 1 - t) return;
  m[(t + 1 + i) * n + t] = a[(t + 1 + i) * n + t] / a[t * n + t];
}

__kernel void fan2(__global float* a, __global float* b,
                   __global const float* m, int n, int t) {
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  if (gx >= n - 1 - t) return;
  if (gy >= n - t) return;
  int row = t + 1 + gx;
  int col = t + gy;
  a[row * n + col] = a[row * n + col] - m[row * n + t] * a[t * n + col];
  if (gy == 0) {
    b[row] = b[row] - m[row * n + t] * b[t];
  }
}
)";

}  // namespace

ava::Status RunGaussian(const ava_gen_vcl::VclApi& api,
                        const WorkloadOptions& options) {
  const int n = 128 * options.scale;
  ava::Rng rng(options.seed);
  // Diagonally dominant system for numeric stability.
  std::vector<float> a(static_cast<std::size_t>(n) * n);
  std::vector<float> b(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    float row_sum = 0.0f;
    for (int j = 0; j < n; ++j) {
      float v = rng.NextFloat(-1.0f, 1.0f);
      a[static_cast<std::size_t>(i) * n + j] = v;
      row_sum += std::fabs(v);
    }
    a[static_cast<std::size_t>(i) * n + i] = row_sum + 1.0f;
    b[static_cast<std::size_t>(i)] = rng.NextFloat(-10.0f, 10.0f);
  }
  const std::vector<float> a0 = a;
  const std::vector<float> b0 = b;

  AVA_ASSIGN_OR_RETURN(VclSession s, VclSession::Open(api));
  AVA_ASSIGN_OR_RETURN(vcl_program program, s.BuildProgram(kSource));
  vcl_int err = VCL_SUCCESS;
  vcl_kernel fan1 = api.vclCreateKernel(program, "fan1", &err);
  vcl_kernel fan2 = api.vclCreateKernel(program, "fan2", &err);
  if (err != VCL_SUCCESS) {
    return ava::Internal("kernel creation failed");
  }

  AVA_ASSIGN_OR_RETURN(vcl_mem d_a, s.MakeBuffer(a.size() * 4, a.data()));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_b, s.MakeBuffer(b.size() * 4, b.data()));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_m, s.MakeBuffer(a.size() * 4));

  api.vclSetKernelArgBuffer(fan1, 0, d_a);
  api.vclSetKernelArgBuffer(fan1, 1, d_m);
  api.vclSetKernelArgScalar(fan1, 2, sizeof(int), &n);
  api.vclSetKernelArgBuffer(fan2, 0, d_a);
  api.vclSetKernelArgBuffer(fan2, 1, d_b);
  api.vclSetKernelArgBuffer(fan2, 2, d_m);
  api.vclSetKernelArgScalar(fan2, 3, sizeof(int), &n);

  for (int t = 0; t < n - 1; ++t) {
    api.vclSetKernelArgScalar(fan1, 3, sizeof(int), &t);
    api.vclSetKernelArgScalar(fan2, 4, sizeof(int), &t);
    AVA_RETURN_IF_ERROR(s.Launch1D(fan1, static_cast<std::size_t>(n)));
    AVA_RETURN_IF_ERROR(
        s.Launch2D(fan2, static_cast<std::size_t>(n),
                   static_cast<std::size_t>(n)));
  }
  AVA_RETURN_IF_ERROR(s.Read(d_a, a.data(), a.size() * 4));
  AVA_RETURN_IF_ERROR(s.Read(d_b, b.data(), b.size() * 4));

  // Back-substitution on the host.
  std::vector<float> x(static_cast<std::size_t>(n), 0.0f);
  for (int i = n - 1; i >= 0; --i) {
    float acc = b[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < n; ++j) {
      acc -= a[static_cast<std::size_t>(i) * n + j] *
             x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] =
        acc / a[static_cast<std::size_t>(i) * n + i];
  }
  if (!options.validate) {
    return ava::OkStatus();
  }
  // Residual check against the original system: ||A0 x - b0|| small.
  for (int i = 0; i < n; ++i) {
    float acc = 0.0f;
    for (int j = 0; j < n; ++j) {
      acc += a0[static_cast<std::size_t>(i) * n + j] *
             x[static_cast<std::size_t>(j)];
    }
    const float want = b0[static_cast<std::size_t>(i)];
    if (std::fabs(acc - want) > 1e-2f * std::max(1.0f, std::fabs(want))) {
      return ava::Internal("gaussian residual too large at row " +
                           std::to_string(i) + ": " + std::to_string(acc) +
                           " vs " + std::to_string(want));
    }
  }
  return ava::OkStatus();
}

}  // namespace workloads
