// hotspot — Rodinia-style thermal stencil: one medium 2D-grid kernel per
// time step over ping-pong temperature buffers. Compute-dominated with a
// moderate launch count.
#include <vector>

#include "src/common/rng.h"
#include "src/workloads/vcl_workloads.h"

namespace workloads {
namespace {

constexpr const char* kSource = R"(
__kernel void hotspot_step(__global const float* temp_in,
                           __global const float* power,
                           __global float* temp_out, int rows, int cols,
                           float cap, float rx, float ry, float rz,
                           float amb) {
  int idx = get_global_id(0);
  if (idx >= rows * cols) return;
  int r = idx / cols;
  int c = idx % cols;
  float t = temp_in[idx];
  float tn = (r > 0) ? temp_in[idx - cols] : t;
  float ts = (r < rows - 1) ? temp_in[idx + cols] : t;
  float tw = (c > 0) ? temp_in[idx - 1] : t;
  float te = (c < cols - 1) ? temp_in[idx + 1] : t;
  float delta = cap * (power[idx] + (tn + ts - 2.0f * t) * ry +
                       (te + tw - 2.0f * t) * rx + (amb - t) * rz);
  temp_out[idx] = t + delta;
}
)";

}  // namespace

ava::Status RunHotspot(const ava_gen_vcl::VclApi& api,
                       const WorkloadOptions& options) {
  const int rows = 192 * options.scale;
  const int cols = 192;
  const int steps = 30;
  const float cap = 0.5f, rx = 0.2f, ry = 0.2f, rz = 0.05f, amb = 80.0f;
  ava::Rng rng(options.seed);
  const std::size_t cells = static_cast<std::size_t>(rows) * cols;
  std::vector<float> temp(cells), power(cells);
  for (auto& v : temp) {
    v = rng.NextFloat(70.0f, 90.0f);
  }
  for (auto& v : power) {
    v = rng.NextFloat(0.0f, 0.5f);
  }

  AVA_ASSIGN_OR_RETURN(VclSession s, VclSession::Open(api));
  AVA_ASSIGN_OR_RETURN(vcl_kernel step, s.BuildKernel(kSource, "hotspot_step"));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_a, s.MakeBuffer(cells * 4, temp.data()));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_b, s.MakeBuffer(cells * 4));
  AVA_ASSIGN_OR_RETURN(vcl_mem d_p, s.MakeBuffer(cells * 4, power.data()));

  api.vclSetKernelArgBuffer(step, 1, d_p);
  api.vclSetKernelArgScalar(step, 3, sizeof(int), &rows);
  api.vclSetKernelArgScalar(step, 4, sizeof(int), &cols);
  api.vclSetKernelArgScalar(step, 5, sizeof(float), &cap);
  api.vclSetKernelArgScalar(step, 6, sizeof(float), &rx);
  api.vclSetKernelArgScalar(step, 7, sizeof(float), &ry);
  api.vclSetKernelArgScalar(step, 8, sizeof(float), &rz);
  api.vclSetKernelArgScalar(step, 9, sizeof(float), &amb);

  vcl_mem src = d_a, dst = d_b;
  for (int it = 0; it < steps; ++it) {
    api.vclSetKernelArgBuffer(step, 0, src);
    api.vclSetKernelArgBuffer(step, 2, dst);
    AVA_RETURN_IF_ERROR(s.Launch1D(step, cells));
    std::swap(src, dst);
  }
  std::vector<float> got(cells, 0.0f);
  AVA_RETURN_IF_ERROR(s.Read(src, got.data(), cells * 4));

  if (!options.validate) {
    return ava::OkStatus();
  }
  std::vector<float> cur = temp, nxt(cells, 0.0f);
  for (int it = 0; it < steps; ++it) {
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        const std::size_t idx = static_cast<std::size_t>(r) * cols + c;
        const float t = cur[idx];
        const float tn = r > 0 ? cur[idx - cols] : t;
        const float ts = r < rows - 1 ? cur[idx + cols] : t;
        const float tw = c > 0 ? cur[idx - 1] : t;
        const float te = c < cols - 1 ? cur[idx + 1] : t;
        nxt[idx] = t + cap * (power[idx] + (tn + ts - 2.0f * t) * ry +
                              (te + tw - 2.0f * t) * rx + (amb - t) * rz);
      }
    }
    std::swap(cur, nxt);
  }
  return CheckClose(got, cur, 1e-3f, "hotspot temperatures");
}

}  // namespace workloads
