// avactl: command-line client for the AvA live introspection plane.
//
//   avactl [-s SOCKET] metrics    Prometheus text snapshot of the registry
//   avactl [-s SOCKET] sessions   per-VM table (state, lanes, queues, cache,
//                                 swap-tier residency: dev/host/comp/disk)
//   avactl [-s SOCKET] account    per-VM accounting ledger + tier bytes
//   avactl [-s SOCKET] flight     flight-recorder dump of the live process
//   avactl [-s SOCKET] migrate    live-migration status (phase, rounds,
//                                 bytes shipped/deduped, last downtime)
//   avactl [-s SOCKET] ping       liveness probe
//   avactl flight <dump.bin>      decode a crash dump written by the
//                                 SIGSEGV/SIGABRT handler (no socket needed)
//
// The socket defaults to $AVA_ADMIN_SOCK — the same variable that makes the
// router/API server serve the channel, so `AVA_ADMIN_SOCK=/tmp/ava.sock
// avactl sessions` just works on both ends.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/obs/admin.h"
#include "src/obs/flight.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: avactl [-s SOCKET] metrics|sessions|account|flight|migrate|"
      "ping\n"
      "       avactl flight <dump.bin>\n"
      "SOCKET defaults to $AVA_ADMIN_SOCK.\n");
  return 2;
}

int DecodeDumpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "avactl: cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<std::uint8_t> data{std::istreambuf_iterator<char>(in),
                                 std::istreambuf_iterator<char>()};
  std::vector<ava::obs::FlightRecord> records;
  if (!ava::obs::ParseFlightDump(data, &records)) {
    std::fprintf(stderr, "avactl: %s is not a flight-recorder dump\n",
                 path.c_str());
    return 1;
  }
  std::fputs(ava::obs::RenderFlightRecords(records).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  if (const char* env = std::getenv("AVA_ADMIN_SOCK");
      env != nullptr && env[0] != '\0') {
    socket_path = env;
  }
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "-s") == 0 && arg + 1 < argc) {
      socket_path = argv[arg + 1];
      arg += 2;
    } else {
      return Usage();
    }
  }
  if (arg >= argc) {
    return Usage();
  }
  const std::string command = argv[arg++];
  if (command == "flight" && arg < argc) {
    return DecodeDumpFile(argv[arg]);
  }
  if (command != "metrics" && command != "sessions" && command != "account" &&
      command != "flight" && command != "migrate" && command != "ping") {
    return Usage();
  }
  if (socket_path.empty()) {
    std::fprintf(stderr,
                 "avactl: no admin socket (pass -s or set AVA_ADMIN_SOCK)\n");
    return 2;
  }
  auto reply = ava::obs::AdminQuery(socket_path, command);
  if (!reply.ok()) {
    std::fprintf(stderr, "avactl: %s\n", reply.status().ToString().c_str());
    return 1;
  }
  std::fputs(reply->c_str(), stdout);
  return 0;
}
