#include "src/common/hash64.h"

#include <chrono>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define AVA_HASH64_AVX2 1
#include <immintrin.h>
#else
#define AVA_HASH64_AVX2 0
#endif

namespace ava {
namespace {

constexpr std::uint64_t kP1 = 0x9E3779B185EBCA87ull;
constexpr std::uint64_t kP2 = 0xC2B2AE3D27D4EB4Full;
constexpr std::uint64_t kP3 = 0x165667B19E3779F9ull;
constexpr std::uint64_t kP4 = 0x85EBCA77C2B2AE63ull;
constexpr std::uint64_t kP5 = 0x27D4EB2F165667C5ull;

inline std::uint64_t Rotl(std::uint64_t v, int bits) {
  return (v << bits) | (v >> (64 - bits));
}

inline std::uint64_t Read64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint32_t Read32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t Round(std::uint64_t acc, std::uint64_t input) {
  return Rotl(acc + input * kP2, 31) * kP1;
}

// Stripe loop over [p, p + n) where n is a positive multiple of 32.
// Accumulators are read and written through `lanes[4]`.
void StripesScalar(const std::uint8_t* p, std::size_t n,
                   std::uint64_t lanes[4]) {
  std::uint64_t v1 = lanes[0], v2 = lanes[1], v3 = lanes[2], v4 = lanes[3];
  const std::uint8_t* end = p + n;
  do {
    v1 = Round(v1, Read64(p));
    v2 = Round(v2, Read64(p + 8));
    v3 = Round(v3, Read64(p + 16));
    v4 = Round(v4, Read64(p + 24));
    p += 32;
  } while (p != end);
  lanes[0] = v1;
  lanes[1] = v2;
  lanes[2] = v3;
  lanes[3] = v4;
}

#if AVA_HASH64_AVX2
// 64x64 -> low-64 multiply per lane. AVX2 has no vpmullq, so build it from
// 32x32 partial products: lo(a*b) = lo(a)*lo(b) + ((lo(a)*hi(b) +
// hi(a)*lo(b)) << 32).
__attribute__((target("avx2"))) inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lolo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                         _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i Rotl31(__m256i v) {
  return _mm256_or_si256(_mm256_slli_epi64(v, 31), _mm256_srli_epi64(v, 33));
}

__attribute__((target("avx2"))) void StripesAvx2(const std::uint8_t* p,
                                                 std::size_t n,
                                                 std::uint64_t lanes[4]) {
  const __m256i prime1 = _mm256_set1_epi64x(static_cast<long long>(kP1));
  const __m256i prime2 = _mm256_set1_epi64x(static_cast<long long>(kP2));
  __m256i acc =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lanes));
  const std::uint8_t* end = p + n;
  do {
    const __m256i input =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    acc = Mul64(Rotl31(_mm256_add_epi64(acc, Mul64(input, prime2))), prime1);
    p += 32;
  } while (p != end);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
}

bool DetectAvx2() { return __builtin_cpu_supports("avx2") != 0; }
#else
bool DetectAvx2() { return false; }
#endif

const bool kHaveAvx2 = DetectAvx2();

// The stripe loop only pays for the vector unit past a few stripes; below
// that the scalar lanes pipeline just as well without the dispatch.
constexpr std::size_t kSimdMinBytes = 512;

#if AVA_HASH64_AVX2
// AVX2 has no 64-bit vector multiply, so the vector stripe loop emulates
// it with three 32x32 products — whether that beats four superscalar
// 64-bit imul chains depends on the microarchitecture. Both paths produce
// identical digests, so the choice is pure throughput: measure once at
// first use and commit to the winner.
bool SimdProfitable() {
  static const bool profitable = [] {
    if (!kHaveAvx2) {
      return false;
    }
    constexpr std::size_t kProbeBytes = 32u << 10;
    static std::uint8_t probe[kProbeBytes];
    for (std::size_t i = 0; i < kProbeBytes; ++i) {
      probe[i] = static_cast<std::uint8_t>(i * 131);
    }
    std::uint64_t lanes[4];
    auto time_ns = [&](void (*stripes)(const std::uint8_t*, std::size_t,
                                       std::uint64_t[4])) {
      std::int64_t best = INT64_MAX;
      for (int rep = 0; rep < 5; ++rep) {
        lanes[0] = kP1 + kP2;
        lanes[1] = kP2;
        lanes[2] = 0;
        lanes[3] = 0 - kP1;
        const auto t0 = std::chrono::steady_clock::now();
        stripes(probe, kProbeBytes, lanes);
        const auto elapsed = std::chrono::duration_cast<
            std::chrono::nanoseconds>(std::chrono::steady_clock::now() - t0)
                                 .count();
        best = elapsed < best ? elapsed : best;
      }
      return best;
    };
    return time_ns(StripesAvx2) < time_ns(StripesScalar);
  }();
  return profitable;
}
#endif

std::uint64_t HashImpl(const void* data, std::size_t size, bool allow_simd) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  const std::size_t len = size;
  std::uint64_t h;

  if (len >= 32) {
    std::uint64_t lanes[4] = {kP1 + kP2, kP2, 0, 0 - kP1};
    const std::size_t striped = len & ~static_cast<std::size_t>(31);
#if AVA_HASH64_AVX2
    if (allow_simd && kHaveAvx2 && striped >= kSimdMinBytes &&
        SimdProfitable()) {
      StripesAvx2(p, striped, lanes);
    } else {
      StripesScalar(p, striped, lanes);
    }
#else
    (void)allow_simd;
    StripesScalar(p, striped, lanes);
#endif
    p += striped;
    h = Rotl(lanes[0], 1) + Rotl(lanes[1], 7) + Rotl(lanes[2], 12) +
        Rotl(lanes[3], 18);
    for (std::uint64_t lane : lanes) {
      h = (h ^ Round(0, lane)) * kP1 + kP4;
    }
  } else {
    h = kP5;
  }

  h += static_cast<std::uint64_t>(len);
  const std::uint8_t* end = static_cast<const std::uint8_t*>(data) + len;
  while (end - p >= 8) {
    h = Rotl(h ^ Round(0, Read64(p)), 27) * kP1 + kP4;
    p += 8;
  }
  if (end - p >= 4) {
    h = Rotl(h ^ (static_cast<std::uint64_t>(Read32(p)) * kP1), 23) * kP2 +
        kP3;
    p += 4;
  }
  while (p != end) {
    h = Rotl(h ^ (static_cast<std::uint64_t>(*p) * kP5), 11) * kP1;
    ++p;
  }

  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h;
}

}  // namespace

std::uint64_t Hash64(const void* data, std::size_t size) {
  return HashImpl(data, size, /*allow_simd=*/true);
}

std::uint64_t Hash64Scalar(const void* data, std::size_t size) {
  return HashImpl(data, size, /*allow_simd=*/false);
}

bool Hash64HasSimd() { return AVA_HASH64_AVX2 != 0 && kHaveAvx2; }

}  // namespace ava
