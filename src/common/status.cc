#include "src/common/status.h"

namespace ava {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kCacheMiss:
      return "CACHE_MISS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status OkStatus() { return Status(); }
Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status PermissionDenied(std::string message) {
  return Status(StatusCode::kPermissionDenied, std::move(message));
}
Status ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status Unavailable(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status DeadlineExceeded(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status Aborted(std::string message) {
  return Status(StatusCode::kAborted, std::move(message));
}
Status DataLoss(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status CacheMiss(std::string message) {
  return Status(StatusCode::kCacheMiss, std::move(message));
}

}  // namespace ava
