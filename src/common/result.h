// Result<T>: value-or-Status, the return type of fallible factories and
// lookups throughout AvA.
#ifndef AVA_SRC_COMMON_RESULT_H_
#define AVA_SRC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace ava {

template <typename T>
class Result {
 public:
  // Implicit from value and from error Status, so call sites can
  // `return value;` or `return InvalidArgument(...);`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Internal("Result constructed from OK status without value");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace ava

// Assigns the value of a Result expression to `lhs`, or propagates its error.
// Usage: AVA_ASSIGN_OR_RETURN(auto buf, MakeBuffer(n));
#define AVA_ASSIGN_OR_RETURN(lhs, expr)                   \
  AVA_ASSIGN_OR_RETURN_IMPL_(                             \
      AVA_RESULT_CONCAT_(ava_result_, __LINE__), lhs, expr)

#define AVA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define AVA_RESULT_CONCAT_(a, b) AVA_RESULT_CONCAT_IMPL_(a, b)
#define AVA_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // AVA_SRC_COMMON_RESULT_H_
