// Error-handling primitives used across all AvA modules.
//
// Modules communicate failure with Status (code + message) and Result<T>
// (Status or value). No exceptions cross module boundaries; constructors that
// can fail are replaced by factory functions returning Result<T>.
#ifndef AVA_SRC_COMMON_STATUS_H_
#define AVA_SRC_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ava {

// Canonical error space, loosely following absl::StatusCode. Wire-stable:
// values are serialized into reply command blocks.
enum class StatusCode : std::int32_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kPermissionDenied = 4,
  kResourceExhausted = 5,
  kFailedPrecondition = 6,
  kOutOfRange = 7,
  kUnimplemented = 8,
  kInternal = 9,
  kUnavailable = 10,
  kDeadlineExceeded = 11,
  kAborted = 12,
  kDataLoss = 13,
  // Transfer-cache miss: the server does not hold the bytes a kBulkCached
  // descriptor named. Returned before the API call executes, so the guest
  // may safely re-send the call with the payload inlined (even for
  // non-idempotent functions).
  kCacheMiss = 14,
};

// Human-readable name of a status code ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the OK path (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Factory helpers, e.g. InvalidArgument("bad size").
Status OkStatus();
Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status PermissionDenied(std::string message);
Status ResourceExhausted(std::string message);
Status FailedPrecondition(std::string message);
Status OutOfRange(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);
Status Unavailable(std::string message);
Status DeadlineExceeded(std::string message);
Status Aborted(std::string message);
Status DataLoss(std::string message);
Status CacheMiss(std::string message);

}  // namespace ava

// Propagates a non-OK Status from an expression, absl-style.
#define AVA_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::ava::Status ava_status_ = (expr);          \
    if (!ava_status_.ok()) return ava_status_;   \
  } while (0)

#endif  // AVA_SRC_COMMON_STATUS_H_
