// Clocks: wall time for measurements, and a monotonically accumulating
// virtual clock used by the simulated devices to charge deterministic
// per-command costs (so scheduling experiments are reproducible on any host).
#ifndef AVA_SRC_COMMON_VCLOCK_H_
#define AVA_SRC_COMMON_VCLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ava {

// Nanoseconds since an arbitrary epoch, monotonic.
inline std::int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Scoped wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(MonotonicNowNs()) {}
  void Reset() { start_ns_ = MonotonicNowNs(); }
  std::int64_t ElapsedNs() const { return MonotonicNowNs() - start_ns_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNs()) * 1e-9;
  }

 private:
  std::int64_t start_ns_;
};

// Thread-safe accumulator of virtual device time, in virtual nanoseconds.
// Devices advance it by the modeled cost of each executed command; the
// router reads it for accounting and fairness measurements.
class VirtualClock {
 public:
  void Advance(std::int64_t delta_ns) {
    now_ns_.fetch_add(delta_ns, std::memory_order_relaxed);
  }
  std::int64_t NowNs() const {
    return now_ns_.load(std::memory_order_relaxed);
  }
  void Reset() { now_ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> now_ns_{0};
};

}  // namespace ava

#endif  // AVA_SRC_COMMON_VCLOCK_H_
