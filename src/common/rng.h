// Deterministic pseudo-random generation for tests, workloads, and synthetic
// data. SplitMix64 core: tiny, fast, and identical across platforms, so every
// experiment is reproducible from its seed.
#ifndef AVA_SRC_COMMON_RNG_H_
#define AVA_SRC_COMMON_RNG_H_

#include <cstdint>

namespace ava {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint32_t NextU32() { return static_cast<std::uint32_t>(NextU64() >> 32); }

  // Uniform in [0, bound). bound == 0 yields 0.
  std::uint64_t NextBelow(std::uint64_t bound) {
    return bound == 0 ? 0 : NextU64() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) {
      return lo;
    }
    return lo + static_cast<std::int64_t>(
                    NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform float in [lo, hi).
  float NextFloat(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

 private:
  std::uint64_t state_;
};

}  // namespace ava

#endif  // AVA_SRC_COMMON_RNG_H_
