// Minimal leveled logging. Thread-safe line-at-a-time output to stderr.
//
//   AVA_LOG(INFO) << "router accepted vm " << vm_id;
//   AVA_LOG(ERROR) << status;
//   AVA_LOG_EVERY_N(WARNING, 64) << "malformed message";  // 1st, 65th, ...
//
// The global level defaults to kWarning so tests and benchmarks stay quiet;
// set AVA_LOG_LEVEL=debug|info|warning|error in the environment or call
// SetLogLevel().
#ifndef AVA_SRC_COMMON_LOG_H_
#define AVA_SRC_COMMON_LOG_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string_view>

namespace ava {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace log_internal {

// Accumulates one log line and emits it (with level tag, timestamp, and
// source location) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Rate-limit predicate behind AVA_LOG_EVERY_N: true on the 1st call and
// every nth after (occurrences 0, n, 2n, ...). n <= 1 always logs. The
// counter is per call site and advances on every invocation that passes the
// severity check, from any thread.
inline bool ShouldLogEveryN(std::atomic<std::uint64_t>* counter,
                            std::uint64_t n) {
  const std::uint64_t occurrence =
      counter->fetch_add(1, std::memory_order_relaxed);
  return n <= 1 || occurrence % n == 0;
}

}  // namespace log_internal
}  // namespace ava

#define AVA_LOG_LEVEL_DEBUG ::ava::LogLevel::kDebug
#define AVA_LOG_LEVEL_INFO ::ava::LogLevel::kInfo
#define AVA_LOG_LEVEL_WARNING ::ava::LogLevel::kWarning
#define AVA_LOG_LEVEL_ERROR ::ava::LogLevel::kError

#define AVA_LOG(severity)                                      \
  if (AVA_LOG_LEVEL_##severity < ::ava::GetLogLevel()) {       \
  } else                                                       \
    ::ava::log_internal::LogMessage(AVA_LOG_LEVEL_##severity,  \
                                    __FILE__, __LINE__)        \
        .stream()

// Rate-limited logging for flood-prone paths (e.g. router RX rejecting a
// stream of malformed messages under fault load): emits the 1st occurrence
// and every nth after it, counted per call site.
#define AVA_LOG_EVERY_N(severity, n)                                         \
  if (AVA_LOG_LEVEL_##severity < ::ava::GetLogLevel()) {                     \
  } else if (static ::std::atomic<::std::uint64_t> ava_log_every_n_count{0}; \
             !::ava::log_internal::ShouldLogEveryN(&ava_log_every_n_count,   \
                                                   (n))) {                   \
  } else                                                                     \
    ::ava::log_internal::LogMessage(AVA_LOG_LEVEL_##severity,                \
                                    __FILE__, __LINE__)                      \
        .stream()

#endif  // AVA_SRC_COMMON_LOG_H_
