// Minimal leveled logging. Thread-safe line-at-a-time output to stderr.
//
//   AVA_LOG(INFO) << "router accepted vm " << vm_id;
//   AVA_LOG(ERROR) << status;
//
// The global level defaults to kWarning so tests and benchmarks stay quiet;
// set AVA_LOG_LEVEL=debug|info|warning|error in the environment or call
// SetLogLevel().
#ifndef AVA_SRC_COMMON_LOG_H_
#define AVA_SRC_COMMON_LOG_H_

#include <sstream>
#include <string_view>

namespace ava {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace log_internal {

// Accumulates one log line and emits it (with level tag, timestamp, and
// source location) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace ava

#define AVA_LOG_LEVEL_DEBUG ::ava::LogLevel::kDebug
#define AVA_LOG_LEVEL_INFO ::ava::LogLevel::kInfo
#define AVA_LOG_LEVEL_WARNING ::ava::LogLevel::kWarning
#define AVA_LOG_LEVEL_ERROR ::ava::LogLevel::kError

#define AVA_LOG(severity)                                      \
  if (AVA_LOG_LEVEL_##severity < ::ava::GetLogLevel()) {       \
  } else                                                       \
    ::ava::log_internal::LogMessage(AVA_LOG_LEVEL_##severity,  \
                                    __FILE__, __LINE__)        \
        .stream()

#endif  // AVA_SRC_COMMON_LOG_H_
