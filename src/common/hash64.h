// Fast 64-bit content fingerprint for the bulk-transfer cache.
//
// xxHash64-style construction: four independent 64-bit accumulator lanes
// over 32-byte stripes, merged and avalanched. The stripe loop has a
// runtime-dispatched AVX2 variant (same output bit-for-bit; the 64x64
// multiplies are decomposed onto vpmuludq) used for large buffers on CPUs
// that have it, since eligible transfer-cache payloads start at tens of
// kilobytes. Not cryptographic: digests gate a cache lookup whose contents
// were verified against the same function at install time, so a collision
// can at worst serve bytes that hash identically — an accepted risk class
// for a 64-bit content cache, not a security boundary.
#ifndef AVA_SRC_COMMON_HASH64_H_
#define AVA_SRC_COMMON_HASH64_H_

#include <cstddef>
#include <cstdint>

namespace ava {

// Digest of `size` bytes at `data`. Deterministic across processes and
// instruction-set variants (guest hashes at send, server re-hashes at
// install; the two must agree byte-for-byte).
std::uint64_t Hash64(const void* data, std::size_t size);

// True when the AVX2 stripe loop is compiled in and the CPU supports it.
// Exposed so tests can assert scalar/SIMD agreement on hardware that has
// both paths.
bool Hash64HasSimd();

// Scalar-only variant, for differential testing against the dispatched
// path. Same output as Hash64 always.
std::uint64_t Hash64Scalar(const void* data, std::size_t size);

}  // namespace ava

#endif  // AVA_SRC_COMMON_HASH64_H_
