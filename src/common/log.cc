#include "src/common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>
#include <string>

namespace ava {
namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("AVA_LOG_LEVEL");
  if (env == nullptr) {
    return LogLevel::kWarning;
  }
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "none") == 0) return LogLevel::kNone;
  return LogLevel::kWarning;
}

std::atomic<int> g_level{static_cast<int>(LevelFromEnv())};
std::mutex g_output_mutex;

char LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kNone:
      return '?';
  }
  return '?';
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  std::string body = stream_.str();
  std::lock_guard<std::mutex> lock(g_output_mutex);
  std::fprintf(stderr, "%c %02d:%02d:%02d.%03ld %s:%d] %s\n", LevelTag(level_),
               tm.tm_hour, tm.tm_min, tm.tm_sec, ts.tv_nsec / 1000000,
               Basename(file_), line_, body.c_str());
}

}  // namespace log_internal
}  // namespace ava
