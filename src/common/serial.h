// Bounds-checked little-endian wire serialization.
//
// ByteWriter appends into a growable byte vector; ByteReader consumes a
// read-only view and turns any out-of-bounds access into a sticky error
// Status (never UB). All multi-byte integers are little-endian on the wire.
#ifndef AVA_SRC_COMMON_SERIAL_H_
#define AVA_SRC_COMMON_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "src/common/status.h"

namespace ava {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes initial) : buf_(std::move(initial)) {}

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Put requires a trivially copyable type");
    const std::size_t offset = buf_.size();
    buf_.resize(offset + sizeof(T));
    std::memcpy(buf_.data() + offset, &value, sizeof(T));
  }

  void PutU8(std::uint8_t v) { Put(v); }
  void PutU16(std::uint16_t v) { Put(v); }
  void PutU32(std::uint32_t v) { Put(v); }
  void PutU64(std::uint64_t v) { Put(v); }
  void PutI32(std::int32_t v) { Put(v); }
  void PutI64(std::int64_t v) { Put(v); }
  void PutF32(float v) { Put(v); }
  void PutF64(double v) { Put(v); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  // Length-prefixed (u64) byte blob.
  void PutBlob(const void* data, std::size_t size) {
    PutU64(static_cast<std::uint64_t>(size));
    PutRaw(data, size);
  }
  void PutBlob(std::span<const std::uint8_t> data) {
    PutBlob(data.data(), data.size());
  }

  // Length-prefixed UTF-8 string (no NUL terminator on the wire).
  void PutString(std::string_view s) { PutBlob(s.data(), s.size()); }

  // Raw bytes without a length prefix.
  void PutRaw(const void* data, std::size_t size) {
    if (size == 0) {
      return;
    }
    const std::size_t offset = buf_.size();
    buf_.resize(offset + size);
    std::memcpy(buf_.data() + offset, data, size);
  }

  // Overwrites sizeof(T) bytes at `offset` (used for back-patching lengths).
  template <typename T>
  void PatchAt(std::size_t offset, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (offset + sizeof(T) <= buf_.size()) {
      std::memcpy(buf_.data() + offset, &value, sizeof(T));
    }
  }

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const& { return buf_; }
  Bytes&& TakeBytes() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  ByteReader(const void* data, std::size_t size)
      : data_(static_cast<const std::uint8_t*>(data)), size_(size) {}
  explicit ByteReader(std::span<const std::uint8_t> data)
      : ByteReader(data.data(), data.size()) {}
  explicit ByteReader(const Bytes& data) : ByteReader(data.data(), data.size()) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Get requires a trivially copyable type");
    T value{};
    if (!CheckAvailable(sizeof(T))) {
      return value;
    }
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::uint8_t GetU8() { return Get<std::uint8_t>(); }
  std::uint16_t GetU16() { return Get<std::uint16_t>(); }
  std::uint32_t GetU32() { return Get<std::uint32_t>(); }
  std::uint64_t GetU64() { return Get<std::uint64_t>(); }
  std::int32_t GetI32() { return Get<std::int32_t>(); }
  std::int64_t GetI64() { return Get<std::int64_t>(); }
  float GetF32() { return Get<float>(); }
  double GetF64() { return Get<double>(); }
  bool GetBool() { return GetU8() != 0; }

  // Reads a length-prefixed blob as a view into the underlying buffer.
  // The view is valid only while the backing storage is alive.
  std::span<const std::uint8_t> GetBlobView() {
    const std::uint64_t len = GetU64();
    if (!CheckAvailable(len)) {
      return {};
    }
    std::span<const std::uint8_t> view(data_ + pos_,
                                       static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return view;
  }

  Bytes GetBlob() {
    auto view = GetBlobView();
    return Bytes(view.begin(), view.end());
  }

  std::string GetString() {
    auto view = GetBlobView();
    return std::string(reinterpret_cast<const char*>(view.data()), view.size());
  }

  // Copies a length-prefixed blob into `out` (up to `out_size` bytes).
  // Fails the reader if the encoded length exceeds out_size.
  void GetBlobInto(void* out, std::size_t out_size) {
    auto view = GetBlobView();
    if (view.size() > out_size) {
      failed_ = true;
      return;
    }
    if (!view.empty() && out != nullptr) {
      std::memcpy(out, view.data(), view.size());
    }
  }

  void Skip(std::size_t n) {
    if (CheckAvailable(n)) {
      pos_ += n;
    }
  }

  std::size_t remaining() const { return failed_ ? 0 : size_ - pos_; }
  std::size_t position() const { return pos_; }
  bool failed() const { return failed_; }

  Status status() const {
    return failed_ ? DataLoss("wire payload truncated or malformed")
                   : OkStatus();
  }

 private:
  bool CheckAvailable(std::uint64_t n) {
    if (failed_ || n > size_ - pos_) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace ava

#endif  // AVA_SRC_COMMON_SERIAL_H_
