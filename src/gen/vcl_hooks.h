// Buffer hooks for the VCL API: how the AvA runtime moves a vcl_mem's bytes
// using only the public API (synthesized clEnqueueReadBuffer-style calls, as
// §4.3 describes for migration and swapping).
#ifndef AVA_SRC_GEN_VCL_HOOKS_H_
#define AVA_SRC_GEN_VCL_HOOKS_H_

#include "src/server/buffer_hooks.h"

namespace ava_gen_vcl {

// The returned hooks own an internal command-queue cache; destroy them (and
// everything capturing them) before resetting the silo.
ava::BufferHooks MakeVclBufferHooks();

}  // namespace ava_gen_vcl

#endif  // AVA_SRC_GEN_VCL_HOOKS_H_
