#include "src/gen/vcl_hooks.h"

#include <map>
#include <memory>
#include <mutex>

#include "src/common/log.h"
#include "vcl_gen.h"

namespace ava_gen_vcl {
namespace {

// Internal command queues used to synthesize data movement for buffers whose
// guests are suspended or unaware (swap/migration). One queue per context.
class QueueCache {
 public:
  ~QueueCache() {
    for (auto& [context, queue] : queues_) {
      vclReleaseCommandQueue(queue);
    }
  }

  vcl_command_queue GetQueue(vcl_context context) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queues_.find(context);
    if (it != queues_.end()) {
      return it->second;
    }
    vcl_device_id device = nullptr;
    vcl_platform_id platform = nullptr;
    if (vclGetPlatformIDs(1, &platform, nullptr) != VCL_SUCCESS ||
        vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_ALL, 1, &device, nullptr) !=
            VCL_SUCCESS) {
      return nullptr;
    }
    vcl_int err = VCL_SUCCESS;
    vcl_command_queue queue = vclCreateCommandQueue(context, device, 0, &err);
    if (err != VCL_SUCCESS) {
      return nullptr;
    }
    queues_[context] = queue;
    return queue;
  }

 private:
  std::mutex mutex_;
  std::map<vcl_context, vcl_command_queue> queues_;
};

vcl_context ContextOf(ava::ObjectRegistry* registry,
                      const ava::ObjectRegistry::Entry& entry) {
  auto ctx = registry->Translate(kTag_vcl_context, entry.parent);
  if (!ctx.ok()) {
    return nullptr;
  }
  return reinterpret_cast<vcl_context>(*ctx);
}

}  // namespace

ava::BufferHooks MakeVclBufferHooks() {
  auto cache = std::make_shared<QueueCache>();
  ava::BufferHooks hooks;
  hooks.buffer_type_tag = kTag_vcl_mem;

  hooks.read_back = [cache](ava::ObjectRegistry* registry, ava::WireHandle id,
                            ava::ObjectRegistry::Entry& entry,
                            ava::Bytes* out) -> ava::Status {
    vcl_context context = ContextOf(registry, entry);
    if (context == nullptr) {
      return ava::FailedPrecondition("buffer has no live parent context");
    }
    vcl_command_queue queue = cache->GetQueue(context);
    if (queue == nullptr) {
      return ava::Internal("cannot create internal queue for read-back");
    }
    out->resize(entry.size);
    vcl_int rc = vclEnqueueReadBuffer(
        queue, reinterpret_cast<vcl_mem>(entry.real), VCL_TRUE, 0, entry.size,
        out->data(), 0, nullptr, nullptr);
    if (rc != VCL_SUCCESS) {
      return ava::Internal("read-back failed with code " + std::to_string(rc));
    }
    return ava::OkStatus();
  };

  hooks.free_buffer = [](ava::ObjectRegistry* registry,
                         ava::ObjectRegistry::Entry& entry) {
    if (entry.real != nullptr) {
      vclReleaseMemObject(reinterpret_cast<vcl_mem>(entry.real));
    }
  };

  hooks.realloc_buffer = [](ava::ObjectRegistry* registry, ava::WireHandle id,
                            ava::ObjectRegistry::Entry& entry,
                            const ava::Bytes& contents) -> void* {
    vcl_context context = ContextOf(registry, entry);
    if (context == nullptr) {
      return nullptr;
    }
    vcl_int err = VCL_SUCCESS;
    vcl_mem mem = vclCreateBuffer(context,
                                  VCL_MEM_READ_WRITE | VCL_MEM_COPY_HOST_PTR,
                                  entry.size, contents.data(), &err);
    return err == VCL_SUCCESS ? reinterpret_cast<void*>(mem) : nullptr;
  };

  hooks.write_back = [cache](ava::ObjectRegistry* registry, ava::WireHandle id,
                             ava::ObjectRegistry::Entry& entry,
                             const ava::Bytes& contents) -> ava::Status {
    vcl_context context = ContextOf(registry, entry);
    if (context == nullptr) {
      return ava::FailedPrecondition("buffer has no live parent context");
    }
    vcl_command_queue queue = cache->GetQueue(context);
    if (queue == nullptr) {
      return ava::Internal("cannot create internal queue for write-back");
    }
    if (entry.swapped) {
      // Swapped-out buffers restore by replacing the authoritative copy.
      // Whatever tier held the stale bytes (compressed page, spill extent)
      // is superseded; the swap manager's sweep reclaims any disk extent.
      ava::StoreSwappedHostBytes(entry, contents);
      return ava::OkStatus();
    }
    vcl_int rc = vclEnqueueWriteBuffer(
        queue, reinterpret_cast<vcl_mem>(entry.real), VCL_TRUE, 0,
        contents.size(), contents.data(), 0, nullptr, nullptr);
    if (rc != VCL_SUCCESS) {
      return ava::Internal("write-back failed with code " +
                           std::to_string(rc));
    }
    return ava::OkStatus();
  };

  return hooks;
}

}  // namespace ava_gen_vcl
