// Implementation of the 39 public VCL entry points (see vcl.h). Each entry
// validates its handles against the silo's live-handle registry, performs
// the operation against the object model, and routes device work through the
// device engine.
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/vcl/compiler/codegen.h"
#include "src/vcl/device.h"
#include "src/vcl/object_model.h"
#include "src/vcl/silo.h"
#include "src/vcl/vcl.h"

namespace {

using vcl::DefaultSilo;
using vcl::HandleKind;

// Copies an info value into the caller's buffer with OpenCL's size protocol.
vcl_int ReturnInfo(const void* src, std::size_t src_size,
                   std::size_t param_value_size, void* param_value,
                   std::size_t* param_value_size_ret) {
  if (param_value != nullptr) {
    if (param_value_size < src_size) {
      return VCL_INVALID_VALUE;
    }
    std::memcpy(param_value, src, src_size);
  }
  if (param_value_size_ret != nullptr) {
    *param_value_size_ret = src_size;
  }
  return VCL_SUCCESS;
}

vcl_int ReturnInfoString(const std::string& s, std::size_t param_value_size,
                         void* param_value, std::size_t* param_value_size_ret) {
  return ReturnInfo(s.c_str(), s.size() + 1, param_value_size, param_value,
                    param_value_size_ret);
}

template <typename T>
vcl_int ReturnInfoScalar(T v, std::size_t param_value_size, void* param_value,
                         std::size_t* param_value_size_ret) {
  return ReturnInfo(&v, sizeof(T), param_value_size, param_value,
                    param_value_size_ret);
}

bool ValidQueue(vcl_command_queue q) {
  return DefaultSilo().ValidateHandle(HandleKind::kQueue, q);
}
bool ValidMem(vcl_mem m) {
  return DefaultSilo().ValidateHandle(HandleKind::kMem, m);
}
bool ValidEvent(vcl_event e) {
  return DefaultSilo().ValidateHandle(HandleKind::kEvent, e);
}
bool ValidKernel(vcl_kernel k) {
  return DefaultSilo().ValidateHandle(HandleKind::kKernel, k);
}

void SetErr(vcl_int* errcode_ret, vcl_int code) {
  if (errcode_ret != nullptr) {
    *errcode_ret = code;
  }
}

// Creates the internal event for a command, registering it and giving the
// command its reference. If the user asked for the event, grants a second
// reference and stores the handle.
vcl_event MakeCommandEvent(vcl_device_id device, vcl_event* user_event_out) {
  auto* event = new vcl_event_rec;
  event->device = device;
  DefaultSilo().RegisterHandle(HandleKind::kEvent, event);
  if (user_event_out != nullptr) {
    vcl::RetainRec(event);
    *user_event_out = event;
  }
  return event;
}

// Validates an event wait list and retains each event into `out`.
vcl_int SnapshotWaitList(vcl_uint num_events, const vcl_event* list,
                         std::vector<vcl_event>* out) {
  if ((num_events == 0) != (list == nullptr)) {
    return VCL_INVALID_EVENT_WAIT_LIST;
  }
  for (vcl_uint i = 0; i < num_events; ++i) {
    if (!ValidEvent(list[i])) {
      return VCL_INVALID_EVENT_WAIT_LIST;
    }
  }
  out->reserve(num_events);
  for (vcl_uint i = 0; i < num_events; ++i) {
    vcl::RetainRec(list[i]);
    out->push_back(list[i]);
  }
  return VCL_SUCCESS;
}

// Common prologue for buffer transfer enqueues.
vcl_int ValidateTransfer(vcl_command_queue queue, vcl_mem buffer,
                         std::size_t offset, std::size_t size,
                         const void* ptr) {
  if (!ValidQueue(queue)) {
    return VCL_INVALID_COMMAND_QUEUE;
  }
  if (!ValidMem(buffer)) {
    return VCL_INVALID_MEM_OBJECT;
  }
  if (ptr == nullptr || size == 0 || offset + size > buffer->size) {
    return VCL_INVALID_VALUE;
  }
  if (buffer->context != queue->context) {
    return VCL_INVALID_CONTEXT;
  }
  return VCL_SUCCESS;
}

}  // namespace

namespace vcl {

void ReleaseContextRef(vcl_context context) {
  if (ReleaseRefOnly(context)) {
    context->silo->UnregisterHandle(HandleKind::kContext, context);
    delete context;
  }
}

void ReleaseQueueRef(vcl_command_queue queue) {
  if (ReleaseRefOnly(queue)) {
    queue->context->silo->UnregisterHandle(HandleKind::kQueue, queue);
    ReleaseContextRef(queue->context);
    delete queue;
  }
}

void ReleaseMemRef(vcl_mem mem) {
  if (ReleaseRefOnly(mem)) {
    mem->context->silo->UnregisterHandle(HandleKind::kMem, mem);
    mem->device->engine->RefundMemory(mem->size);
    ReleaseContextRef(mem->context);
    delete mem;
  }
}

void ReleaseProgramRef(vcl_program program) {
  if (ReleaseRefOnly(program)) {
    program->context->silo->UnregisterHandle(HandleKind::kProgram, program);
    ReleaseContextRef(program->context);
    delete program;
  }
}

void ReleaseKernelRef(vcl_kernel kernel) {
  if (ReleaseRefOnly(kernel)) {
    kernel->program->context->silo->UnregisterHandle(HandleKind::kKernel,
                                                     kernel);
    for (auto& arg : kernel->args) {
      if (arg.buffer != nullptr) {
        ReleaseMemRef(arg.buffer);
      }
    }
    ReleaseProgramRef(kernel->program);
    delete kernel;
  }
}

void ReleaseEventRef(vcl_event event) {
  if (ReleaseRefOnly(event)) {
    event->device->silo->UnregisterHandle(HandleKind::kEvent, event);
    delete event;
  }
}

}  // namespace vcl

extern "C" {

// ---------------------------------------------------------------------------
// Platform & device discovery.
// ---------------------------------------------------------------------------

vcl_int vclGetPlatformIDs(vcl_uint num_entries, vcl_platform_id* platforms,
                          vcl_uint* num_platforms) {
  if (platforms == nullptr && num_platforms == nullptr) {
    return VCL_INVALID_VALUE;
  }
  if (platforms != nullptr && num_entries == 0) {
    return VCL_INVALID_VALUE;
  }
  if (platforms != nullptr) {
    platforms[0] = DefaultSilo().platform();
  }
  if (num_platforms != nullptr) {
    *num_platforms = 1;
  }
  return VCL_SUCCESS;
}

vcl_int vclGetPlatformInfo(vcl_platform_id platform, vcl_uint param_name,
                           size_t param_value_size, void* param_value,
                           size_t* param_value_size_ret) {
  if (!DefaultSilo().ValidateHandle(HandleKind::kPlatform, platform)) {
    return VCL_INVALID_PLATFORM;
  }
  switch (param_name) {
    case VCL_PLATFORM_NAME:
      return ReturnInfoString(platform->name, param_value_size, param_value,
                              param_value_size_ret);
    case VCL_PLATFORM_VENDOR:
      return ReturnInfoString(platform->vendor, param_value_size, param_value,
                              param_value_size_ret);
    case VCL_PLATFORM_VERSION:
      return ReturnInfoString(platform->version, param_value_size, param_value,
                              param_value_size_ret);
    default:
      return VCL_INVALID_VALUE;
  }
}

vcl_int vclGetDeviceIDs(vcl_platform_id platform, vcl_bitfield device_type,
                        vcl_uint num_entries, vcl_device_id* devices,
                        vcl_uint* num_devices) {
  if (!DefaultSilo().ValidateHandle(HandleKind::kPlatform, platform)) {
    return VCL_INVALID_PLATFORM;
  }
  if ((device_type & (VCL_DEVICE_TYPE_GPU | VCL_DEVICE_TYPE_ALL)) == 0) {
    if (num_devices != nullptr) {
      *num_devices = 0;
    }
    return VCL_DEVICE_NOT_FOUND;
  }
  const auto& all = DefaultSilo().devices();
  if (devices != nullptr) {
    if (num_entries == 0) {
      return VCL_INVALID_VALUE;
    }
    const vcl_uint n =
        std::min<vcl_uint>(num_entries, static_cast<vcl_uint>(all.size()));
    for (vcl_uint i = 0; i < n; ++i) {
      devices[i] = all[i];
    }
  }
  if (num_devices != nullptr) {
    *num_devices = static_cast<vcl_uint>(all.size());
  }
  return VCL_SUCCESS;
}

vcl_int vclGetDeviceInfo(vcl_device_id device, vcl_uint param_name,
                         size_t param_value_size, void* param_value,
                         size_t* param_value_size_ret) {
  if (!DefaultSilo().ValidateHandle(HandleKind::kDevice, device)) {
    return VCL_INVALID_DEVICE;
  }
  const vcl::SiloConfig& config = device->engine->config();
  switch (param_name) {
    case VCL_DEVICE_NAME:
      return ReturnInfoString(device->name, param_value_size, param_value,
                              param_value_size_ret);
    case VCL_DEVICE_GLOBAL_MEM_SIZE:
      return ReturnInfoScalar<vcl_ulong>(config.device_global_mem_bytes,
                                         param_value_size, param_value,
                                         param_value_size_ret);
    case VCL_DEVICE_MAX_COMPUTE_UNITS:
      return ReturnInfoScalar<vcl_uint>(config.compute_units, param_value_size,
                                        param_value, param_value_size_ret);
    case VCL_DEVICE_MAX_WORK_GROUP_SIZE:
      return ReturnInfoScalar<size_t>(config.max_work_group_size,
                                      param_value_size, param_value,
                                      param_value_size_ret);
    case VCL_DEVICE_LOCAL_MEM_SIZE:
      return ReturnInfoScalar<vcl_ulong>(config.device_local_mem_bytes,
                                         param_value_size, param_value,
                                         param_value_size_ret);
    default:
      return VCL_INVALID_VALUE;
  }
}

// ---------------------------------------------------------------------------
// Contexts.
// ---------------------------------------------------------------------------

vcl_context vclCreateContext(const vcl_device_id* devices, vcl_uint num_devices,
                             vcl_int* errcode_ret) {
  if (devices == nullptr || num_devices == 0) {
    SetErr(errcode_ret, VCL_INVALID_VALUE);
    return nullptr;
  }
  for (vcl_uint i = 0; i < num_devices; ++i) {
    if (!DefaultSilo().ValidateHandle(HandleKind::kDevice, devices[i])) {
      SetErr(errcode_ret, VCL_INVALID_DEVICE);
      return nullptr;
    }
  }
  auto* context = new vcl_context_rec;
  context->silo = &DefaultSilo();
  context->devices.assign(devices, devices + num_devices);
  DefaultSilo().RegisterHandle(HandleKind::kContext, context);
  SetErr(errcode_ret, VCL_SUCCESS);
  return context;
}

vcl_int vclRetainContext(vcl_context context) {
  if (!DefaultSilo().ValidateHandle(HandleKind::kContext, context)) {
    return VCL_INVALID_CONTEXT;
  }
  vcl::RetainRec(context);
  return VCL_SUCCESS;
}

vcl_int vclReleaseContext(vcl_context context) {
  if (!DefaultSilo().ValidateHandle(HandleKind::kContext, context)) {
    return VCL_INVALID_CONTEXT;
  }
  vcl::ReleaseContextRef(context);
  return VCL_SUCCESS;
}

// ---------------------------------------------------------------------------
// Command queues.
// ---------------------------------------------------------------------------

vcl_command_queue vclCreateCommandQueue(vcl_context context,
                                        vcl_device_id device,
                                        vcl_bitfield properties,
                                        vcl_int* errcode_ret) {
  if (!DefaultSilo().ValidateHandle(HandleKind::kContext, context)) {
    SetErr(errcode_ret, VCL_INVALID_CONTEXT);
    return nullptr;
  }
  if (!DefaultSilo().ValidateHandle(HandleKind::kDevice, device)) {
    SetErr(errcode_ret, VCL_INVALID_DEVICE);
    return nullptr;
  }
  if (std::find(context->devices.begin(), context->devices.end(), device) ==
      context->devices.end()) {
    SetErr(errcode_ret, VCL_INVALID_DEVICE);
    return nullptr;
  }
  if ((properties & ~VCL_QUEUE_PROFILING_ENABLE) != 0) {
    SetErr(errcode_ret, VCL_INVALID_QUEUE_PROPERTIES);
    return nullptr;
  }
  auto* queue = new vcl_command_queue_rec;
  queue->context = context;
  queue->device = device;
  queue->properties = properties;
  vcl::RetainRec(context);
  DefaultSilo().RegisterHandle(HandleKind::kQueue, queue);
  SetErr(errcode_ret, VCL_SUCCESS);
  return queue;
}

vcl_int vclRetainCommandQueue(vcl_command_queue queue) {
  if (!ValidQueue(queue)) {
    return VCL_INVALID_COMMAND_QUEUE;
  }
  vcl::RetainRec(queue);
  return VCL_SUCCESS;
}

vcl_int vclReleaseCommandQueue(vcl_command_queue queue) {
  if (!ValidQueue(queue)) {
    return VCL_INVALID_COMMAND_QUEUE;
  }
  vcl::ReleaseQueueRef(queue);
  return VCL_SUCCESS;
}

// ---------------------------------------------------------------------------
// Buffers.
// ---------------------------------------------------------------------------

vcl_mem vclCreateBuffer(vcl_context context, vcl_bitfield flags, size_t size,
                        const void* host_ptr, vcl_int* errcode_ret) {
  if (!DefaultSilo().ValidateHandle(HandleKind::kContext, context)) {
    SetErr(errcode_ret, VCL_INVALID_CONTEXT);
    return nullptr;
  }
  if (size == 0) {
    SetErr(errcode_ret, VCL_INVALID_BUFFER_SIZE);
    return nullptr;
  }
  const bool copy_host = (flags & VCL_MEM_COPY_HOST_PTR) != 0;
  if (copy_host && host_ptr == nullptr) {
    SetErr(errcode_ret, VCL_INVALID_VALUE);
    return nullptr;
  }
  vcl_device_id device = context->devices.front();
  if (!device->engine->ChargeMemory(size)) {
    SetErr(errcode_ret, VCL_MEM_OBJECT_ALLOCATION_FAILURE);
    return nullptr;
  }
  auto* mem = new vcl_mem_rec;
  mem->context = context;
  mem->device = device;
  mem->flags = flags == 0 ? VCL_MEM_READ_WRITE : flags;
  mem->size = size;
  mem->data = std::make_unique<std::uint8_t[]>(size);
  if (copy_host) {
    std::memcpy(mem->data.get(), host_ptr, size);
  } else {
    std::memset(mem->data.get(), 0, size);
  }
  vcl::RetainRec(context);
  DefaultSilo().RegisterHandle(HandleKind::kMem, mem);
  SetErr(errcode_ret, VCL_SUCCESS);
  return mem;
}

vcl_int vclRetainMemObject(vcl_mem mem) {
  if (!ValidMem(mem)) {
    return VCL_INVALID_MEM_OBJECT;
  }
  vcl::RetainRec(mem);
  return VCL_SUCCESS;
}

vcl_int vclReleaseMemObject(vcl_mem mem) {
  if (!ValidMem(mem)) {
    return VCL_INVALID_MEM_OBJECT;
  }
  vcl::ReleaseMemRef(mem);
  return VCL_SUCCESS;
}

vcl_int vclGetMemObjectInfo(vcl_mem mem, vcl_uint param_name,
                            size_t param_value_size, void* param_value,
                            size_t* param_value_size_ret) {
  if (!ValidMem(mem)) {
    return VCL_INVALID_MEM_OBJECT;
  }
  switch (param_name) {
    case VCL_MEM_SIZE:
      return ReturnInfoScalar<size_t>(mem->size, param_value_size, param_value,
                                      param_value_size_ret);
    case VCL_MEM_FLAGS:
      return ReturnInfoScalar<vcl_bitfield>(mem->flags, param_value_size,
                                            param_value, param_value_size_ret);
    case VCL_MEM_REFERENCE_COUNT:
      return ReturnInfoScalar<vcl_uint>(
          static_cast<vcl_uint>(mem->refcount.load(std::memory_order_relaxed)),
          param_value_size, param_value, param_value_size_ret);
    default:
      return VCL_INVALID_VALUE;
  }
}

// ---------------------------------------------------------------------------
// Programs.
// ---------------------------------------------------------------------------

vcl_program vclCreateProgramWithSource(vcl_context context, const char* source,
                                       vcl_int* errcode_ret) {
  if (!DefaultSilo().ValidateHandle(HandleKind::kContext, context)) {
    SetErr(errcode_ret, VCL_INVALID_CONTEXT);
    return nullptr;
  }
  if (source == nullptr || *source == '\0') {
    SetErr(errcode_ret, VCL_INVALID_VALUE);
    return nullptr;
  }
  auto* program = new vcl_program_rec;
  program->context = context;
  program->source = source;
  vcl::RetainRec(context);
  DefaultSilo().RegisterHandle(HandleKind::kProgram, program);
  SetErr(errcode_ret, VCL_SUCCESS);
  return program;
}

vcl_int vclBuildProgram(vcl_program program, const char* options) {
  if (!DefaultSilo().ValidateHandle(HandleKind::kProgram, program)) {
    return VCL_INVALID_PROGRAM;
  }
  (void)options;  // no build options are recognized yet
  auto compiled = vcl::CompileSource(program->source);
  if (!compiled.ok()) {
    program->build_status = VCL_BUILD_ERROR;
    program->build_log = compiled.status().message();
    return VCL_BUILD_PROGRAM_FAILURE;
  }
  program->compiled = std::move(compiled).value();
  program->build_status = VCL_BUILD_SUCCESS;
  program->build_log = "build succeeded";
  return VCL_SUCCESS;
}

vcl_int vclGetProgramBuildInfo(vcl_program program, vcl_uint param_name,
                               size_t param_value_size, void* param_value,
                               size_t* param_value_size_ret) {
  if (!DefaultSilo().ValidateHandle(HandleKind::kProgram, program)) {
    return VCL_INVALID_PROGRAM;
  }
  switch (param_name) {
    case VCL_PROGRAM_BUILD_STATUS:
      return ReturnInfoScalar<vcl_int>(program->build_status, param_value_size,
                                       param_value, param_value_size_ret);
    case VCL_PROGRAM_BUILD_LOG:
      return ReturnInfoString(program->build_log, param_value_size,
                              param_value, param_value_size_ret);
    default:
      return VCL_INVALID_VALUE;
  }
}

vcl_int vclRetainProgram(vcl_program program) {
  if (!DefaultSilo().ValidateHandle(HandleKind::kProgram, program)) {
    return VCL_INVALID_PROGRAM;
  }
  vcl::RetainRec(program);
  return VCL_SUCCESS;
}

vcl_int vclReleaseProgram(vcl_program program) {
  if (!DefaultSilo().ValidateHandle(HandleKind::kProgram, program)) {
    return VCL_INVALID_PROGRAM;
  }
  vcl::ReleaseProgramRef(program);
  return VCL_SUCCESS;
}

// ---------------------------------------------------------------------------
// Kernels.
// ---------------------------------------------------------------------------

vcl_kernel vclCreateKernel(vcl_program program, const char* kernel_name,
                           vcl_int* errcode_ret) {
  if (!DefaultSilo().ValidateHandle(HandleKind::kProgram, program)) {
    SetErr(errcode_ret, VCL_INVALID_PROGRAM);
    return nullptr;
  }
  if (program->build_status != VCL_BUILD_SUCCESS) {
    SetErr(errcode_ret, VCL_INVALID_PROGRAM_EXECUTABLE);
    return nullptr;
  }
  if (kernel_name == nullptr) {
    SetErr(errcode_ret, VCL_INVALID_VALUE);
    return nullptr;
  }
  const vcl::CompiledKernel* compiled =
      program->compiled.FindKernel(kernel_name);
  if (compiled == nullptr) {
    SetErr(errcode_ret, VCL_INVALID_KERNEL_NAME);
    return nullptr;
  }
  auto* kernel = new vcl_kernel_rec;
  kernel->program = program;
  kernel->compiled = compiled;
  kernel->args.resize(compiled->params.size());
  vcl::RetainRec(program);
  DefaultSilo().RegisterHandle(HandleKind::kKernel, kernel);
  SetErr(errcode_ret, VCL_SUCCESS);
  return kernel;
}

vcl_int vclRetainKernel(vcl_kernel kernel) {
  if (!ValidKernel(kernel)) {
    return VCL_INVALID_KERNEL;
  }
  vcl::RetainRec(kernel);
  return VCL_SUCCESS;
}

vcl_int vclReleaseKernel(vcl_kernel kernel) {
  if (!ValidKernel(kernel)) {
    return VCL_INVALID_KERNEL;
  }
  vcl::ReleaseKernelRef(kernel);
  return VCL_SUCCESS;
}

vcl_int vclSetKernelArgScalar(vcl_kernel kernel, vcl_uint arg_index,
                              size_t arg_size, const void* arg_value) {
  if (!ValidKernel(kernel)) {
    return VCL_INVALID_KERNEL;
  }
  if (arg_index >= kernel->compiled->params.size()) {
    return VCL_INVALID_ARG_INDEX;
  }
  const vcl::ParamInfo& param = kernel->compiled->params[arg_index];
  if (param.kind != vcl::ParamKind::kScalar) {
    return VCL_INVALID_VALUE;
  }
  auto cell = vcl::ScalarArgToCell(param.scalar, arg_value, arg_size);
  if (!cell.ok()) {
    return VCL_INVALID_ARG_SIZE;
  }
  auto& binding = kernel->args[arg_index];
  binding.kind = vcl::KernelArg::Kind::kScalar;
  binding.scalar_cell = *cell;
  return VCL_SUCCESS;
}

vcl_int vclSetKernelArgBuffer(vcl_kernel kernel, vcl_uint arg_index,
                              vcl_mem buffer) {
  if (!ValidKernel(kernel)) {
    return VCL_INVALID_KERNEL;
  }
  if (arg_index >= kernel->compiled->params.size()) {
    return VCL_INVALID_ARG_INDEX;
  }
  if (!ValidMem(buffer)) {
    return VCL_INVALID_MEM_OBJECT;
  }
  const vcl::ParamInfo& param = kernel->compiled->params[arg_index];
  if (param.kind != vcl::ParamKind::kGlobalPtr) {
    return VCL_INVALID_VALUE;
  }
  auto& binding = kernel->args[arg_index];
  if (binding.buffer != nullptr) {
    vclReleaseMemObject(binding.buffer);
  }
  vcl::RetainRec(buffer);
  binding.kind = vcl::KernelArg::Kind::kBuffer;
  binding.buffer = buffer;
  return VCL_SUCCESS;
}

vcl_int vclSetKernelArgLocal(vcl_kernel kernel, vcl_uint arg_index,
                             size_t local_size) {
  if (!ValidKernel(kernel)) {
    return VCL_INVALID_KERNEL;
  }
  if (arg_index >= kernel->compiled->params.size()) {
    return VCL_INVALID_ARG_INDEX;
  }
  const vcl::ParamInfo& param = kernel->compiled->params[arg_index];
  if (param.kind != vcl::ParamKind::kLocalPtr) {
    return VCL_INVALID_VALUE;
  }
  if (local_size == 0) {
    return VCL_INVALID_ARG_SIZE;
  }
  auto& binding = kernel->args[arg_index];
  binding.kind = vcl::KernelArg::Kind::kLocal;
  binding.local_size = local_size;
  return VCL_SUCCESS;
}

// ---------------------------------------------------------------------------
// Command submission.
// ---------------------------------------------------------------------------

vcl_int vclEnqueueNDRangeKernel(vcl_command_queue queue, vcl_kernel kernel,
                                vcl_uint work_dim,
                                const size_t* global_work_offset,
                                const size_t* global_work_size,
                                const size_t* local_work_size,
                                vcl_uint num_events_in_wait_list,
                                const vcl_event* event_wait_list,
                                vcl_event* event) {
  if (!ValidQueue(queue)) {
    return VCL_INVALID_COMMAND_QUEUE;
  }
  if (!ValidKernel(kernel)) {
    return VCL_INVALID_KERNEL;
  }
  if (work_dim < 1 || work_dim > 3) {
    return VCL_INVALID_WORK_DIMENSION;
  }
  if (global_work_size == nullptr) {
    return VCL_INVALID_VALUE;
  }
  const vcl::SiloConfig& config = queue->device->engine->config();
  vcl::LaunchConfig launch;
  launch.work_dim = work_dim;
  for (vcl_uint d = 0; d < work_dim; ++d) {
    if (global_work_size[d] == 0) {
      return VCL_INVALID_VALUE;
    }
    launch.global_size[d] = global_work_size[d];
    launch.global_offset[d] =
        global_work_offset != nullptr ? global_work_offset[d] : 0;
  }
  // Choose or validate the work-group shape.
  std::size_t group_items = 1;
  for (vcl_uint d = 0; d < work_dim; ++d) {
    std::size_t local;
    if (local_work_size != nullptr) {
      local = local_work_size[d];
      if (local == 0 || launch.global_size[d] % local != 0) {
        return VCL_INVALID_WORK_GROUP_SIZE;
      }
    } else if (d == 0) {
      // Default: largest divisor of the global size within the budget.
      local = std::min(launch.global_size[0], config.max_work_group_size);
      while (launch.global_size[0] % local != 0) {
        --local;
      }
    } else {
      local = 1;
    }
    launch.local_size[d] = local;
    group_items *= local;
  }
  if (group_items > config.max_work_group_size) {
    return VCL_INVALID_WORK_GROUP_SIZE;
  }
  // Snapshot arguments; every parameter must be bound.
  std::vector<vcl::KernelArg> args(kernel->compiled->params.size());
  std::vector<vcl_mem> retained;
  std::size_t dynamic_local_bytes = kernel->compiled->fixed_local_bytes;
  for (std::size_t i = 0; i < kernel->args.size(); ++i) {
    const auto& binding = kernel->args[i];
    if (binding.kind == vcl::KernelArg::Kind::kUnset) {
      return VCL_INVALID_KERNEL_ARGS;
    }
    args[i].kind = binding.kind;
    switch (binding.kind) {
      case vcl::KernelArg::Kind::kScalar:
        args[i].scalar_cell = binding.scalar_cell;
        break;
      case vcl::KernelArg::Kind::kBuffer:
        if (!ValidMem(binding.buffer) ||
            binding.buffer->context != queue->context) {
          return VCL_INVALID_MEM_OBJECT;
        }
        args[i].buffer_data = binding.buffer->data.get();
        args[i].buffer_size = binding.buffer->size;
        retained.push_back(binding.buffer);
        break;
      case vcl::KernelArg::Kind::kLocal:
        args[i].local_size = binding.local_size;
        dynamic_local_bytes += binding.local_size;
        break;
      case vcl::KernelArg::Kind::kUnset:
        break;
    }
  }
  if (dynamic_local_bytes > config.device_local_mem_bytes) {
    return VCL_OUT_OF_RESOURCES;
  }
  auto command = std::make_unique<vcl::Device::Command>();
  command->kind = vcl::Device::Command::Kind::kNDRange;
  vcl_int wl = SnapshotWaitList(num_events_in_wait_list, event_wait_list,
                                &command->wait_list);
  if (wl != VCL_SUCCESS) {
    return wl;
  }
  for (vcl_mem m : retained) {
    vcl::RetainRec(m);
  }
  vcl::RetainRec(queue);
  vcl::RetainRec(kernel);
  command->queue = queue;
  command->kernel = kernel;
  command->launch = launch;
  command->args = std::move(args);
  command->retained_buffers = std::move(retained);
  command->event = MakeCommandEvent(queue->device, event);
  queue->device->engine->Enqueue(std::move(command));
  return VCL_SUCCESS;
}

vcl_int vclEnqueueReadBuffer(vcl_command_queue queue, vcl_mem buffer,
                             vcl_bool blocking_read, size_t offset, size_t size,
                             void* ptr, vcl_uint num_events_in_wait_list,
                             const vcl_event* event_wait_list,
                             vcl_event* event) {
  vcl_int v = ValidateTransfer(queue, buffer, offset, size, ptr);
  if (v != VCL_SUCCESS) {
    return v;
  }
  auto command = std::make_unique<vcl::Device::Command>();
  command->kind = vcl::Device::Command::Kind::kRead;
  vcl_int wl = SnapshotWaitList(num_events_in_wait_list, event_wait_list,
                                &command->wait_list);
  if (wl != VCL_SUCCESS) {
    return wl;
  }
  vcl::RetainRec(queue);
  vcl::RetainRec(buffer);
  command->queue = queue;
  command->buffer = buffer;
  command->offset = offset;
  command->size = size;
  command->host_dst = ptr;
  vcl_event completion = MakeCommandEvent(queue->device, event);
  command->event = completion;
  if (blocking_read == VCL_TRUE) {
    // Hold our own reference across the wait: the command's reference dies
    // when the command completes.
    vcl::RetainRec(completion);
    queue->device->engine->Enqueue(std::move(command));
    vcl_int status = queue->device->engine->WaitEvent(completion);
    vclReleaseEvent(completion);
    return status;
  }
  queue->device->engine->Enqueue(std::move(command));
  return VCL_SUCCESS;
}

vcl_int vclEnqueueWriteBuffer(vcl_command_queue queue, vcl_mem buffer,
                              vcl_bool blocking_write, size_t offset,
                              size_t size, const void* ptr,
                              vcl_uint num_events_in_wait_list,
                              const vcl_event* event_wait_list,
                              vcl_event* event) {
  vcl_int v = ValidateTransfer(queue, buffer, offset, size, ptr);
  if (v != VCL_SUCCESS) {
    return v;
  }
  auto command = std::make_unique<vcl::Device::Command>();
  command->kind = vcl::Device::Command::Kind::kWrite;
  vcl_int wl = SnapshotWaitList(num_events_in_wait_list, event_wait_list,
                                &command->wait_list);
  if (wl != VCL_SUCCESS) {
    return wl;
  }
  vcl::RetainRec(queue);
  vcl::RetainRec(buffer);
  command->queue = queue;
  command->buffer = buffer;
  command->offset = offset;
  command->size = size;
  vcl_event completion = MakeCommandEvent(queue->device, event);
  command->event = completion;
  if (blocking_write == VCL_TRUE) {
    // Blocking writes use the caller's memory directly: it stays valid until
    // the wait below returns.
    command->host_src_ptr = ptr;
    vcl::RetainRec(completion);
    queue->device->engine->Enqueue(std::move(command));
    vcl_int status = queue->device->engine->WaitEvent(completion);
    vclReleaseEvent(completion);
    return status;
  }
  const auto* src = static_cast<const std::uint8_t*>(ptr);
  command->host_src.assign(src, src + size);
  queue->device->engine->Enqueue(std::move(command));
  return VCL_SUCCESS;
}

vcl_int vclEnqueueCopyBuffer(vcl_command_queue queue, vcl_mem src_buffer,
                             vcl_mem dst_buffer, size_t src_offset,
                             size_t dst_offset, size_t size,
                             vcl_uint num_events_in_wait_list,
                             const vcl_event* event_wait_list,
                             vcl_event* event) {
  if (!ValidQueue(queue)) {
    return VCL_INVALID_COMMAND_QUEUE;
  }
  if (!ValidMem(src_buffer) || !ValidMem(dst_buffer)) {
    return VCL_INVALID_MEM_OBJECT;
  }
  if (size == 0 || src_offset + size > src_buffer->size ||
      dst_offset + size > dst_buffer->size) {
    return VCL_INVALID_VALUE;
  }
  if (src_buffer->context != queue->context ||
      dst_buffer->context != queue->context) {
    return VCL_INVALID_CONTEXT;
  }
  auto command = std::make_unique<vcl::Device::Command>();
  command->kind = vcl::Device::Command::Kind::kCopy;
  vcl_int wl = SnapshotWaitList(num_events_in_wait_list, event_wait_list,
                                &command->wait_list);
  if (wl != VCL_SUCCESS) {
    return wl;
  }
  vcl::RetainRec(queue);
  vcl::RetainRec(src_buffer);
  vcl::RetainRec(dst_buffer);
  command->queue = queue;
  command->src = src_buffer;
  command->src_offset = src_offset;
  command->buffer = dst_buffer;
  command->offset = dst_offset;
  command->size = size;
  command->event = MakeCommandEvent(queue->device, event);
  queue->device->engine->Enqueue(std::move(command));
  return VCL_SUCCESS;
}

vcl_int vclEnqueueFillBuffer(vcl_command_queue queue, vcl_mem buffer,
                             const void* pattern, size_t pattern_size,
                             size_t offset, size_t size,
                             vcl_uint num_events_in_wait_list,
                             const vcl_event* event_wait_list,
                             vcl_event* event) {
  vcl_int v = ValidateTransfer(queue, buffer, offset, size, pattern);
  if (v != VCL_SUCCESS) {
    return v;
  }
  if (pattern_size == 0 || size % pattern_size != 0) {
    return VCL_INVALID_VALUE;
  }
  auto command = std::make_unique<vcl::Device::Command>();
  command->kind = vcl::Device::Command::Kind::kFill;
  vcl_int wl = SnapshotWaitList(num_events_in_wait_list, event_wait_list,
                                &command->wait_list);
  if (wl != VCL_SUCCESS) {
    return wl;
  }
  vcl::RetainRec(queue);
  vcl::RetainRec(buffer);
  command->queue = queue;
  command->buffer = buffer;
  command->offset = offset;
  command->size = size;
  const auto* pat = static_cast<const std::uint8_t*>(pattern);
  command->pattern.assign(pat, pat + pattern_size);
  command->event = MakeCommandEvent(queue->device, event);
  queue->device->engine->Enqueue(std::move(command));
  return VCL_SUCCESS;
}

vcl_int vclEnqueueBarrier(vcl_command_queue queue) {
  if (!ValidQueue(queue)) {
    return VCL_INVALID_COMMAND_QUEUE;
  }
  auto command = std::make_unique<vcl::Device::Command>();
  command->kind = vcl::Device::Command::Kind::kMarker;
  vcl::RetainRec(queue);
  command->queue = queue;
  command->event = MakeCommandEvent(queue->device, nullptr);
  queue->device->engine->Enqueue(std::move(command));
  return VCL_SUCCESS;
}

// ---------------------------------------------------------------------------
// Synchronization.
// ---------------------------------------------------------------------------

vcl_int vclFlush(vcl_command_queue queue) {
  if (!ValidQueue(queue)) {
    return VCL_INVALID_COMMAND_QUEUE;
  }
  // Commands are handed to the device at enqueue time; nothing is batched.
  return VCL_SUCCESS;
}

vcl_int vclFinish(vcl_command_queue queue) {
  if (!ValidQueue(queue)) {
    return VCL_INVALID_COMMAND_QUEUE;
  }
  return queue->device->engine->FinishQueue(queue);
}

vcl_int vclWaitForEvents(vcl_uint num_events, const vcl_event* event_list) {
  if (num_events == 0 || event_list == nullptr) {
    return VCL_INVALID_VALUE;
  }
  for (vcl_uint i = 0; i < num_events; ++i) {
    if (!ValidEvent(event_list[i])) {
      return VCL_INVALID_EVENT;
    }
  }
  vcl_int status = VCL_SUCCESS;
  for (vcl_uint i = 0; i < num_events; ++i) {
    vcl_int s = event_list[i]->device->engine->WaitEvent(event_list[i]);
    if (s != VCL_SUCCESS) {
      status = s;
    }
  }
  return status;
}

// ---------------------------------------------------------------------------
// Event queries.
// ---------------------------------------------------------------------------

vcl_int vclGetEventInfo(vcl_event event, vcl_uint param_name,
                        size_t param_value_size, void* param_value,
                        size_t* param_value_size_ret) {
  if (!ValidEvent(event)) {
    return VCL_INVALID_EVENT;
  }
  switch (param_name) {
    case VCL_EVENT_COMMAND_EXECUTION_STATUS: {
      vcl_int status;
      {
        std::lock_guard<std::mutex> lock(event->device->engine->mutex());
        status = event->status;
      }
      return ReturnInfoScalar<vcl_int>(status, param_value_size, param_value,
                                       param_value_size_ret);
    }
    default:
      return VCL_INVALID_VALUE;
  }
}

vcl_int vclGetEventProfilingInfo(vcl_event event, vcl_uint param_name,
                                 size_t param_value_size, void* param_value,
                                 size_t* param_value_size_ret) {
  if (!ValidEvent(event)) {
    return VCL_INVALID_EVENT;
  }
  std::int64_t value;
  {
    std::lock_guard<std::mutex> lock(event->device->engine->mutex());
    if (event->status != VCL_COMPLETE && event->status >= 0) {
      return VCL_INVALID_OPERATION;  // profiling info only after completion
    }
    switch (param_name) {
      case VCL_PROFILING_COMMAND_QUEUED:
        value = event->queued_vns;
        break;
      case VCL_PROFILING_COMMAND_SUBMIT:
        value = event->submit_vns;
        break;
      case VCL_PROFILING_COMMAND_START:
        value = event->start_vns;
        break;
      case VCL_PROFILING_COMMAND_END:
        value = event->end_vns;
        break;
      default:
        return VCL_INVALID_VALUE;
    }
  }
  return ReturnInfoScalar<vcl_ulong>(static_cast<vcl_ulong>(value),
                                     param_value_size, param_value,
                                     param_value_size_ret);
}

vcl_int vclRetainEvent(vcl_event event) {
  if (!ValidEvent(event)) {
    return VCL_INVALID_EVENT;
  }
  vcl::RetainRec(event);
  return VCL_SUCCESS;
}

vcl_int vclReleaseEvent(vcl_event event) {
  if (!ValidEvent(event)) {
    return VCL_INVALID_EVENT;
  }
  vcl::ReleaseEventRef(event);
  return VCL_SUCCESS;
}

// ---------------------------------------------------------------------------
// Kernel/work-group queries.
// ---------------------------------------------------------------------------

vcl_int vclGetKernelWorkGroupInfo(vcl_kernel kernel, vcl_device_id device,
                                  vcl_uint param_name, size_t param_value_size,
                                  void* param_value,
                                  size_t* param_value_size_ret) {
  if (!ValidKernel(kernel)) {
    return VCL_INVALID_KERNEL;
  }
  if (!DefaultSilo().ValidateHandle(HandleKind::kDevice, device)) {
    return VCL_INVALID_DEVICE;
  }
  switch (param_name) {
    case VCL_KERNEL_WORK_GROUP_SIZE:
      return ReturnInfoScalar<size_t>(device->engine->config().max_work_group_size,
                                      param_value_size, param_value,
                                      param_value_size_ret);
    case VCL_KERNEL_LOCAL_MEM_SIZE:
      return ReturnInfoScalar<vcl_ulong>(kernel->compiled->fixed_local_bytes,
                                         param_value_size, param_value,
                                         param_value_size_ret);
    default:
      return VCL_INVALID_VALUE;
  }
}

}  // extern "C"
