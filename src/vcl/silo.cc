#include "src/vcl/silo.h"

#include <memory>
#include <string>

#include "src/vcl/device.h"
#include "src/vcl/object_model.h"

namespace vcl {

Silo::Silo(const SiloConfig& config) : config_(config) {
  auto* platform = new vcl_platform_rec;
  platform->silo = this;
  platform->name = "AvA VCL Platform";
  platform->vendor = "AvA Project";
  platform->version = "VCL 1.0";
  platform_ = platform;
  RegisterHandle(HandleKind::kPlatform, platform_);
  for (std::uint32_t i = 0; i < config_.num_devices; ++i) {
    auto* dev = new vcl_device_rec;
    dev->silo = this;
    dev->name = "AvA Virtual GPU " + std::to_string(i);
    dev->engine = std::make_unique<Device>(this, dev, config_);
    devices_.push_back(dev);
    RegisterHandle(HandleKind::kDevice, dev);
  }
}

Silo::~Silo() {
  // Drain every device before destroying any: a command on one device may
  // hold references to objects charged against another.
  for (vcl_device_id dev : devices_) {
    dev->engine->WaitIdle();
  }
  for (vcl_device_id dev : devices_) {
    UnregisterHandle(HandleKind::kDevice, dev);
    delete dev;  // joins the device worker thread
  }
  UnregisterHandle(HandleKind::kPlatform, platform_);
  delete platform_;
}

void Silo::RegisterHandle(HandleKind kind, void* handle) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  handles_[static_cast<int>(kind)].insert(handle);
}

void Silo::UnregisterHandle(HandleKind kind, void* handle) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  handles_[static_cast<int>(kind)].erase(handle);
}

bool Silo::ValidateHandle(HandleKind kind, void* handle) {
  if (handle == nullptr) {
    return false;
  }
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return handles_[static_cast<int>(kind)].count(handle) != 0;
}

SiloCounters Silo::Counters() const {
  SiloCounters total;
  for (vcl_device_id dev : devices_) {
    SiloCounters c = dev->engine->Counters();
    total.commands_executed += c.commands_executed;
    total.kernel_launches += c.kernel_launches;
    total.bytes_transferred += c.bytes_transferred;
    total.instructions_executed += c.instructions_executed;
    total.virtual_time_ns += c.virtual_time_ns;
  }
  return total;
}

namespace {
std::unique_ptr<Silo>& DefaultSiloSlot() {
  static auto* slot = new std::unique_ptr<Silo>;
  return *slot;
}
}  // namespace

Silo& DefaultSilo() {
  auto& slot = DefaultSiloSlot();
  if (slot == nullptr) {
    slot = std::make_unique<Silo>(SiloConfig());
  }
  return *slot;
}

void ResetDefaultSilo(const SiloConfig& config) {
  auto& slot = DefaultSiloSlot();
  slot.reset();
  slot = std::make_unique<Silo>(config);
}

}  // namespace vcl
