// Internal spine of the VCL silo: configuration, the silo instance (platform,
// devices, live-handle registry), and test/benchmark hooks. Applications use
// only vcl.h; the AvA server and tests may use ResetDefaultSilo() and
// SiloStats() to configure deterministic experiments.
#ifndef AVA_SRC_VCL_SILO_H_
#define AVA_SRC_VCL_SILO_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "src/vcl/vcl.h"

namespace vcl {

class Device;

struct SiloConfig {
  std::uint32_t num_devices = 1;
  std::size_t device_global_mem_bytes = 256ull << 20;  // 256 MiB
  std::size_t device_local_mem_bytes = 64u << 10;      // 64 KiB per group
  std::uint32_t compute_units = 16;
  std::size_t max_work_group_size = 256;
  // Virtual-time cost model (see DESIGN.md §5): deterministic device time
  // charged per command, independent of host speed.
  double vns_per_instruction = 1.0;
  double vns_per_byte = 0.05;
  std::int64_t vns_per_command = 2000;
  std::uint64_t max_instructions_per_item = 1ull << 26;
};

// Aggregate counters across all devices, for experiments and tests.
struct SiloCounters {
  std::uint64_t commands_executed = 0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t bytes_transferred = 0;   // read/write/copy/fill traffic
  std::uint64_t instructions_executed = 0;
  std::int64_t virtual_time_ns = 0;      // summed device virtual time
};

// Kinds of handles tracked by the live-handle registry.
enum class HandleKind : std::uint8_t {
  kPlatform,
  kDevice,
  kContext,
  kQueue,
  kMem,
  kProgram,
  kKernel,
  kEvent,
};

class Silo {
 public:
  explicit Silo(const SiloConfig& config);
  ~Silo();

  Silo(const Silo&) = delete;
  Silo& operator=(const Silo&) = delete;

  const SiloConfig& config() const { return config_; }
  vcl_platform_id platform() { return platform_; }
  const std::vector<vcl_device_id>& devices() const { return devices_; }

  // Live-handle registry: every created object registers itself; every
  // destroyed object unregisters. API entry points validate incoming handles
  // against it, so stale or foreign pointers fail cleanly instead of
  // crashing.
  void RegisterHandle(HandleKind kind, void* handle);
  void UnregisterHandle(HandleKind kind, void* handle);
  bool ValidateHandle(HandleKind kind, void* handle);

  SiloCounters Counters() const;

 private:
  SiloConfig config_;
  vcl_platform_id platform_ = nullptr;
  std::vector<vcl_device_id> devices_;

  mutable std::mutex registry_mutex_;
  std::unordered_set<void*> handles_[8];
};

// The process-wide silo instance that the vcl* C API operates on.
Silo& DefaultSilo();

// Destroys the current default silo (all outstanding handles become invalid)
// and builds a fresh one with `config`. Test/benchmark hook.
void ResetDefaultSilo(const SiloConfig& config = SiloConfig());

}  // namespace vcl

#endif  // AVA_SRC_VCL_SILO_H_
