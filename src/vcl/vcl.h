// VCL — the "vendor" accelerator silo used in place of a proprietary OpenCL
// stack (see DESIGN.md §2). This header is the silo's only public,
// stable interface: exactly the kind of user-mode API surface AvA interposes.
//
// The API mirrors a core subset of OpenCL 1.2: platforms, devices,
// ref-counted contexts / queues / buffers / programs / kernels / events,
// in-order command queues executed by a device worker thread, and a real
// kernel compiler for the VCL kernel language (a C subset; see
// src/vcl/compiler/). There are exactly 39 entry points, matching the paper's
// "39 commonly used OpenCL functions".
//
// Everything below the line `vcl*` functions in this file — the compiler, the
// device engine, the command scheduler — is the *silo*: tightly coupled,
// deliberately not exposed, exactly as Figure 1 of the paper describes.
#ifndef AVA_SRC_VCL_VCL_H_
#define AVA_SRC_VCL_VCL_H_

#include <cstddef>
#include <cstdint>

extern "C" {

// ---------------------------------------------------------------------------
// Scalar and handle types.
// ---------------------------------------------------------------------------

using vcl_int = std::int32_t;
using vcl_uint = std::uint32_t;
using vcl_long = std::int64_t;
using vcl_ulong = std::uint64_t;
using vcl_bool = std::uint32_t;
using vcl_bitfield = std::uint64_t;

// Opaque handles. Guests of the AvA stack never see real pointers; the
// generated guest library fabricates wire ids with these types.
using vcl_platform_id = struct vcl_platform_rec*;
using vcl_device_id = struct vcl_device_rec*;
using vcl_context = struct vcl_context_rec*;
using vcl_command_queue = struct vcl_command_queue_rec*;
using vcl_mem = struct vcl_mem_rec*;
using vcl_program = struct vcl_program_rec*;
using vcl_kernel = struct vcl_kernel_rec*;
using vcl_event = struct vcl_event_rec*;

// ---------------------------------------------------------------------------
// Error codes (subset of OpenCL's, same style).
// ---------------------------------------------------------------------------

constexpr vcl_int VCL_SUCCESS = 0;
constexpr vcl_int VCL_DEVICE_NOT_FOUND = -1;
constexpr vcl_int VCL_OUT_OF_RESOURCES = -5;
constexpr vcl_int VCL_MEM_OBJECT_ALLOCATION_FAILURE = -4;
constexpr vcl_int VCL_BUILD_PROGRAM_FAILURE = -11;
constexpr vcl_int VCL_INVALID_VALUE = -30;
constexpr vcl_int VCL_INVALID_PLATFORM = -32;
constexpr vcl_int VCL_INVALID_DEVICE = -33;
constexpr vcl_int VCL_INVALID_CONTEXT = -34;
constexpr vcl_int VCL_INVALID_QUEUE_PROPERTIES = -35;
constexpr vcl_int VCL_INVALID_COMMAND_QUEUE = -36;
constexpr vcl_int VCL_INVALID_MEM_OBJECT = -38;
constexpr vcl_int VCL_INVALID_PROGRAM = -44;
constexpr vcl_int VCL_INVALID_PROGRAM_EXECUTABLE = -45;
constexpr vcl_int VCL_INVALID_KERNEL_NAME = -46;
constexpr vcl_int VCL_INVALID_KERNEL = -48;
constexpr vcl_int VCL_INVALID_ARG_INDEX = -49;
constexpr vcl_int VCL_INVALID_ARG_SIZE = -51;
constexpr vcl_int VCL_INVALID_KERNEL_ARGS = -52;
constexpr vcl_int VCL_INVALID_WORK_DIMENSION = -53;
constexpr vcl_int VCL_INVALID_WORK_GROUP_SIZE = -54;
constexpr vcl_int VCL_INVALID_EVENT_WAIT_LIST = -57;
constexpr vcl_int VCL_INVALID_EVENT = -58;
constexpr vcl_int VCL_INVALID_OPERATION = -59;
constexpr vcl_int VCL_INVALID_BUFFER_SIZE = -61;
// Kernel trapped at runtime (out-of-bounds access, div by zero, ...). VCL
// extension; reported as the execution status of the command's event.
constexpr vcl_int VCL_KERNEL_TRAP = -70;

// ---------------------------------------------------------------------------
// Enums and bitfields.
// ---------------------------------------------------------------------------

constexpr vcl_bool VCL_FALSE = 0;
constexpr vcl_bool VCL_TRUE = 1;

// Device types for vclGetDeviceIDs.
constexpr vcl_bitfield VCL_DEVICE_TYPE_GPU = 1u << 0;
constexpr vcl_bitfield VCL_DEVICE_TYPE_ALL = ~0ull;

// Buffer flags.
constexpr vcl_bitfield VCL_MEM_READ_WRITE = 1u << 0;
constexpr vcl_bitfield VCL_MEM_WRITE_ONLY = 1u << 1;
constexpr vcl_bitfield VCL_MEM_READ_ONLY = 1u << 2;
constexpr vcl_bitfield VCL_MEM_COPY_HOST_PTR = 1u << 5;

// Command-queue properties.
constexpr vcl_bitfield VCL_QUEUE_PROFILING_ENABLE = 1u << 1;

// vclGetPlatformInfo params.
constexpr vcl_uint VCL_PLATFORM_NAME = 0x0902;
constexpr vcl_uint VCL_PLATFORM_VENDOR = 0x0903;
constexpr vcl_uint VCL_PLATFORM_VERSION = 0x0901;

// vclGetDeviceInfo params.
constexpr vcl_uint VCL_DEVICE_NAME = 0x102B;
constexpr vcl_uint VCL_DEVICE_GLOBAL_MEM_SIZE = 0x101F;
constexpr vcl_uint VCL_DEVICE_MAX_COMPUTE_UNITS = 0x1002;
constexpr vcl_uint VCL_DEVICE_MAX_WORK_GROUP_SIZE = 0x1004;
constexpr vcl_uint VCL_DEVICE_LOCAL_MEM_SIZE = 0x1023;

// vclGetMemObjectInfo params.
constexpr vcl_uint VCL_MEM_SIZE = 0x1102;
constexpr vcl_uint VCL_MEM_FLAGS = 0x1101;
constexpr vcl_uint VCL_MEM_REFERENCE_COUNT = 0x1105;

// vclGetProgramBuildInfo params.
constexpr vcl_uint VCL_PROGRAM_BUILD_STATUS = 0x1181;
constexpr vcl_uint VCL_PROGRAM_BUILD_LOG = 0x1183;

// Build status values.
constexpr vcl_int VCL_BUILD_NONE = -1;
constexpr vcl_int VCL_BUILD_ERROR = -2;
constexpr vcl_int VCL_BUILD_SUCCESS = 0;

// vclGetEventInfo params.
constexpr vcl_uint VCL_EVENT_COMMAND_EXECUTION_STATUS = 0x11D3;

// Event execution status values.
constexpr vcl_int VCL_COMPLETE = 0x0;
constexpr vcl_int VCL_RUNNING = 0x1;
constexpr vcl_int VCL_SUBMITTED = 0x2;
constexpr vcl_int VCL_QUEUED = 0x3;

// vclGetEventProfilingInfo params (values in device nanoseconds).
constexpr vcl_uint VCL_PROFILING_COMMAND_QUEUED = 0x1280;
constexpr vcl_uint VCL_PROFILING_COMMAND_SUBMIT = 0x1281;
constexpr vcl_uint VCL_PROFILING_COMMAND_START = 0x1282;
constexpr vcl_uint VCL_PROFILING_COMMAND_END = 0x1283;

// vclGetKernelWorkGroupInfo params.
constexpr vcl_uint VCL_KERNEL_WORK_GROUP_SIZE = 0x11B0;
constexpr vcl_uint VCL_KERNEL_LOCAL_MEM_SIZE = 0x11B2;

// ---------------------------------------------------------------------------
// The 39 public entry points.
// ---------------------------------------------------------------------------

// Platform & device discovery. Out arrays may be null when only counting.
vcl_int vclGetPlatformIDs(vcl_uint num_entries, vcl_platform_id* platforms,
                          vcl_uint* num_platforms);
vcl_int vclGetPlatformInfo(vcl_platform_id platform, vcl_uint param_name,
                           size_t param_value_size, void* param_value,
                           size_t* param_value_size_ret);
vcl_int vclGetDeviceIDs(vcl_platform_id platform, vcl_bitfield device_type,
                        vcl_uint num_entries, vcl_device_id* devices,
                        vcl_uint* num_devices);
vcl_int vclGetDeviceInfo(vcl_device_id device, vcl_uint param_name,
                         size_t param_value_size, void* param_value,
                         size_t* param_value_size_ret);

// Contexts.
vcl_context vclCreateContext(const vcl_device_id* devices, vcl_uint num_devices,
                             vcl_int* errcode_ret);
vcl_int vclRetainContext(vcl_context context);
vcl_int vclReleaseContext(vcl_context context);

// Command queues (in-order; optional profiling).
vcl_command_queue vclCreateCommandQueue(vcl_context context,
                                        vcl_device_id device,
                                        vcl_bitfield properties,
                                        vcl_int* errcode_ret);
vcl_int vclRetainCommandQueue(vcl_command_queue queue);
vcl_int vclReleaseCommandQueue(vcl_command_queue queue);

// Buffer objects, allocated from the device's bounded global memory.
vcl_mem vclCreateBuffer(vcl_context context, vcl_bitfield flags, size_t size,
                        const void* host_ptr, vcl_int* errcode_ret);
vcl_int vclRetainMemObject(vcl_mem mem);
vcl_int vclReleaseMemObject(vcl_mem mem);
vcl_int vclGetMemObjectInfo(vcl_mem mem, vcl_uint param_name,
                            size_t param_value_size, void* param_value,
                            size_t* param_value_size_ret);

// Programs: VCL kernel-language source, compiled by vclBuildProgram.
vcl_program vclCreateProgramWithSource(vcl_context context, const char* source,
                                       vcl_int* errcode_ret);
vcl_int vclBuildProgram(vcl_program program, const char* options);
vcl_int vclGetProgramBuildInfo(vcl_program program, vcl_uint param_name,
                               size_t param_value_size, void* param_value,
                               size_t* param_value_size_ret);
vcl_int vclRetainProgram(vcl_program program);
vcl_int vclReleaseProgram(vcl_program program);

// Kernels.
vcl_kernel vclCreateKernel(vcl_program program, const char* kernel_name,
                           vcl_int* errcode_ret);
vcl_int vclRetainKernel(vcl_kernel kernel);
vcl_int vclReleaseKernel(vcl_kernel kernel);

// Kernel arguments. VCL splits OpenCL's clSetKernelArg into three typed entry
// points so the remoting layer never has to guess whether 8 bytes are a
// handle or a scalar (the classic clSetKernelArg ambiguity).
vcl_int vclSetKernelArgScalar(vcl_kernel kernel, vcl_uint arg_index,
                              size_t arg_size, const void* arg_value);
vcl_int vclSetKernelArgBuffer(vcl_kernel kernel, vcl_uint arg_index,
                              vcl_mem buffer);
vcl_int vclSetKernelArgLocal(vcl_kernel kernel, vcl_uint arg_index,
                             size_t local_size);

// Command submission. All enqueues are asynchronous unless stated otherwise;
// `event` (if non-null) receives a fresh event tracking the command.
vcl_int vclEnqueueNDRangeKernel(vcl_command_queue queue, vcl_kernel kernel,
                                vcl_uint work_dim,
                                const size_t* global_work_offset,
                                const size_t* global_work_size,
                                const size_t* local_work_size,
                                vcl_uint num_events_in_wait_list,
                                const vcl_event* event_wait_list,
                                vcl_event* event);
vcl_int vclEnqueueReadBuffer(vcl_command_queue queue, vcl_mem buffer,
                             vcl_bool blocking_read, size_t offset, size_t size,
                             void* ptr, vcl_uint num_events_in_wait_list,
                             const vcl_event* event_wait_list, vcl_event* event);
vcl_int vclEnqueueWriteBuffer(vcl_command_queue queue, vcl_mem buffer,
                              vcl_bool blocking_write, size_t offset,
                              size_t size, const void* ptr,
                              vcl_uint num_events_in_wait_list,
                              const vcl_event* event_wait_list,
                              vcl_event* event);
vcl_int vclEnqueueCopyBuffer(vcl_command_queue queue, vcl_mem src_buffer,
                             vcl_mem dst_buffer, size_t src_offset,
                             size_t dst_offset, size_t size,
                             vcl_uint num_events_in_wait_list,
                             const vcl_event* event_wait_list, vcl_event* event);
vcl_int vclEnqueueFillBuffer(vcl_command_queue queue, vcl_mem buffer,
                             const void* pattern, size_t pattern_size,
                             size_t offset, size_t size,
                             vcl_uint num_events_in_wait_list,
                             const vcl_event* event_wait_list, vcl_event* event);
vcl_int vclEnqueueBarrier(vcl_command_queue queue);

// Synchronization.
vcl_int vclFlush(vcl_command_queue queue);
vcl_int vclFinish(vcl_command_queue queue);
vcl_int vclWaitForEvents(vcl_uint num_events, const vcl_event* event_list);

// Event queries.
vcl_int vclGetEventInfo(vcl_event event, vcl_uint param_name,
                        size_t param_value_size, void* param_value,
                        size_t* param_value_size_ret);
vcl_int vclGetEventProfilingInfo(vcl_event event, vcl_uint param_name,
                                 size_t param_value_size, void* param_value,
                                 size_t* param_value_size_ret);
vcl_int vclRetainEvent(vcl_event event);
vcl_int vclReleaseEvent(vcl_event event);

// Kernel/work-group queries.
vcl_int vclGetKernelWorkGroupInfo(vcl_kernel kernel, vcl_device_id device,
                                  vcl_uint param_name, size_t param_value_size,
                                  void* param_value,
                                  size_t* param_value_size_ret);

}  // extern "C"

#endif  // AVA_SRC_VCL_VCL_H_
