// The VCL device engine: one worker thread per device executing an in-order
// command stream (reads, writes, copies, fills, kernel launches), a bounded
// global-memory budget, event lifecycle, and the virtual-time cost model.
#ifndef AVA_SRC_VCL_DEVICE_H_
#define AVA_SRC_VCL_DEVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/serial.h"
#include "src/vcl/compiler/vm.h"
#include "src/vcl/object_model.h"
#include "src/vcl/silo.h"
#include "src/vcl/vcl.h"

namespace vcl {

class Device {
 public:
  Device(Silo* silo, vcl_device_id self, const SiloConfig& config);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // ------------------------- memory budget ---------------------------------

  // Charges `bytes` against the device's global memory. Returns false when
  // the budget is exhausted (VCL_MEM_OBJECT_ALLOCATION_FAILURE upstream).
  bool ChargeMemory(std::size_t bytes);
  void RefundMemory(std::size_t bytes);
  std::size_t MemoryInUse() const;
  std::size_t MemoryCapacity() const { return config_.device_global_mem_bytes; }

  // ------------------------- command stream --------------------------------

  struct Command {
    enum class Kind : std::uint8_t {
      kRead, kWrite, kCopy, kFill, kNDRange, kMarker,
    };
    Kind kind = Kind::kMarker;
    vcl_command_queue queue = nullptr;  // retained
    vcl_event event = nullptr;          // retained; always present
    std::vector<vcl_event> wait_list;   // retained

    // kRead / kWrite / kFill target.
    vcl_mem buffer = nullptr;  // retained
    std::size_t offset = 0;
    std::size_t size = 0;
    void* host_dst = nullptr;  // kRead destination (caller keeps it alive)
    ava::Bytes host_src;       // kWrite payload (copied at enqueue)
    // Blocking-write fast path: the caller's pointer is used directly (it
    // stays valid until the enqueue call returns, which is after execution).
    const void* host_src_ptr = nullptr;
    ava::Bytes pattern;        // kFill

    // kCopy.
    vcl_mem src = nullptr;  // retained
    std::size_t src_offset = 0;

    // kNDRange.
    vcl_kernel kernel = nullptr;  // retained
    LaunchConfig launch;
    std::vector<KernelArg> args;
    std::vector<vcl_mem> retained_buffers;
  };

  // Takes ownership; stamps queued/submit timestamps; wakes the worker.
  // The caller must have retained every handle referenced by the command.
  void Enqueue(std::unique_ptr<Command> command);

  // Blocks until `event` completes (or fails). Returns its final status
  // (VCL_COMPLETE or a negative error).
  vcl_int WaitEvent(vcl_event event);

  // Blocks until every command previously enqueued on `queue` completed.
  vcl_int FinishQueue(vcl_command_queue queue);

  // Blocks until the device has fully retired every enqueued command
  // (including reference releases). Used by silo teardown.
  void WaitIdle();

  // ------------------------- introspection ---------------------------------

  std::int64_t VirtualNowNs() const;
  SiloCounters Counters() const;
  const SiloConfig& config() const { return config_; }

  // The mutex guarding event status fields; exposed so the API layer can
  // read event state consistently.
  std::mutex& mutex() { return mutex_; }

 private:
  void WorkerLoop();
  void ExecuteCommand(Command* command);
  // Returns the modeled virtual-ns cost of an executed command.
  std::int64_t CommandCostVns(const Command& command,
                              const ExecStats& stats) const;
  // Released after execution but before the completion broadcast, so memory
  // refunds are visible to woken waiters.
  void ReleaseDataRefs(Command* command);
  // Released after the completion broadcast (queue/pending bookkeeping and
  // the event itself).
  void ReleaseControlRefs(Command* command);

  Silo* silo_;
  vcl_device_id self_;
  SiloConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // worker wakeups
  std::condition_variable done_cv_;   // completion broadcasts
  std::deque<std::unique_ptr<Command>> pending_;
  std::uint64_t in_flight_ = 0;  // enqueued but not yet fully retired
  bool stopping_ = false;
  std::int64_t virtual_now_ns_ = 0;

  std::atomic<std::size_t> mem_in_use_{0};
  SiloCounters counters_;

  std::thread worker_;
};

}  // namespace vcl

#endif  // AVA_SRC_VCL_DEVICE_H_
