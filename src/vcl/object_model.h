// Definitions of the opaque handle structs declared in vcl.h, plus the
// ref-counting helpers. Internal to the silo.
#ifndef AVA_SRC_VCL_OBJECT_MODEL_H_
#define AVA_SRC_VCL_OBJECT_MODEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/vcl/compiler/bytecode.h"
#include "src/vcl/compiler/vm.h"
#include "src/vcl/silo.h"
#include "src/vcl/vcl.h"

namespace vcl {
class Device;
}  // namespace vcl

// All records live in the global namespace because the public header
// declares them as `struct vcl_*_rec`.

struct vcl_platform_rec {
  vcl::Silo* silo = nullptr;
  std::string name;
  std::string vendor;
  std::string version;
};

struct vcl_device_rec {
  vcl::Silo* silo = nullptr;
  std::unique_ptr<vcl::Device> engine;
  std::string name;
};

struct vcl_context_rec {
  std::atomic<std::int32_t> refcount{1};
  vcl::Silo* silo = nullptr;
  std::vector<vcl_device_id> devices;
};

struct vcl_command_queue_rec {
  std::atomic<std::int32_t> refcount{1};
  vcl_context context = nullptr;
  vcl_device_id device = nullptr;
  vcl_bitfield properties = 0;
  // Number of enqueued-but-incomplete commands; guarded by the device mutex.
  std::uint64_t pending = 0;
};

struct vcl_mem_rec {
  std::atomic<std::int32_t> refcount{1};
  vcl_context context = nullptr;
  vcl_device_id device = nullptr;  // device whose memory budget holds it
  vcl_bitfield flags = 0;
  std::size_t size = 0;
  std::unique_ptr<std::uint8_t[]> data;
};

struct vcl_program_rec {
  std::atomic<std::int32_t> refcount{1};
  vcl_context context = nullptr;
  std::string source;
  vcl_int build_status = VCL_BUILD_NONE;
  std::string build_log;
  vcl::CompiledProgram compiled;
};

struct vcl_kernel_rec {
  std::atomic<std::int32_t> refcount{1};
  vcl_program program = nullptr;
  const vcl::CompiledKernel* compiled = nullptr;
  // Pending argument bindings (buffer args hold a reference to the vcl_mem
  // so the buffer outlives the binding). Guarded by the device mutex during
  // enqueue snapshots; API-level races on the same kernel object are the
  // application's responsibility, as in OpenCL.
  struct ArgBinding {
    vcl::KernelArg::Kind kind = vcl::KernelArg::Kind::kUnset;
    std::uint64_t scalar_cell = 0;
    vcl_mem buffer = nullptr;
    std::size_t local_size = 0;
  };
  std::vector<ArgBinding> args;
};

struct vcl_event_rec {
  std::atomic<std::int32_t> refcount{1};
  vcl_device_id device = nullptr;
  // Execution status: VCL_QUEUED/SUBMITTED/RUNNING/COMPLETE or a negative
  // error code. Guarded by the device mutex; broadcast on change.
  vcl_int status = VCL_QUEUED;
  std::string trap_message;
  // Profiling timestamps in virtual device nanoseconds.
  std::int64_t queued_vns = 0;
  std::int64_t submit_vns = 0;
  std::int64_t start_vns = 0;
  std::int64_t end_vns = 0;
};

namespace vcl {

// Ref-count helpers. `Release` returns true when it destroyed the object.
template <typename Rec>
void RetainRec(Rec* rec) {
  rec->refcount.fetch_add(1, std::memory_order_relaxed);
}

template <typename Rec>
bool ReleaseRefOnly(Rec* rec) {
  return rec->refcount.fetch_sub(1, std::memory_order_acq_rel) == 1;
}

// Internal release paths that locate the owning silo through the object
// graph instead of the process-wide default. The device worker must use
// these: during silo teardown the global slot is already being replaced.
void ReleaseContextRef(vcl_context context);
void ReleaseQueueRef(vcl_command_queue queue);
void ReleaseMemRef(vcl_mem mem);
void ReleaseProgramRef(vcl_program program);
void ReleaseKernelRef(vcl_kernel kernel);
void ReleaseEventRef(vcl_event event);

}  // namespace vcl

#endif  // AVA_SRC_VCL_OBJECT_MODEL_H_
