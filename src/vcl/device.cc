#include "src/vcl/device.h"

#include <cstring>
#include <utility>

#include "src/common/log.h"

namespace vcl {

Device::Device(Silo* silo, vcl_device_id self, const SiloConfig& config)
    : silo_(silo), self_(self), config_(config) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

Device::~Device() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (worker_.joinable()) {
    worker_.join();
  }
}

bool Device::ChargeMemory(std::size_t bytes) {
  std::size_t current = mem_in_use_.load(std::memory_order_relaxed);
  while (true) {
    if (current + bytes > config_.device_global_mem_bytes) {
      return false;
    }
    if (mem_in_use_.compare_exchange_weak(current, current + bytes,
                                          std::memory_order_relaxed)) {
      return true;
    }
  }
}

void Device::RefundMemory(std::size_t bytes) {
  mem_in_use_.fetch_sub(bytes, std::memory_order_relaxed);
}

std::size_t Device::MemoryInUse() const {
  return mem_in_use_.load(std::memory_order_relaxed);
}

void Device::Enqueue(std::unique_ptr<Command> command) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    command->event->status = VCL_SUBMITTED;
    command->event->queued_vns = virtual_now_ns_;
    command->event->submit_vns = virtual_now_ns_;
    if (command->queue != nullptr) {
      ++command->queue->pending;
    }
    ++in_flight_;
    pending_.push_back(std::move(command));
  }
  work_cv_.notify_one();
}

void Device::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

vcl_int Device::WaitEvent(vcl_event event) {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return event->status == VCL_COMPLETE || event->status < 0;
  });
  return event->status == VCL_COMPLETE ? VCL_SUCCESS : event->status;
}

vcl_int Device::FinishQueue(vcl_command_queue queue) {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return queue->pending == 0; });
  return VCL_SUCCESS;
}

std::int64_t Device::VirtualNowNs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return virtual_now_ns_;
}

SiloCounters Device::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SiloCounters c = counters_;
  c.virtual_time_ns = virtual_now_ns_;
  return c;
}

void Device::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stopping_) {
        return;
      }
      continue;
    }
    std::unique_ptr<Command> command = std::move(pending_.front());
    pending_.pop_front();
    command->event->status = VCL_RUNNING;
    command->event->start_vns = virtual_now_ns_;
    lock.unlock();

    // Wait-list events were all enqueued before this command on this
    // in-order device, so they are already complete; a failed dependency
    // fails this command.
    vcl_int dep_status = VCL_SUCCESS;
    for (vcl_event dep : command->wait_list) {
      vcl_int s = WaitEvent(dep);
      if (s != VCL_SUCCESS) {
        dep_status = s;
      }
    }

    ExecStats stats;
    vcl_int final_status = VCL_COMPLETE;
    std::string trap_message;
    if (dep_status != VCL_SUCCESS) {
      final_status = dep_status;
      trap_message = "failed event in wait list";
    } else {
      switch (command->kind) {
        case Command::Kind::kRead:
          std::memcpy(command->host_dst,
                      command->buffer->data.get() + command->offset,
                      command->size);
          break;
        case Command::Kind::kWrite:
          std::memcpy(command->buffer->data.get() + command->offset,
                      command->host_src_ptr != nullptr
                          ? command->host_src_ptr
                          : command->host_src.data(),
                      command->size);
          break;
        case Command::Kind::kCopy:
          std::memmove(command->buffer->data.get() + command->offset,
                       command->src->data.get() + command->src_offset,
                       command->size);
          break;
        case Command::Kind::kFill: {
          std::uint8_t* dst = command->buffer->data.get() + command->offset;
          const std::size_t pat = command->pattern.size();
          for (std::size_t i = 0; i < command->size; i += pat) {
            std::memcpy(dst + i, command->pattern.data(),
                        std::min(pat, command->size - i));
          }
          break;
        }
        case Command::Kind::kNDRange: {
          auto result =
              ExecuteKernel(*command->kernel->compiled, command->launch,
                            command->args, config_.max_instructions_per_item);
          if (result.ok()) {
            stats = *result;
          } else {
            final_status = VCL_KERNEL_TRAP;
            trap_message = result.status().message();
            AVA_LOG(WARNING) << "kernel trap: " << trap_message;
          }
          break;
        }
        case Command::Kind::kMarker:
          break;
      }
    }

    // Release data references (buffers, kernel) BEFORE signaling completion:
    // memory refunds must be visible to a caller that wakes on the event and
    // immediately retries an allocation.
    ReleaseDataRefs(command.get());

    lock.lock();
    const std::int64_t cost = CommandCostVns(*command, stats);
    virtual_now_ns_ += cost;
    ++counters_.commands_executed;
    counters_.instructions_executed += stats.instructions;
    if (command->kind == Command::Kind::kNDRange) {
      ++counters_.kernel_launches;
    } else if (command->kind != Command::Kind::kMarker) {
      counters_.bytes_transferred += command->size;
    }
    command->event->status = final_status;
    command->event->trap_message = std::move(trap_message);
    command->event->end_vns = virtual_now_ns_;
    if (command->queue != nullptr) {
      --command->queue->pending;
    }
    lock.unlock();
    done_cv_.notify_all();
    ReleaseControlRefs(command.get());
    command.reset();
    lock.lock();
    --in_flight_;
    if (in_flight_ == 0) {
      done_cv_.notify_all();
    }
  }
}

std::int64_t Device::CommandCostVns(const Command& command,
                                    const ExecStats& stats) const {
  double vns = static_cast<double>(config_.vns_per_command);
  switch (command.kind) {
    case Command::Kind::kRead:
    case Command::Kind::kWrite:
    case Command::Kind::kCopy:
    case Command::Kind::kFill:
      vns += static_cast<double>(command.size) * config_.vns_per_byte;
      break;
    case Command::Kind::kNDRange:
      vns += static_cast<double>(stats.instructions) *
             config_.vns_per_instruction /
             static_cast<double>(config_.compute_units);
      vns += static_cast<double>(stats.bytes_accessed) * config_.vns_per_byte;
      break;
    case Command::Kind::kMarker:
      break;
  }
  return static_cast<std::int64_t>(vns);
}

void Device::ReleaseDataRefs(Command* command) {
  if (command->buffer != nullptr) {
    ReleaseMemRef(command->buffer);
    command->buffer = nullptr;
  }
  if (command->src != nullptr) {
    ReleaseMemRef(command->src);
    command->src = nullptr;
  }
  if (command->kernel != nullptr) {
    ReleaseKernelRef(command->kernel);
    command->kernel = nullptr;
  }
  for (vcl_mem m : command->retained_buffers) {
    ReleaseMemRef(m);
  }
  command->retained_buffers.clear();
}

void Device::ReleaseControlRefs(Command* command) {
  if (command->queue != nullptr) {
    ReleaseQueueRef(command->queue);
  }
  if (command->event != nullptr) {
    ReleaseEventRef(command->event);
  }
  for (vcl_event dep : command->wait_list) {
    ReleaseEventRef(dep);
  }
}

}  // namespace vcl
