#include "src/vcl/compiler/lexer.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <unordered_map>

namespace vcl {
namespace {

const std::unordered_map<std::string_view, TokKind>& KeywordTable() {
  static const auto* table = new std::unordered_map<std::string_view, TokKind>{
      {"__kernel", TokKind::kKwKernel}, {"kernel", TokKind::kKwKernel},
      {"__global", TokKind::kKwGlobal}, {"global", TokKind::kKwGlobal},
      {"__local", TokKind::kKwLocal},   {"local", TokKind::kKwLocal},
      {"const", TokKind::kKwConst},     {"void", TokKind::kKwVoid},
      {"int", TokKind::kKwInt},         {"uint", TokKind::kKwUint},
      {"long", TokKind::kKwLong},       {"size_t", TokKind::kKwLong},
      {"float", TokKind::kKwFloat},     {"if", TokKind::kKwIf},
      {"else", TokKind::kKwElse},       {"for", TokKind::kKwFor},
      {"while", TokKind::kKwWhile},     {"do", TokKind::kKwDo},
      {"return", TokKind::kKwReturn},   {"break", TokKind::kKwBreak},
      {"continue", TokKind::kKwContinue},
  };
  return *table;
}

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view source) : src_(source) {}

  ava::Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      AVA_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      Token tok;
      tok.line = line_;
      tok.column = column_;
      if (AtEnd()) {
        tok.kind = TokKind::kEof;
        out.push_back(std::move(tok));
        return out;
      }
      char c = Peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        LexIdentifier(&tok);
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && pos_ + 1 < src_.size() &&
                  std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
        AVA_RETURN_IF_ERROR(LexNumber(&tok));
      } else {
        AVA_RETURN_IF_ERROR(LexPunct(&tok));
      }
      out.push_back(std::move(tok));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return src_[pos_]; }
  char PeekAt(std::size_t delta) const {
    return pos_ + delta < src_.size() ? src_[pos_ + delta] : '\0';
  }

  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  bool Match(char expected) {
    if (AtEnd() || Peek() != expected) {
      return false;
    }
    Advance();
    return true;
  }

  ava::Status Error(const std::string& message) const {
    return ava::InvalidArgument(std::to_string(line_) + ":" +
                                std::to_string(column_) + ": " + message);
  }

  ava::Status SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        Advance();
      } else if (c == '/' && PeekAt(1) == '/') {
        while (!AtEnd() && Peek() != '\n') {
          Advance();
        }
      } else if (c == '/' && PeekAt(1) == '*') {
        Advance();
        Advance();
        bool closed = false;
        while (!AtEnd()) {
          if (Peek() == '*' && PeekAt(1) == '/') {
            Advance();
            Advance();
            closed = true;
            break;
          }
          Advance();
        }
        if (!closed) {
          return Error("unterminated block comment");
        }
      } else {
        break;
      }
    }
    return ava::OkStatus();
  }

  void LexIdentifier(Token* tok) {
    std::string text;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      text.push_back(Advance());
    }
    auto it = KeywordTable().find(text);
    if (it != KeywordTable().end()) {
      tok->kind = it->second;
    } else {
      tok->kind = TokKind::kIdent;
    }
    tok->text = std::move(text);
  }

  ava::Status LexNumber(Token* tok) {
    std::string text;
    bool is_float = false;
    bool is_hex = false;
    if (Peek() == '0' && (PeekAt(1) == 'x' || PeekAt(1) == 'X')) {
      is_hex = true;
      text.push_back(Advance());
      text.push_back(Advance());
      while (!AtEnd() && std::isxdigit(static_cast<unsigned char>(Peek()))) {
        text.push_back(Advance());
      }
      if (text.size() == 2) {
        return Error("malformed hex literal");
      }
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        text.push_back(Advance());
      }
      if (!AtEnd() && Peek() == '.') {
        is_float = true;
        text.push_back(Advance());
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          text.push_back(Advance());
        }
      }
      if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
        is_float = true;
        text.push_back(Advance());
        if (!AtEnd() && (Peek() == '+' || Peek() == '-')) {
          text.push_back(Advance());
        }
        if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
          return Error("malformed float exponent");
        }
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          text.push_back(Advance());
        }
      }
    }
    // Suffixes: f/F force float; u/U are accepted and ignored.
    if (!AtEnd() && (Peek() == 'f' || Peek() == 'F') && !is_hex) {
      is_float = true;
      Advance();
    } else if (!AtEnd() && (Peek() == 'u' || Peek() == 'U')) {
      Advance();
    }
    tok->text = text;
    if (is_float) {
      tok->kind = TokKind::kFloatLit;
      tok->float_value = std::strtof(text.c_str(), nullptr);
    } else {
      tok->kind = TokKind::kIntLit;
      tok->int_value = std::strtoll(text.c_str(), nullptr, is_hex ? 16 : 10);
    }
    return ava::OkStatus();
  }

  ava::Status LexPunct(Token* tok) {
    char c = Advance();
    switch (c) {
      case '(':
        tok->kind = TokKind::kLParen;
        return ava::OkStatus();
      case ')':
        tok->kind = TokKind::kRParen;
        return ava::OkStatus();
      case '{':
        tok->kind = TokKind::kLBrace;
        return ava::OkStatus();
      case '}':
        tok->kind = TokKind::kRBrace;
        return ava::OkStatus();
      case '[':
        tok->kind = TokKind::kLBracket;
        return ava::OkStatus();
      case ']':
        tok->kind = TokKind::kRBracket;
        return ava::OkStatus();
      case ';':
        tok->kind = TokKind::kSemi;
        return ava::OkStatus();
      case ',':
        tok->kind = TokKind::kComma;
        return ava::OkStatus();
      case '+':
        tok->kind = Match('+')   ? TokKind::kPlusPlus
                    : Match('=') ? TokKind::kPlusAssign
                                 : TokKind::kPlus;
        return ava::OkStatus();
      case '-':
        tok->kind = Match('-')   ? TokKind::kMinusMinus
                    : Match('=') ? TokKind::kMinusAssign
                                 : TokKind::kMinus;
        return ava::OkStatus();
      case '*':
        tok->kind = Match('=') ? TokKind::kStarAssign : TokKind::kStar;
        return ava::OkStatus();
      case '/':
        tok->kind = Match('=') ? TokKind::kSlashAssign : TokKind::kSlash;
        return ava::OkStatus();
      case '%':
        tok->kind = TokKind::kPercent;
        return ava::OkStatus();
      case '=':
        tok->kind = Match('=') ? TokKind::kEq : TokKind::kAssign;
        return ava::OkStatus();
      case '!':
        tok->kind = Match('=') ? TokKind::kNe : TokKind::kBang;
        return ava::OkStatus();
      case '<':
        tok->kind = Match('<')   ? TokKind::kShl
                    : Match('=') ? TokKind::kLe
                                 : TokKind::kLt;
        return ava::OkStatus();
      case '>':
        tok->kind = Match('>')   ? TokKind::kShr
                    : Match('=') ? TokKind::kGe
                                 : TokKind::kGt;
        return ava::OkStatus();
      case '&':
        tok->kind = Match('&') ? TokKind::kAndAnd : TokKind::kAmp;
        return ava::OkStatus();
      case '|':
        tok->kind = Match('|') ? TokKind::kOrOr : TokKind::kPipe;
        return ava::OkStatus();
      case '^':
        tok->kind = TokKind::kCaret;
        return ava::OkStatus();
      case '?':
        tok->kind = TokKind::kQuestion;
        return ava::OkStatus();
      case ':':
        tok->kind = TokKind::kColon;
        return ava::OkStatus();
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

ava::Result<std::vector<Token>> Lex(std::string_view source) {
  return LexerImpl(source).Run();
}

std::string_view TokKindName(TokKind kind) {
  switch (kind) {
    case TokKind::kEof:
      return "end of input";
    case TokKind::kIdent:
      return "identifier";
    case TokKind::kIntLit:
      return "integer literal";
    case TokKind::kFloatLit:
      return "float literal";
    case TokKind::kKwKernel:
      return "'__kernel'";
    case TokKind::kKwGlobal:
      return "'__global'";
    case TokKind::kKwLocal:
      return "'__local'";
    case TokKind::kKwConst:
      return "'const'";
    case TokKind::kKwVoid:
      return "'void'";
    case TokKind::kKwInt:
      return "'int'";
    case TokKind::kKwUint:
      return "'uint'";
    case TokKind::kKwLong:
      return "'long'";
    case TokKind::kKwFloat:
      return "'float'";
    case TokKind::kKwIf:
      return "'if'";
    case TokKind::kKwElse:
      return "'else'";
    case TokKind::kKwFor:
      return "'for'";
    case TokKind::kKwWhile:
      return "'while'";
    case TokKind::kKwDo:
      return "'do'";
    case TokKind::kKwReturn:
      return "'return'";
    case TokKind::kKwBreak:
      return "'break'";
    case TokKind::kKwContinue:
      return "'continue'";
    case TokKind::kLParen:
      return "'('";
    case TokKind::kRParen:
      return "')'";
    case TokKind::kLBrace:
      return "'{'";
    case TokKind::kRBrace:
      return "'}'";
    case TokKind::kLBracket:
      return "'['";
    case TokKind::kRBracket:
      return "']'";
    case TokKind::kSemi:
      return "';'";
    case TokKind::kComma:
      return "','";
    case TokKind::kPlus:
      return "'+'";
    case TokKind::kMinus:
      return "'-'";
    case TokKind::kStar:
      return "'*'";
    case TokKind::kSlash:
      return "'/'";
    case TokKind::kPercent:
      return "'%'";
    case TokKind::kAssign:
      return "'='";
    case TokKind::kPlusAssign:
      return "'+='";
    case TokKind::kMinusAssign:
      return "'-='";
    case TokKind::kStarAssign:
      return "'*='";
    case TokKind::kSlashAssign:
      return "'/='";
    case TokKind::kPlusPlus:
      return "'++'";
    case TokKind::kMinusMinus:
      return "'--'";
    case TokKind::kEq:
      return "'=='";
    case TokKind::kNe:
      return "'!='";
    case TokKind::kLt:
      return "'<'";
    case TokKind::kLe:
      return "'<='";
    case TokKind::kGt:
      return "'>'";
    case TokKind::kGe:
      return "'>='";
    case TokKind::kAndAnd:
      return "'&&'";
    case TokKind::kOrOr:
      return "'||'";
    case TokKind::kBang:
      return "'!'";
    case TokKind::kAmp:
      return "'&'";
    case TokKind::kPipe:
      return "'|'";
    case TokKind::kCaret:
      return "'^'";
    case TokKind::kShl:
      return "'<<'";
    case TokKind::kShr:
      return "'>>'";
    case TokKind::kQuestion:
      return "'?'";
    case TokKind::kColon:
      return "':'";
  }
  return "unknown token";
}

}  // namespace vcl
