// The VCL kernel VM: executes a CompiledKernel over an NDRange with
// work-groups, barriers, local memory, and bounds-checked device memory
// access. Used by the VCL device engine; has no knowledge of the API layer.
#ifndef AVA_SRC_VCL_COMPILER_VM_H_
#define AVA_SRC_VCL_COMPILER_VM_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/vcl/compiler/bytecode.h"

namespace vcl {

struct LaunchConfig {
  std::uint32_t work_dim = 1;
  std::size_t global_offset[3] = {0, 0, 0};
  std::size_t global_size[3] = {1, 1, 1};
  std::size_t local_size[3] = {1, 1, 1};
};

// One bound kernel argument. The device engine builds these from the
// vclSetKernelArg* calls before launching.
struct KernelArg {
  enum class Kind : std::uint8_t { kUnset, kScalar, kBuffer, kLocal };
  Kind kind = Kind::kUnset;
  std::uint64_t scalar_cell = 0;    // kScalar: the 64-bit VM cell value
  std::uint8_t* buffer_data = nullptr;  // kBuffer: device memory
  std::size_t buffer_size = 0;
  std::size_t local_size = 0;       // kLocal: bytes of local memory
};

struct ExecStats {
  std::uint64_t instructions = 0;
  std::uint64_t work_items = 0;
  std::uint64_t bytes_accessed = 0;  // global memory traffic (loads + stores)
};

// Executes the full NDRange. Returns kernel-trap errors (out-of-bounds,
// divide-by-zero, barrier divergence, instruction budget exceeded) as
// non-OK Status. `max_instructions_per_item` guards infinite loops (0 means
// a default of 1<<26).
ava::Result<ExecStats> ExecuteKernel(const CompiledKernel& kernel,
                                     const LaunchConfig& config,
                                     const std::vector<KernelArg>& args,
                                     std::uint64_t max_instructions_per_item = 0);

// Converts raw scalar argument bytes (from vclSetKernelArgScalar) into a VM
// cell per the parameter's declared scalar type. Returns an error if the
// size does not match the declared type.
ava::Result<std::uint64_t> ScalarArgToCell(Scalar declared, const void* bytes,
                                           std::size_t size);

}  // namespace vcl

#endif  // AVA_SRC_VCL_COMPILER_VM_H_
