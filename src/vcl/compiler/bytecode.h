// Bytecode for the VCL kernel VM: a typed stack machine with explicit
// memory-space-tagged pointers and resumable barriers.
//
// Runtime value model: every stack slot and variable slot is a raw 64-bit
// cell. Integer ops treat cells as int64 (int/uint are 32-bit at the language
// level but computed in 64-bit two's complement and truncated on store to
// memory); float ops use the low 32 bits as an IEEE float; pointers are
// packed as  [space:2][block:14][byte_offset:48].
#ifndef AVA_SRC_VCL_COMPILER_BYTECODE_H_
#define AVA_SRC_VCL_COMPILER_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/vcl/compiler/ast.h"

namespace vcl {

enum class Op : std::uint8_t {
  kNop = 0,
  kPushI,   // imm.i
  kPushF,   // imm.f
  kLoadSlot,   // a = slot
  kStoreSlot,  // a = slot
  kDup,
  kPop,
  // Integer arithmetic (int64 cells).
  kAddI, kSubI, kMulI, kDivI, kRemI, kNegI,
  kAndI, kOrI, kXorI, kShlI, kShrI,
  // Float arithmetic (f32 in low bits).
  kAddF, kSubF, kMulF, kDivF, kNegF,
  // Comparisons push 0/1 as int64.
  kEqI, kNeI, kLtI, kLeI, kGtI, kGeI,
  kEqF, kNeF, kLtF, kLeF, kGtF, kGeF,
  kLogNot,
  // Conversions.
  kI2F, kF2I,
  // Control flow. a = absolute instruction index.
  kJmp, kJz, kJnz,
  // Pointers. a = element byte size; pops (index:int, base:ptr) -> ptr.
  kPtrAdd,
  // Memory. a = MemElem; pops ptr -> pushes value / pops (value, ptr).
  kLd, kSt,
  // Work-item geometry; pops dim:int, pushes int64.
  kGetGlobalId, kGetLocalId, kGetGroupId,
  kGetGlobalSize, kGetLocalSize, kGetNumGroups,
  // Work-group barrier; a = static barrier id.
  kBarrier,
  // Builtin math; a = Builtin id. Pops arity operands, pushes result.
  kBuiltin,
  // End of work-item.
  kRet,
};

// Element types addressable through pointers.
enum class MemElem : std::int32_t { kF32 = 0, kI32 = 1, kU32 = 2, kI64 = 3 };

std::size_t MemElemSize(MemElem e);
MemElem MemElemFromScalar(Scalar s);

enum class Builtin : std::int32_t {
  kSqrt, kFabs, kExp, kLog, kPow, kFmax, kFmin, kFloor, kCeil, kSin, kCos,
  kMinI, kMaxI, kAbsI,
};

int BuiltinArity(Builtin b);

struct Instr {
  Op op = Op::kNop;
  std::int32_t a = 0;  // slot index / jump target / elem size / builtin id
  union {
    std::int64_t i;
    float f;
  } imm{0};
};

// Pointer packing.
inline constexpr std::uint64_t kPtrSpaceShift = 62;
inline constexpr std::uint64_t kPtrBlockShift = 48;
inline constexpr std::uint64_t kPtrBlockMask = 0x3FFF;
inline constexpr std::uint64_t kPtrOffsetMask = (1ull << 48) - 1;

// Space tags inside a packed pointer.
enum class PtrSpace : std::uint64_t { kGlobal = 0, kLocal = 1, kPrivate = 2 };

inline std::uint64_t PackPtr(PtrSpace space, std::uint32_t block,
                             std::uint64_t byte_offset) {
  return (static_cast<std::uint64_t>(space) << kPtrSpaceShift) |
         ((static_cast<std::uint64_t>(block) & kPtrBlockMask)
          << kPtrBlockShift) |
         (byte_offset & kPtrOffsetMask);
}
inline PtrSpace PtrSpaceOf(std::uint64_t p) {
  return static_cast<PtrSpace>(p >> kPtrSpaceShift);
}
inline std::uint32_t PtrBlockOf(std::uint64_t p) {
  return static_cast<std::uint32_t>((p >> kPtrBlockShift) & kPtrBlockMask);
}
inline std::uint64_t PtrOffsetOf(std::uint64_t p) { return p & kPtrOffsetMask; }

// ---------------------------------------------------------------------------
// Compiled artifacts.
// ---------------------------------------------------------------------------

enum class ParamKind : std::uint8_t { kScalar, kGlobalPtr, kLocalPtr };

struct ParamInfo {
  ParamKind kind = ParamKind::kScalar;
  Scalar scalar = Scalar::kInt;  // scalar type, or pointee type for pointers
  std::string name;
  bool pointee_const = false;    // for kGlobalPtr: declared const (read-only)
};

// One work-group-local memory block: either a fixed-size __local array
// declared in the kernel, or a __local pointer parameter whose size is set
// by vclSetKernelArgLocal (byte_size == 0, param_index >= 0).
struct LocalBlockInfo {
  std::size_t byte_size = 0;
  int param_index = -1;
};

struct PrivateBlockInfo {
  std::size_t byte_size = 0;
};

struct CompiledKernel {
  std::string name;
  std::vector<ParamInfo> params;
  std::vector<Instr> code;
  std::uint32_t num_slots = 0;  // scalar variable slots (params first)
  std::vector<LocalBlockInfo> local_blocks;
  std::vector<PrivateBlockInfo> private_blocks;
  int num_barriers = 0;
  std::size_t fixed_local_bytes = 0;  // sum of fixed-size local blocks
};

struct CompiledProgram {
  std::vector<CompiledKernel> kernels;

  const CompiledKernel* FindKernel(const std::string& name) const {
    for (const auto& k : kernels) {
      if (k.name == name) {
        return &k;
      }
    }
    return nullptr;
  }
};

}  // namespace vcl

#endif  // AVA_SRC_VCL_COMPILER_BYTECODE_H_
