// AST for the VCL kernel language. Built by the parser, consumed by the
// bytecode generator. Ownership is strict unique_ptr parent→child.
#ifndef AVA_SRC_VCL_COMPILER_AST_H_
#define AVA_SRC_VCL_COMPILER_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vcl {

// -------------------------------- Types ------------------------------------

enum class Scalar : std::uint8_t {
  kVoid,
  kInt,    // 32-bit signed (stored as i64 at runtime)
  kUint,   // 32-bit unsigned (stored as i64 at runtime)
  kLong,   // 64-bit signed (also used for size_t)
  kFloat,  // 32-bit IEEE
};

enum class MemSpace : std::uint8_t {
  kNone,     // scalar value, not a pointer
  kGlobal,   // device global memory (a kernel-argument buffer binding)
  kLocal,    // work-group local memory
  kPrivate,  // per-work-item arrays declared in the kernel body
};

// A scalar type or a pointer-to-scalar in some memory space.
struct Type {
  Scalar scalar = Scalar::kVoid;
  MemSpace space = MemSpace::kNone;  // kNone => not a pointer
  bool is_const = false;

  bool IsPointer() const { return space != MemSpace::kNone; }
  bool IsFloat() const { return !IsPointer() && scalar == Scalar::kFloat; }
  bool IsInteger() const {
    return !IsPointer() && (scalar == Scalar::kInt || scalar == Scalar::kUint ||
                            scalar == Scalar::kLong);
  }
  bool IsVoid() const { return !IsPointer() && scalar == Scalar::kVoid; }

  static Type Void() { return Type{Scalar::kVoid, MemSpace::kNone, false}; }
  static Type Int() { return Type{Scalar::kInt, MemSpace::kNone, false}; }
  static Type Uint() { return Type{Scalar::kUint, MemSpace::kNone, false}; }
  static Type Long() { return Type{Scalar::kLong, MemSpace::kNone, false}; }
  static Type Float() { return Type{Scalar::kFloat, MemSpace::kNone, false}; }
  static Type Pointer(Scalar elem, MemSpace space, bool is_const = false) {
    return Type{elem, space, is_const};
  }

  bool operator==(const Type& o) const {
    return scalar == o.scalar && space == o.space;
  }
};

// Byte width of a scalar element in device memory.
std::size_t ScalarSize(Scalar s);
std::string TypeName(const Type& t);

// ----------------------------- Expressions ---------------------------------

enum class ExprKind : std::uint8_t {
  kIntLit,
  kFloatLit,
  kVarRef,
  kUnary,    // -x, !x, ~x is unsupported
  kBinary,   // arithmetic / comparison / logical / bitwise
  kAssign,   // =, +=, -=, *=, /= ; target is VarRef or Index
  kIndex,    // ptr[expr] or array[expr]
  kCall,     // builtin call
  kCast,     // (type) expr
  kTernary,  // cond ? a : b
  kIncDec,   // ++x, x++, --x, x--
};

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kRem,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLogAnd, kLogOr,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
};

enum class UnOp : std::uint8_t { kNeg, kLogNot };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  int line = 0;

  // Filled by the type checker during codegen.
  Type type;

  // kIntLit / kFloatLit
  std::int64_t int_value = 0;
  float float_value = 0.0f;

  // kVarRef / kCall
  std::string name;

  // kUnary / kBinary / kAssign / kIndex / kCast / kTernary / kIncDec
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  bool is_prefix = false;     // kIncDec
  bool is_increment = false;  // kIncDec: ++ vs --
  BinOp assign_op = BinOp::kAdd;  // compound assignment operator
  bool is_compound_assign = false;
  Type cast_type;             // kCast

  ExprPtr a;                  // operand / lhs / base / cond / callee-arg0
  ExprPtr b;                  // rhs / index / then
  ExprPtr c;                  // else
  std::vector<ExprPtr> args;  // kCall arguments
};

// ----------------------------- Statements ----------------------------------

enum class StmtKind : std::uint8_t {
  kBlock,
  kDecl,
  kExpr,
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  int line = 0;

  // kBlock
  std::vector<StmtPtr> body;

  // kDecl: a single declarator. `array_size > 0` means a fixed-size array
  // (private, or __local when decl_type.space == kLocal).
  Type decl_type;
  std::string decl_name;
  std::int64_t array_size = 0;
  ExprPtr init;

  // kExpr / kReturn
  ExprPtr expr;

  // kIf / kWhile / kDoWhile / kFor
  ExprPtr cond;
  StmtPtr then_branch;
  StmtPtr else_branch;
  StmtPtr for_init;   // kFor (a kDecl or kExpr statement)
  ExprPtr for_step;   // kFor
};

// ------------------------------- Kernels -----------------------------------

struct KernelParam {
  Type type;            // pointer (global/local) or scalar
  std::string name;
};

struct KernelDef {
  std::string name;
  std::vector<KernelParam> params;
  StmtPtr body;  // kBlock
  int line = 0;
};

struct Program {
  std::vector<KernelDef> kernels;
};

}  // namespace vcl

#endif  // AVA_SRC_VCL_COMPILER_AST_H_
