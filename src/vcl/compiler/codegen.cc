#include "src/vcl/compiler/codegen.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/vcl/compiler/parser.h"

namespace vcl {

std::size_t ScalarSize(Scalar s) {
  switch (s) {
    case Scalar::kVoid:
      return 0;
    case Scalar::kInt:
    case Scalar::kUint:
    case Scalar::kFloat:
      return 4;
    case Scalar::kLong:
      return 8;
  }
  return 0;
}

std::string TypeName(const Type& t) {
  std::string name;
  switch (t.scalar) {
    case Scalar::kVoid:
      name = "void";
      break;
    case Scalar::kInt:
      name = "int";
      break;
    case Scalar::kUint:
      name = "uint";
      break;
    case Scalar::kLong:
      name = "long";
      break;
    case Scalar::kFloat:
      name = "float";
      break;
  }
  switch (t.space) {
    case MemSpace::kNone:
      break;
    case MemSpace::kGlobal:
      name = "__global " + name + "*";
      break;
    case MemSpace::kLocal:
      name = "__local " + name + "*";
      break;
    case MemSpace::kPrivate:
      name = "__private " + name + "*";
      break;
  }
  return name;
}

std::size_t MemElemSize(MemElem e) {
  switch (e) {
    case MemElem::kF32:
    case MemElem::kI32:
    case MemElem::kU32:
      return 4;
    case MemElem::kI64:
      return 8;
  }
  return 0;
}

MemElem MemElemFromScalar(Scalar s) {
  switch (s) {
    case Scalar::kFloat:
      return MemElem::kF32;
    case Scalar::kInt:
      return MemElem::kI32;
    case Scalar::kUint:
      return MemElem::kU32;
    case Scalar::kLong:
      return MemElem::kI64;
    case Scalar::kVoid:
      break;
  }
  return MemElem::kI32;
}

int BuiltinArity(Builtin b) {
  switch (b) {
    case Builtin::kPow:
    case Builtin::kFmax:
    case Builtin::kFmin:
    case Builtin::kMinI:
    case Builtin::kMaxI:
      return 2;
    default:
      return 1;
  }
}

namespace {

struct BuiltinSig {
  Builtin id;
  int arity;
  bool is_float;  // float args & result; otherwise integer
};

const std::unordered_map<std::string, BuiltinSig>& BuiltinTable() {
  static const auto* table = new std::unordered_map<std::string, BuiltinSig>{
      {"sqrt", {Builtin::kSqrt, 1, true}},
      {"fabs", {Builtin::kFabs, 1, true}},
      {"exp", {Builtin::kExp, 1, true}},
      {"log", {Builtin::kLog, 1, true}},
      {"pow", {Builtin::kPow, 2, true}},
      {"fmax", {Builtin::kFmax, 2, true}},
      {"fmin", {Builtin::kFmin, 2, true}},
      {"floor", {Builtin::kFloor, 1, true}},
      {"ceil", {Builtin::kCeil, 1, true}},
      {"sin", {Builtin::kSin, 1, true}},
      {"cos", {Builtin::kCos, 1, true}},
      {"min", {Builtin::kMinI, 2, false}},
      {"max", {Builtin::kMaxI, 2, false}},
      {"abs", {Builtin::kAbsI, 1, false}},
  };
  return *table;
}

// Work-item geometry functions mapped to their opcode.
const std::unordered_map<std::string, Op>& GeometryTable() {
  static const auto* table = new std::unordered_map<std::string, Op>{
      {"get_global_id", Op::kGetGlobalId},
      {"get_local_id", Op::kGetLocalId},
      {"get_group_id", Op::kGetGroupId},
      {"get_global_size", Op::kGetGlobalSize},
      {"get_local_size", Op::kGetLocalSize},
      {"get_num_groups", Op::kGetNumGroups},
  };
  return *table;
}

// Named integer constants usable in kernel source.
const std::unordered_map<std::string, std::int64_t>& NamedConstants() {
  static const auto* table = new std::unordered_map<std::string, std::int64_t>{
      {"CLK_LOCAL_MEM_FENCE", 1},
      {"CLK_GLOBAL_MEM_FENCE", 2},
  };
  return *table;
}

// Where a named variable lives.
enum class VarLoc : std::uint8_t { kSlot, kLocalBlock, kPrivateBlock };

struct VarInfo {
  Type type;        // scalar type, or pointer type for arrays/pointer params
  VarLoc loc = VarLoc::kSlot;
  int index = 0;    // slot index or block index
};

class KernelCompiler {
 public:
  explicit KernelCompiler(const KernelDef& def) : def_(def) {}

  ava::Result<CompiledKernel> Run() {
    out_.k.name = def_.name;
    PushScope();
    AVA_RETURN_IF_ERROR(BindParams());
    AVA_RETURN_IF_ERROR(GenStmt(*def_.body));
    Emit(Op::kRet);
    PopScope();
    out_.k.num_slots = static_cast<std::uint32_t>(next_slot_);
    out_.k.num_barriers = barrier_count_;
    return std::move(out_.k);
  }

 private:
  struct Output {
    CompiledKernel k;
  };

  // ------------------------------ helpers ----------------------------------

  ava::Status Error(int line, const std::string& message) const {
    return ava::InvalidArgument("kernel '" + def_.name + "' line " +
                                std::to_string(line) + ": " + message);
  }

  int Emit(Op op, std::int32_t a = 0) {
    Instr ins;
    ins.op = op;
    ins.a = a;
    out_.k.code.push_back(ins);
    return static_cast<int>(out_.k.code.size()) - 1;
  }

  int EmitPushI(std::int64_t v) {
    Instr ins;
    ins.op = Op::kPushI;
    ins.imm.i = v;
    out_.k.code.push_back(ins);
    return static_cast<int>(out_.k.code.size()) - 1;
  }

  int EmitPushF(float v) {
    Instr ins;
    ins.op = Op::kPushF;
    ins.imm.f = v;
    out_.k.code.push_back(ins);
    return static_cast<int>(out_.k.code.size()) - 1;
  }

  int Here() const { return static_cast<int>(out_.k.code.size()); }
  void Patch(int instr_index, int target) {
    out_.k.code[static_cast<std::size_t>(instr_index)].a = target;
  }

  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }

  const VarInfo* Lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        return &found->second;
      }
    }
    return nullptr;
  }

  ava::Status Declare(int line, const std::string& name, VarInfo info) {
    auto& scope = scopes_.back();
    if (scope.count(name) != 0) {
      return Error(line, "redeclaration of '" + name + "'");
    }
    scope.emplace(name, info);
    return ava::OkStatus();
  }

  int AllocSlot() { return next_slot_++; }

  int TempSlot() {
    if (temp_slot_ < 0) {
      temp_slot_ = AllocSlot();
    }
    return temp_slot_;
  }

  ava::Status BindParams() {
    for (const auto& p : def_.params) {
      ParamInfo info;
      info.name = p.name;
      info.scalar = p.type.scalar;
      VarInfo var;
      var.loc = VarLoc::kSlot;
      var.index = AllocSlot();
      if (p.type.IsPointer()) {
        if (p.type.space == MemSpace::kGlobal) {
          info.kind = ParamKind::kGlobalPtr;
          info.pointee_const = p.type.is_const;
        } else {
          info.kind = ParamKind::kLocalPtr;
          LocalBlockInfo block;
          block.byte_size = 0;  // sized by vclSetKernelArgLocal
          block.param_index = static_cast<int>(out_.k.params.size());
          out_.k.local_blocks.push_back(block);
        }
        var.type = p.type;
      } else {
        info.kind = ParamKind::kScalar;
        var.type = p.type;
      }
      out_.k.params.push_back(info);
      AVA_RETURN_IF_ERROR(Declare(def_.line, p.name, var));
    }
    return ava::OkStatus();
  }

  // ------------------------- type conversion -------------------------------

  static bool SameClass(const Type& a, const Type& b) {
    return a.IsPointer() == b.IsPointer();
  }

  // Emits the conversion from `from` to `to` for the value on stack top.
  ava::Status Convert(int line, const Type& from, const Type& to) {
    if (from.IsPointer() || to.IsPointer()) {
      if (from.IsPointer() && to.IsPointer() && from.scalar == to.scalar &&
          from.space == to.space) {
        return ava::OkStatus();
      }
      return Error(line, "cannot convert " + TypeName(from) + " to " +
                             TypeName(to));
    }
    if (from.IsVoid() || to.IsVoid()) {
      return Error(line, "void value in expression");
    }
    if (from.IsFloat() == to.IsFloat()) {
      return ava::OkStatus();
    }
    if (to.IsFloat()) {
      Emit(Op::kI2F);
    } else {
      Emit(Op::kF2I);
    }
    return ava::OkStatus();
  }

  static Type Unify(const Type& a, const Type& b) {
    if (a.IsFloat() || b.IsFloat()) {
      return Type::Float();
    }
    if (a.scalar == Scalar::kLong || b.scalar == Scalar::kLong) {
      return Type::Long();
    }
    if (a.scalar == Scalar::kUint || b.scalar == Scalar::kUint) {
      return Type::Uint();
    }
    return Type::Int();
  }

  // --------------------------- lvalue handling -----------------------------

  struct LValue {
    bool is_slot = false;
    int slot = 0;         // when is_slot
    MemElem elem{};       // when !is_slot: address is on the stack
    Type type;            // value type
  };

  // For memory lvalues this leaves the address on the stack.
  ava::Result<LValue> GenLValue(const Expr& e) {
    if (e.kind == ExprKind::kVarRef) {
      const VarInfo* var = Lookup(e.name);
      if (var == nullptr) {
        return Error(e.line, "undeclared identifier '" + e.name + "'");
      }
      if (var->loc != VarLoc::kSlot) {
        return Error(e.line, "cannot assign to array '" + e.name + "'");
      }
      LValue lv;
      lv.is_slot = true;
      lv.slot = var->index;
      lv.type = var->type;
      return lv;
    }
    if (e.kind == ExprKind::kIndex) {
      AVA_ASSIGN_OR_RETURN(Type base_type, GenExpr(*e.a));
      if (!base_type.IsPointer()) {
        return Error(e.line, "subscripted value is not a pointer or array");
      }
      AVA_ASSIGN_OR_RETURN(Type idx_type, GenExpr(*e.b));
      AVA_RETURN_IF_ERROR(Convert(e.line, idx_type, Type::Long()));
      MemElem elem = MemElemFromScalar(base_type.scalar);
      Emit(Op::kPtrAdd, static_cast<std::int32_t>(MemElemSize(elem)));
      LValue lv;
      lv.is_slot = false;
      lv.elem = elem;
      lv.type = Type{base_type.scalar, MemSpace::kNone, false};
      return lv;
    }
    return Error(e.line, "expression is not assignable");
  }

  // ------------------------------ expressions ------------------------------

  ava::Result<Type> GenExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        EmitPushI(e.int_value);
        return Type::Int();
      case ExprKind::kFloatLit:
        EmitPushF(e.float_value);
        return Type::Float();
      case ExprKind::kVarRef:
        return GenVarRef(e);
      case ExprKind::kUnary:
        return GenUnary(e);
      case ExprKind::kBinary:
        return GenBinary(e);
      case ExprKind::kAssign:
        return GenAssign(e, /*need_value=*/true);
      case ExprKind::kIndex:
        return GenIndexLoad(e);
      case ExprKind::kCall:
        return GenCall(e, /*as_statement=*/false);
      case ExprKind::kCast:
        return GenCast(e);
      case ExprKind::kTernary:
        return GenTernary(e);
      case ExprKind::kIncDec:
        return GenIncDec(e, /*need_value=*/true);
    }
    return Error(e.line, "internal: unknown expression kind");
  }

  ava::Status GenExprAs(const Expr& e, const Type& want) {
    AVA_ASSIGN_OR_RETURN(Type got, GenExpr(e));
    return Convert(e.line, got, want);
  }

  ava::Result<Type> GenVarRef(const Expr& e) {
    const VarInfo* var = Lookup(e.name);
    if (var == nullptr) {
      auto named = NamedConstants().find(e.name);
      if (named != NamedConstants().end()) {
        EmitPushI(named->second);
        return Type::Int();
      }
      return Error(e.line, "undeclared identifier '" + e.name + "'");
    }
    switch (var->loc) {
      case VarLoc::kSlot:
        Emit(Op::kLoadSlot, var->index);
        return var->type;
      case VarLoc::kLocalBlock:
        EmitPushI(static_cast<std::int64_t>(PackPtr(
            PtrSpace::kLocal, static_cast<std::uint32_t>(var->index), 0)));
        return var->type;
      case VarLoc::kPrivateBlock:
        EmitPushI(static_cast<std::int64_t>(PackPtr(
            PtrSpace::kPrivate, static_cast<std::uint32_t>(var->index), 0)));
        return var->type;
    }
    return Error(e.line, "internal: unknown variable location");
  }

  ava::Result<Type> GenUnary(const Expr& e) {
    AVA_ASSIGN_OR_RETURN(Type t, GenExpr(*e.a));
    if (e.un_op == UnOp::kNeg) {
      if (t.IsFloat()) {
        Emit(Op::kNegF);
        return Type::Float();
      }
      if (t.IsInteger()) {
        Emit(Op::kNegI);
        return t;
      }
      return Error(e.line, "cannot negate " + TypeName(t));
    }
    // Logical not.
    if (t.IsFloat()) {
      EmitPushF(0.0f);
      Emit(Op::kEqF);
      return Type::Int();
    }
    if (t.IsInteger()) {
      Emit(Op::kLogNot);
      return Type::Int();
    }
    return Error(e.line, "cannot apply '!' to " + TypeName(t));
  }

  ava::Result<Type> GenBinary(const Expr& e) {
    switch (e.bin_op) {
      case BinOp::kLogAnd:
      case BinOp::kLogOr:
        return GenLogical(e);
      default:
        break;
    }
    // Pointer arithmetic: ptr +/- int.
    if ((e.bin_op == BinOp::kAdd || e.bin_op == BinOp::kSub)) {
      // Peek types without emitting: simplest is to classify syntactically by
      // generating the left side first and checking its type.
      AVA_ASSIGN_OR_RETURN(Type lt, GenExpr(*e.a));
      if (lt.IsPointer()) {
        AVA_ASSIGN_OR_RETURN(Type rt, GenExpr(*e.b));
        if (!rt.IsInteger()) {
          return Error(e.line, "pointer arithmetic requires an integer");
        }
        if (e.bin_op == BinOp::kSub) {
          Emit(Op::kNegI);
        }
        Emit(Op::kPtrAdd, static_cast<std::int32_t>(
                              MemElemSize(MemElemFromScalar(lt.scalar))));
        return lt;
      }
      return GenArithRhs(e, lt);
    }
    AVA_ASSIGN_OR_RETURN(Type lt, GenExpr(*e.a));
    if (lt.IsPointer()) {
      return Error(e.line, "invalid operands to binary operator");
    }
    return GenArithRhs(e, lt);
  }

  // Completes a binary op whose left operand (type `lt`, non-pointer) is
  // already on the stack.
  ava::Result<Type> GenArithRhs(const Expr& e, Type lt) {
    // We need the unified type before converting the left operand, but the
    // left value is already emitted. Infer the right type on a dry run is
    // costly; instead: if the left is int and right turns out float, we patch
    // by inserting a conversion via a temp slot.
    int lhs_end = Here();
    AVA_ASSIGN_OR_RETURN(Type rt, GenExpr(*e.b));
    if (rt.IsPointer()) {
      return Error(e.line, "invalid pointer operand");
    }
    Type common = Unify(lt, rt);
    bool is_cmp = false;
    switch (e.bin_op) {
      case BinOp::kEq:
      case BinOp::kNe:
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe:
        is_cmp = true;
        break;
      case BinOp::kRem:
      case BinOp::kBitAnd:
      case BinOp::kBitOr:
      case BinOp::kBitXor:
      case BinOp::kShl:
      case BinOp::kShr:
        if (common.IsFloat()) {
          return Error(e.line, "operator requires integer operands");
        }
        break;
      default:
        break;
    }
    // Convert left operand if needed by splicing a conversion before the RHS
    // code. Conversions are single instructions, so insert at lhs_end.
    if (lt.IsFloat() != common.IsFloat()) {
      Instr conv;
      conv.op = common.IsFloat() ? Op::kI2F : Op::kF2I;
      out_.k.code.insert(out_.k.code.begin() + lhs_end, conv);
      // Fix any jump targets? Jumps within the RHS are relative to absolute
      // indices; inserting shifts them. RHS may contain jumps (ternary,
      // logical ops). Patch all jump targets >= lhs_end in RHS range.
      for (std::size_t i = static_cast<std::size_t>(lhs_end) + 1;
           i < out_.k.code.size(); ++i) {
        Instr& ins = out_.k.code[i];
        if ((ins.op == Op::kJmp || ins.op == Op::kJz || ins.op == Op::kJnz) &&
            ins.a >= lhs_end) {
          ins.a += 1;
        }
      }
    }
    AVA_RETURN_IF_ERROR(Convert(e.line, rt, common));
    bool f = common.IsFloat();
    switch (e.bin_op) {
      case BinOp::kAdd:
        Emit(f ? Op::kAddF : Op::kAddI);
        break;
      case BinOp::kSub:
        Emit(f ? Op::kSubF : Op::kSubI);
        break;
      case BinOp::kMul:
        Emit(f ? Op::kMulF : Op::kMulI);
        break;
      case BinOp::kDiv:
        Emit(f ? Op::kDivF : Op::kDivI);
        break;
      case BinOp::kRem:
        Emit(Op::kRemI);
        break;
      case BinOp::kBitAnd:
        Emit(Op::kAndI);
        break;
      case BinOp::kBitOr:
        Emit(Op::kOrI);
        break;
      case BinOp::kBitXor:
        Emit(Op::kXorI);
        break;
      case BinOp::kShl:
        Emit(Op::kShlI);
        break;
      case BinOp::kShr:
        Emit(Op::kShrI);
        break;
      case BinOp::kEq:
        Emit(f ? Op::kEqF : Op::kEqI);
        break;
      case BinOp::kNe:
        Emit(f ? Op::kNeF : Op::kNeI);
        break;
      case BinOp::kLt:
        Emit(f ? Op::kLtF : Op::kLtI);
        break;
      case BinOp::kLe:
        Emit(f ? Op::kLeF : Op::kLeI);
        break;
      case BinOp::kGt:
        Emit(f ? Op::kGtF : Op::kGtI);
        break;
      case BinOp::kGe:
        Emit(f ? Op::kGeF : Op::kGeI);
        break;
      case BinOp::kLogAnd:
      case BinOp::kLogOr:
        return Error(e.line, "internal: logical op in arithmetic path");
    }
    return is_cmp ? Type::Int() : common;
  }

  ava::Result<Type> GenLogical(const Expr& e) {
    // a && b:  a; JZ F; b; JZ F; push 1; JMP E; F: push 0; E:
    // a || b:  a; JNZ T; b; JNZ T; push 0; JMP E; T: push 1; E:
    const bool is_and = e.bin_op == BinOp::kLogAnd;
    AVA_ASSIGN_OR_RETURN(Type lt, GenExpr(*e.a));
    AVA_RETURN_IF_ERROR(TruthConvert(e.line, lt));
    int j1 = Emit(is_and ? Op::kJz : Op::kJnz);
    AVA_ASSIGN_OR_RETURN(Type rt, GenExpr(*e.b));
    AVA_RETURN_IF_ERROR(TruthConvert(e.line, rt));
    int j2 = Emit(is_and ? Op::kJz : Op::kJnz);
    EmitPushI(is_and ? 1 : 0);
    int jend = Emit(Op::kJmp);
    int shortcut = Here();
    EmitPushI(is_and ? 0 : 1);
    int end = Here();
    Patch(j1, shortcut);
    Patch(j2, shortcut);
    Patch(jend, end);
    return Type::Int();
  }

  // Ensures stack top is an integer truth value.
  ava::Status TruthConvert(int line, const Type& t) {
    if (t.IsInteger()) {
      return ava::OkStatus();
    }
    if (t.IsFloat()) {
      EmitPushF(0.0f);
      Emit(Op::kNeF);
      return ava::OkStatus();
    }
    return Error(line, "condition must be a scalar value");
  }

  ava::Result<Type> GenAssign(const Expr& e, bool need_value) {
    AVA_ASSIGN_OR_RETURN(LValue lv, GenLValue(*e.a));
    if (lv.is_slot) {
      if (e.is_compound_assign) {
        Emit(Op::kLoadSlot, lv.slot);
        AVA_ASSIGN_OR_RETURN(Type rt, GenExpr(*e.b));
        AVA_RETURN_IF_ERROR(
            ApplyCompound(e.line, e.assign_op, lv.type, rt));
      } else {
        AVA_RETURN_IF_ERROR(GenExprAs(*e.b, lv.type));
      }
      if (need_value) {
        Emit(Op::kDup);
      }
      Emit(Op::kStoreSlot, lv.slot);
      return lv.type;
    }
    // Memory lvalue: address is on the stack.
    if (e.is_compound_assign) {
      Emit(Op::kDup);
      Emit(Op::kLd, static_cast<std::int32_t>(lv.elem));
      AVA_ASSIGN_OR_RETURN(Type rt, GenExpr(*e.b));
      AVA_RETURN_IF_ERROR(ApplyCompound(e.line, e.assign_op, lv.type, rt));
    } else {
      AVA_RETURN_IF_ERROR(GenExprAs(*e.b, lv.type));
    }
    if (need_value) {
      int tmp = TempSlot();
      Emit(Op::kStoreSlot, tmp);
      Emit(Op::kLoadSlot, tmp);
      Emit(Op::kSt, static_cast<std::int32_t>(lv.elem));
      Emit(Op::kLoadSlot, tmp);
    } else {
      Emit(Op::kSt, static_cast<std::int32_t>(lv.elem));
    }
    return lv.type;
  }

  // Stack holds (old_value, rhs_value_of_type_rt); applies `op` yielding a
  // value of lv_type.
  ava::Status ApplyCompound(int line, BinOp op, const Type& lv_type, Type rt) {
    // Promote rhs to the lvalue's arithmetic class.
    AVA_RETURN_IF_ERROR(Convert(line, rt, lv_type));
    bool f = lv_type.IsFloat();
    switch (op) {
      case BinOp::kAdd:
        Emit(f ? Op::kAddF : Op::kAddI);
        return ava::OkStatus();
      case BinOp::kSub:
        Emit(f ? Op::kSubF : Op::kSubI);
        return ava::OkStatus();
      case BinOp::kMul:
        Emit(f ? Op::kMulF : Op::kMulI);
        return ava::OkStatus();
      case BinOp::kDiv:
        Emit(f ? Op::kDivF : Op::kDivI);
        return ava::OkStatus();
      default:
        return Error(line, "unsupported compound assignment");
    }
  }

  ava::Result<Type> GenIndexLoad(const Expr& e) {
    AVA_ASSIGN_OR_RETURN(Type base_type, GenExpr(*e.a));
    if (!base_type.IsPointer()) {
      return Error(e.line, "subscripted value is not a pointer or array");
    }
    AVA_ASSIGN_OR_RETURN(Type idx_type, GenExpr(*e.b));
    if (!idx_type.IsInteger()) {
      return Error(e.line, "array index must be an integer");
    }
    MemElem elem = MemElemFromScalar(base_type.scalar);
    Emit(Op::kPtrAdd, static_cast<std::int32_t>(MemElemSize(elem)));
    Emit(Op::kLd, static_cast<std::int32_t>(elem));
    return Type{base_type.scalar, MemSpace::kNone, false};
  }

  ava::Result<Type> GenCall(const Expr& e, bool as_statement) {
    // barrier(...)
    if (e.name == "barrier") {
      for (const auto& arg : e.args) {
        AVA_ASSIGN_OR_RETURN(Type t, GenExpr(*arg));
        (void)t;
        Emit(Op::kPop);  // fence flags are accepted and ignored
      }
      Emit(Op::kBarrier, barrier_count_++);
      return Type::Void();
    }
    auto geom = GeometryTable().find(e.name);
    if (geom != GeometryTable().end()) {
      if (e.args.size() != 1) {
        return Error(e.line, e.name + " takes exactly one argument");
      }
      AVA_RETURN_IF_ERROR(GenExprAs(*e.args[0], Type::Int()));
      Emit(geom->second);
      return Type::Long();
    }
    auto b = BuiltinTable().find(e.name);
    if (b == BuiltinTable().end()) {
      return Error(e.line, "unknown function '" + e.name + "'");
    }
    const BuiltinSig& sig = b->second;
    if (static_cast<int>(e.args.size()) != sig.arity) {
      return Error(e.line, "'" + e.name + "' expects " +
                               std::to_string(sig.arity) + " argument(s)");
    }
    Type want = sig.is_float ? Type::Float() : Type::Long();
    for (const auto& arg : e.args) {
      AVA_RETURN_IF_ERROR(GenExprAs(*arg, want));
    }
    Emit(Op::kBuiltin, static_cast<std::int32_t>(sig.id));
    return sig.is_float ? Type::Float() : Type::Long();
  }

  ava::Result<Type> GenCast(const Expr& e) {
    AVA_ASSIGN_OR_RETURN(Type t, GenExpr(*e.a));
    AVA_RETURN_IF_ERROR(Convert(e.line, t, e.cast_type));
    return e.cast_type;
  }

  ava::Result<Type> GenTernary(const Expr& e) {
    AVA_ASSIGN_OR_RETURN(Type ct, GenExpr(*e.a));
    AVA_RETURN_IF_ERROR(TruthConvert(e.line, ct));
    int jz = Emit(Op::kJz);
    // We must know the unified result type; compile the "then" branch, then
    // the "else", unify, and insert conversions. To keep it simple we require
    // both arms to already have the same arithmetic class after Unify by
    // converting each arm to the unified type — computed from a first pass.
    AVA_ASSIGN_OR_RETURN(Type then_t, GenExpr(*e.b));
    int then_conv_point = Here();
    int jend = Emit(Op::kJmp);
    int else_start = Here();
    AVA_ASSIGN_OR_RETURN(Type else_t, GenExpr(*e.c));
    if (then_t.IsPointer() || else_t.IsPointer()) {
      if (!(then_t == else_t)) {
        return Error(e.line, "ternary arms have incompatible types");
      }
      Patch(jz, else_start);
      Patch(jend, Here());
      return then_t;
    }
    Type common = Unify(then_t, else_t);
    AVA_RETURN_IF_ERROR(Convert(e.line, else_t, common));
    // Convert the then-arm by splicing before its trailing jump if needed.
    if (then_t.IsFloat() != common.IsFloat()) {
      Instr conv;
      conv.op = common.IsFloat() ? Op::kI2F : Op::kF2I;
      out_.k.code.insert(out_.k.code.begin() + then_conv_point, conv);
      for (std::size_t i = static_cast<std::size_t>(then_conv_point) + 1;
           i < out_.k.code.size(); ++i) {
        Instr& ins = out_.k.code[i];
        if ((ins.op == Op::kJmp || ins.op == Op::kJz || ins.op == Op::kJnz) &&
            ins.a >= then_conv_point) {
          ins.a += 1;
        }
      }
      jend += 1;
      else_start += 1;
    }
    Patch(jz, else_start);
    Patch(jend, Here());
    return common;
  }

  ava::Result<Type> GenIncDec(const Expr& e, bool need_value) {
    AVA_ASSIGN_OR_RETURN(LValue lv, GenLValue(*e.a));
    if (!lv.type.IsInteger() && !lv.type.IsFloat()) {
      return Error(e.line, "++/-- requires a numeric lvalue");
    }
    const bool f = lv.type.IsFloat();
    Op add_op = f ? Op::kAddF : Op::kAddI;
    Op sub_op = f ? Op::kSubF : Op::kSubI;
    Op delta_op = e.is_increment ? add_op : sub_op;
    auto push_one = [&] {
      if (f) {
        EmitPushF(1.0f);
      } else {
        EmitPushI(1);
      }
    };
    if (lv.is_slot) {
      Emit(Op::kLoadSlot, lv.slot);
      if (need_value && !e.is_prefix) {
        Emit(Op::kDup);  // old value stays as result
      }
      push_one();
      Emit(delta_op);
      if (need_value && e.is_prefix) {
        Emit(Op::kDup);
      }
      Emit(Op::kStoreSlot, lv.slot);
      return lv.type;
    }
    // Memory lvalue; address on stack.
    Emit(Op::kDup);
    Emit(Op::kLd, static_cast<std::int32_t>(lv.elem));
    // Stack: [addr][old]
    int tmp = TempSlot();
    if (need_value && !e.is_prefix) {
      Emit(Op::kDup);
      Emit(Op::kStoreSlot, tmp);  // save old
    }
    push_one();
    Emit(delta_op);
    if (need_value && e.is_prefix) {
      Emit(Op::kDup);
      Emit(Op::kStoreSlot, tmp);  // save new
    }
    Emit(Op::kSt, static_cast<std::int32_t>(lv.elem));
    if (need_value) {
      Emit(Op::kLoadSlot, tmp);
    }
    return lv.type;
  }

  // ------------------------------ statements -------------------------------

  ava::Status GenStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock: {
        PushScope();
        for (const auto& child : s.body) {
          AVA_RETURN_IF_ERROR(GenStmt(*child));
        }
        PopScope();
        return ava::OkStatus();
      }
      case StmtKind::kDecl:
        return GenDecl(s);
      case StmtKind::kExpr:
        return GenExprStatement(*s.expr);
      case StmtKind::kIf: {
        AVA_ASSIGN_OR_RETURN(Type ct, GenExpr(*s.cond));
        AVA_RETURN_IF_ERROR(TruthConvert(s.line, ct));
        int jz = Emit(Op::kJz);
        AVA_RETURN_IF_ERROR(GenStmt(*s.then_branch));
        if (s.else_branch != nullptr) {
          int jend = Emit(Op::kJmp);
          Patch(jz, Here());
          AVA_RETURN_IF_ERROR(GenStmt(*s.else_branch));
          Patch(jend, Here());
        } else {
          Patch(jz, Here());
        }
        return ava::OkStatus();
      }
      case StmtKind::kWhile: {
        int top = Here();
        AVA_ASSIGN_OR_RETURN(Type ct, GenExpr(*s.cond));
        AVA_RETURN_IF_ERROR(TruthConvert(s.line, ct));
        int jz = Emit(Op::kJz);
        LoopContext loop;
        loop.continue_target = top;
        loops_.push_back(loop);
        AVA_RETURN_IF_ERROR(GenStmt(*s.then_branch));
        Emit(Op::kJmp, top);
        Patch(jz, Here());
        FinishLoop(Here());
        return ava::OkStatus();
      }
      case StmtKind::kDoWhile: {
        int top = Here();
        LoopContext loop;
        loop.continue_target = -1;  // patched to the condition start
        loops_.push_back(loop);
        AVA_RETURN_IF_ERROR(GenStmt(*s.then_branch));
        int cond_start = Here();
        AVA_ASSIGN_OR_RETURN(Type ct, GenExpr(*s.cond));
        AVA_RETURN_IF_ERROR(TruthConvert(s.line, ct));
        Emit(Op::kJnz, top);
        // Patch continue jumps to the condition.
        for (int idx : loops_.back().continue_jumps) {
          Patch(idx, cond_start);
        }
        loops_.back().continue_jumps.clear();
        FinishLoop(Here());
        return ava::OkStatus();
      }
      case StmtKind::kFor: {
        PushScope();
        if (s.for_init != nullptr) {
          AVA_RETURN_IF_ERROR(GenStmt(*s.for_init));
        }
        int top = Here();
        int jz = -1;
        if (s.cond != nullptr) {
          AVA_ASSIGN_OR_RETURN(Type ct, GenExpr(*s.cond));
          AVA_RETURN_IF_ERROR(TruthConvert(s.line, ct));
          jz = Emit(Op::kJz);
        }
        LoopContext loop;
        loop.continue_target = -1;  // patched to the step
        loops_.push_back(loop);
        AVA_RETURN_IF_ERROR(GenStmt(*s.then_branch));
        int step_start = Here();
        if (s.for_step != nullptr) {
          AVA_RETURN_IF_ERROR(GenExprStatement(*s.for_step));
        }
        Emit(Op::kJmp, top);
        for (int idx : loops_.back().continue_jumps) {
          Patch(idx, step_start);
        }
        loops_.back().continue_jumps.clear();
        if (jz >= 0) {
          Patch(jz, Here());
        }
        FinishLoop(Here());
        PopScope();
        return ava::OkStatus();
      }
      case StmtKind::kReturn:
        Emit(Op::kRet);
        return ava::OkStatus();
      case StmtKind::kBreak: {
        if (loops_.empty()) {
          return Error(s.line, "'break' outside a loop");
        }
        loops_.back().break_jumps.push_back(Emit(Op::kJmp));
        return ava::OkStatus();
      }
      case StmtKind::kContinue: {
        if (loops_.empty()) {
          return Error(s.line, "'continue' outside a loop");
        }
        if (loops_.back().continue_target >= 0) {
          Emit(Op::kJmp, loops_.back().continue_target);
        } else {
          loops_.back().continue_jumps.push_back(Emit(Op::kJmp));
        }
        return ava::OkStatus();
      }
    }
    return Error(s.line, "internal: unknown statement kind");
  }

  ava::Status GenDecl(const Stmt& s) {
    if (s.array_size > 0) {
      std::size_t bytes = static_cast<std::size_t>(s.array_size) *
                          ScalarSize(s.decl_type.scalar);
      VarInfo var;
      var.type = Type::Pointer(s.decl_type.scalar,
                               s.decl_type.space == MemSpace::kLocal
                                   ? MemSpace::kLocal
                                   : MemSpace::kPrivate);
      if (s.decl_type.space == MemSpace::kLocal) {
        var.loc = VarLoc::kLocalBlock;
        var.index = static_cast<int>(out_.k.local_blocks.size());
        LocalBlockInfo block;
        block.byte_size = bytes;
        out_.k.local_blocks.push_back(block);
        out_.k.fixed_local_bytes += bytes;
      } else {
        var.loc = VarLoc::kPrivateBlock;
        var.index = static_cast<int>(out_.k.private_blocks.size());
        PrivateBlockInfo block;
        block.byte_size = bytes;
        out_.k.private_blocks.push_back(block);
      }
      return Declare(s.line, s.decl_name, var);
    }
    VarInfo var;
    var.type = s.decl_type;
    var.loc = VarLoc::kSlot;
    var.index = AllocSlot();
    AVA_RETURN_IF_ERROR(Declare(s.line, s.decl_name, var));
    if (s.init != nullptr) {
      AVA_RETURN_IF_ERROR(GenExprAs(*s.init, var.type));
      Emit(Op::kStoreSlot, var.index);
    }
    return ava::OkStatus();
  }

  // Expression used as a statement: avoid materializing values when possible.
  ava::Status GenExprStatement(const Expr& e) {
    if (e.kind == ExprKind::kAssign) {
      AVA_ASSIGN_OR_RETURN(Type t, GenAssign(e, /*need_value=*/false));
      (void)t;
      return ava::OkStatus();
    }
    if (e.kind == ExprKind::kIncDec) {
      AVA_ASSIGN_OR_RETURN(Type t, GenIncDec(e, /*need_value=*/false));
      (void)t;
      return ava::OkStatus();
    }
    if (e.kind == ExprKind::kCall) {
      AVA_ASSIGN_OR_RETURN(Type t, GenCall(e, /*as_statement=*/true));
      if (!t.IsVoid()) {
        Emit(Op::kPop);
      }
      return ava::OkStatus();
    }
    AVA_ASSIGN_OR_RETURN(Type t, GenExpr(e));
    if (!t.IsVoid()) {
      Emit(Op::kPop);
    }
    return ava::OkStatus();
  }

  struct LoopContext {
    int continue_target = -1;           // >= 0: jump directly
    std::vector<int> continue_jumps;    // patched by the loop footer
    std::vector<int> break_jumps;
  };

  void FinishLoop(int break_target) {
    for (int idx : loops_.back().break_jumps) {
      Patch(idx, break_target);
    }
    loops_.pop_back();
  }

  const KernelDef& def_;
  Output out_;
  std::vector<std::unordered_map<std::string, VarInfo>> scopes_;
  std::vector<LoopContext> loops_;
  int next_slot_ = 0;
  int temp_slot_ = -1;
  int barrier_count_ = 0;
};

}  // namespace

ava::Result<CompiledProgram> CompileProgram(const Program& program) {
  CompiledProgram out;
  for (const auto& def : program.kernels) {
    for (const auto& existing : out.kernels) {
      if (existing.name == def.name) {
        return ava::InvalidArgument("duplicate kernel '" + def.name + "'");
      }
    }
    AVA_ASSIGN_OR_RETURN(CompiledKernel k, KernelCompiler(def).Run());
    out.kernels.push_back(std::move(k));
  }
  return out;
}

ava::Result<CompiledProgram> CompileSource(std::string_view source) {
  AVA_ASSIGN_OR_RETURN(Program ast, ParseProgram(source));
  return CompileProgram(ast);
}

}  // namespace vcl
