// Bytecode generator + type checker: Program AST in, CompiledProgram out.
#ifndef AVA_SRC_VCL_COMPILER_CODEGEN_H_
#define AVA_SRC_VCL_COMPILER_CODEGEN_H_

#include <string_view>

#include "src/common/result.h"
#include "src/vcl/compiler/ast.h"
#include "src/vcl/compiler/bytecode.h"

namespace vcl {

// Compiles a parsed program. Diagnostics are "line: message" strings.
ava::Result<CompiledProgram> CompileProgram(const Program& program);

// Convenience: lex + parse + compile in one step (what vclBuildProgram runs).
ava::Result<CompiledProgram> CompileSource(std::string_view source);

}  // namespace vcl

#endif  // AVA_SRC_VCL_COMPILER_CODEGEN_H_
