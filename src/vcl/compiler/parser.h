// Recursive-descent parser for the VCL kernel language: a token stream in,
// a Program AST out. All diagnostics are "line:col: message" strings suitable
// for the build log returned by vclGetProgramBuildInfo.
#ifndef AVA_SRC_VCL_COMPILER_PARSER_H_
#define AVA_SRC_VCL_COMPILER_PARSER_H_

#include <string_view>

#include "src/common/result.h"
#include "src/vcl/compiler/ast.h"

namespace vcl {

// Lexes and parses `source` into a Program (one or more __kernel functions).
ava::Result<Program> ParseProgram(std::string_view source);

}  // namespace vcl

#endif  // AVA_SRC_VCL_COMPILER_PARSER_H_
