#include "src/vcl/compiler/vm.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <string>

namespace vcl {
namespace {

constexpr std::uint64_t kDefaultMaxInstrPerItem = 1ull << 26;
constexpr std::size_t kStackCapacity = 512;

inline float CellToF(std::uint64_t cell) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(cell));
}
inline std::uint64_t FToCell(float f) {
  return static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(f));
}
inline std::int64_t CellToI(std::uint64_t cell) {
  return static_cast<std::int64_t>(cell);
}
inline std::uint64_t IToCell(std::int64_t i) {
  return static_cast<std::uint64_t>(i);
}

// Execution state of one work-item, resumable at barriers.
struct ItemState {
  std::vector<std::uint64_t> slots;
  std::vector<std::uint64_t> stack;
  std::size_t sp = 0;
  std::uint32_t pc = 0;
  int at_barrier = -1;  // barrier id the item is parked at, or -1
  bool done = false;
  std::uint64_t instr_budget = 0;
  std::size_t gid[3] = {0, 0, 0};
  std::size_t lid[3] = {0, 0, 0};
  std::vector<std::vector<std::uint8_t>> private_blocks;
};

// Why a work-item stopped running.
enum class StopReason { kDone, kBarrier, kTrap };

class GroupRunner {
 public:
  GroupRunner(const CompiledKernel& kernel, const LaunchConfig& config,
              const std::vector<KernelArg>& args, std::uint64_t max_instr)
      : kernel_(kernel), config_(config), args_(args), max_instr_(max_instr) {}

  ava::Result<ExecStats> Run() {
    AVA_RETURN_IF_ERROR(PrepareLocalBlocks());
    std::size_t num_groups[3];
    for (int d = 0; d < 3; ++d) {
      if (config_.local_size[d] == 0 || config_.global_size[d] == 0) {
        return ava::InvalidArgument("zero-sized NDRange dimension");
      }
      if (config_.global_size[d] % config_.local_size[d] != 0) {
        return ava::InvalidArgument(
            "global size not divisible by local size");
      }
      num_groups[d] = config_.global_size[d] / config_.local_size[d];
    }
    group_size_ = config_.local_size[0] * config_.local_size[1] *
                  config_.local_size[2];

    for (std::size_t gz = 0; gz < num_groups[2]; ++gz) {
      for (std::size_t gy = 0; gy < num_groups[1]; ++gy) {
        for (std::size_t gx = 0; gx < num_groups[0]; ++gx) {
          std::size_t group[3] = {gx, gy, gz};
          AVA_RETURN_IF_ERROR(RunGroup(group));
        }
      }
    }
    return stats_;
  }

 private:
  ava::Status Trap(const ItemState& item, const std::string& message) const {
    return ava::Aborted("kernel '" + kernel_.name + "' trapped at pc " +
                        std::to_string(item.pc) + ", work-item (" +
                        std::to_string(item.gid[0]) + "," +
                        std::to_string(item.gid[1]) + "," +
                        std::to_string(item.gid[2]) + "): " + message);
  }

  ava::Status PrepareLocalBlocks() {
    local_blocks_.resize(kernel_.local_blocks.size());
    for (std::size_t i = 0; i < kernel_.local_blocks.size(); ++i) {
      const LocalBlockInfo& info = kernel_.local_blocks[i];
      std::size_t bytes = info.byte_size;
      if (info.param_index >= 0) {
        const std::size_t idx = static_cast<std::size_t>(info.param_index);
        if (idx >= args_.size() ||
            args_[idx].kind != KernelArg::Kind::kLocal) {
          return ava::FailedPrecondition(
              "__local parameter " + std::to_string(info.param_index) +
              " of kernel '" + kernel_.name + "' not set");
        }
        bytes = args_[idx].local_size;
      }
      local_blocks_[i].assign(bytes, 0);
    }
    return ava::OkStatus();
  }

  void InitItem(ItemState* item, const std::size_t group[3],
                std::size_t lx, std::size_t ly, std::size_t lz) {
    item->slots.assign(kernel_.num_slots, 0);
    if (item->stack.size() < kStackCapacity) {
      item->stack.resize(kStackCapacity);
    }
    item->sp = 0;
    item->pc = 0;
    item->at_barrier = -1;
    item->done = false;
    item->instr_budget = max_instr_;
    item->lid[0] = lx;
    item->lid[1] = ly;
    item->lid[2] = lz;
    item->gid[0] = config_.global_offset[0] +
                   group[0] * config_.local_size[0] + lx;
    item->gid[1] = config_.global_offset[1] +
                   group[1] * config_.local_size[1] + ly;
    item->gid[2] = config_.global_offset[2] +
                   group[2] * config_.local_size[2] + lz;
    // Bind parameter slots.
    item->private_blocks.resize(kernel_.private_blocks.size());
    for (std::size_t i = 0; i < kernel_.private_blocks.size(); ++i) {
      item->private_blocks[i].assign(kernel_.private_blocks[i].byte_size, 0);
    }
    int local_block_cursor = 0;
    for (std::size_t p = 0; p < kernel_.params.size(); ++p) {
      const ParamInfo& info = kernel_.params[p];
      switch (info.kind) {
        case ParamKind::kScalar:
          item->slots[p] = args_[p].scalar_cell;
          break;
        case ParamKind::kGlobalPtr:
          item->slots[p] = PackPtr(PtrSpace::kGlobal,
                                   static_cast<std::uint32_t>(p), 0);
          break;
        case ParamKind::kLocalPtr: {
          // Local blocks for pointer params appear in declaration order at
          // the front of local_blocks (see codegen BindParams).
          while (kernel_.local_blocks[static_cast<std::size_t>(
                     local_block_cursor)].param_index !=
                 static_cast<int>(p)) {
            ++local_block_cursor;
          }
          item->slots[p] =
              PackPtr(PtrSpace::kLocal,
                      static_cast<std::uint32_t>(local_block_cursor), 0);
          ++local_block_cursor;
          break;
        }
      }
    }
  }

  ava::Status RunGroup(const std::size_t group[3]) {
    // Zero local memory for each group (matches a fresh-allocation model).
    for (auto& block : local_blocks_) {
      std::fill(block.begin(), block.end(), 0);
    }
    if (kernel_.num_barriers == 0) {
      // Fast path: no barriers, items are independent; reuse one state.
      ItemState item;
      for (std::size_t lz = 0; lz < config_.local_size[2]; ++lz) {
        for (std::size_t ly = 0; ly < config_.local_size[1]; ++ly) {
          for (std::size_t lx = 0; lx < config_.local_size[0]; ++lx) {
            InitItem(&item, group, lx, ly, lz);
            AVA_ASSIGN_OR_RETURN(StopReason reason, RunItem(&item));
            if (reason == StopReason::kBarrier) {
              return Trap(item, "barrier in kernel compiled without barriers");
            }
            ++stats_.work_items;
          }
        }
      }
      return ava::OkStatus();
    }
    // Barrier path: all items of the group live simultaneously.
    std::vector<ItemState> items(group_size_);
    std::size_t idx = 0;
    for (std::size_t lz = 0; lz < config_.local_size[2]; ++lz) {
      for (std::size_t ly = 0; ly < config_.local_size[1]; ++ly) {
        for (std::size_t lx = 0; lx < config_.local_size[0]; ++lx) {
          InitItem(&items[idx++], group, lx, ly, lz);
        }
      }
    }
    while (true) {
      bool any_running = false;
      for (auto& item : items) {
        if (item.done) {
          continue;
        }
        AVA_ASSIGN_OR_RETURN(StopReason reason, RunItem(&item));
        (void)reason;
        any_running = true;
      }
      if (!any_running) {
        break;
      }
      // All live items are now parked at a barrier or done. Check coherence.
      int barrier_id = -2;
      bool any_at_barrier = false;
      bool any_done = false;
      for (auto& item : items) {
        if (item.done) {
          any_done = true;
          continue;
        }
        any_at_barrier = true;
        if (barrier_id == -2) {
          barrier_id = item.at_barrier;
        } else if (barrier_id != item.at_barrier) {
          return Trap(item, "barrier divergence across work-items");
        }
      }
      if (!any_at_barrier) {
        break;  // every item finished
      }
      if (any_done) {
        for (auto& item : items) {
          if (!item.done) {
            return Trap(item,
                        "barrier divergence: some work-items already returned");
          }
        }
      }
      // Release the barrier.
      for (auto& item : items) {
        if (!item.done) {
          item.at_barrier = -1;
        }
      }
    }
    stats_.work_items += group_size_;
    return ava::OkStatus();
  }

  // Resolves a packed pointer to (base, block_size). Returns false on a bad
  // block index.
  bool ResolvePtr(ItemState* item, std::uint64_t ptr, std::uint8_t** base,
                  std::size_t* size) {
    const std::uint32_t block = PtrBlockOf(ptr);
    switch (PtrSpaceOf(ptr)) {
      case PtrSpace::kGlobal: {
        if (block >= args_.size() ||
            args_[block].kind != KernelArg::Kind::kBuffer) {
          return false;
        }
        *base = args_[block].buffer_data;
        *size = args_[block].buffer_size;
        return true;
      }
      case PtrSpace::kLocal: {
        if (block >= local_blocks_.size()) {
          return false;
        }
        *base = local_blocks_[block].data();
        *size = local_blocks_[block].size();
        return true;
      }
      case PtrSpace::kPrivate: {
        if (block >= item->private_blocks.size()) {
          return false;
        }
        *base = item->private_blocks[block].data();
        *size = item->private_blocks[block].size();
        return true;
      }
    }
    return false;
  }

  // Runs one work-item until it completes, parks at a barrier, or traps.
  ava::Result<StopReason> RunItem(ItemState* item) {
    const Instr* code = kernel_.code.data();
    const std::size_t code_size = kernel_.code.size();
    std::uint64_t* stack = item->stack.data();
    std::size_t sp = item->sp;
    std::uint32_t pc = item->pc;
    std::uint64_t budget = item->instr_budget;
    std::uint64_t executed = 0;

    auto sync_back = [&] {
      item->sp = sp;
      item->pc = pc;
      // The budget is per work-item across barrier resumes.
      item->instr_budget = budget > executed ? budget - executed : 0;
      stats_.instructions += executed;
    };

#define VM_TRAP(msg)            \
  do {                          \
    sync_back();                \
    return Trap(*item, (msg));  \
  } while (0)

    while (true) {
      if (pc >= code_size) {
        VM_TRAP("pc out of range");
      }
      if (executed >= budget) {
        VM_TRAP("instruction budget exceeded (possible infinite loop)");
      }
      const Instr& ins = code[pc];
      ++pc;
      ++executed;
      switch (ins.op) {
        case Op::kNop:
          break;
        case Op::kPushI:
          if (sp >= kStackCapacity) VM_TRAP("value stack overflow");
          stack[sp++] = IToCell(ins.imm.i);
          break;
        case Op::kPushF:
          if (sp >= kStackCapacity) VM_TRAP("value stack overflow");
          stack[sp++] = FToCell(ins.imm.f);
          break;
        case Op::kLoadSlot:
          if (sp >= kStackCapacity) VM_TRAP("value stack overflow");
          stack[sp++] = item->slots[static_cast<std::size_t>(ins.a)];
          break;
        case Op::kStoreSlot:
          item->slots[static_cast<std::size_t>(ins.a)] = stack[--sp];
          break;
        case Op::kDup:
          if (sp >= kStackCapacity) VM_TRAP("value stack overflow");
          stack[sp] = stack[sp - 1];
          ++sp;
          break;
        case Op::kPop:
          --sp;
          break;
        case Op::kAddI:
          stack[sp - 2] = IToCell(CellToI(stack[sp - 2]) + CellToI(stack[sp - 1]));
          --sp;
          break;
        case Op::kSubI:
          stack[sp - 2] = IToCell(CellToI(stack[sp - 2]) - CellToI(stack[sp - 1]));
          --sp;
          break;
        case Op::kMulI:
          stack[sp - 2] = IToCell(CellToI(stack[sp - 2]) * CellToI(stack[sp - 1]));
          --sp;
          break;
        case Op::kDivI: {
          std::int64_t d = CellToI(stack[sp - 1]);
          if (d == 0) VM_TRAP("integer division by zero");
          stack[sp - 2] = IToCell(CellToI(stack[sp - 2]) / d);
          --sp;
          break;
        }
        case Op::kRemI: {
          std::int64_t d = CellToI(stack[sp - 1]);
          if (d == 0) VM_TRAP("integer remainder by zero");
          stack[sp - 2] = IToCell(CellToI(stack[sp - 2]) % d);
          --sp;
          break;
        }
        case Op::kNegI:
          stack[sp - 1] = IToCell(-CellToI(stack[sp - 1]));
          break;
        case Op::kAndI:
          stack[sp - 2] = stack[sp - 2] & stack[sp - 1];
          --sp;
          break;
        case Op::kOrI:
          stack[sp - 2] = stack[sp - 2] | stack[sp - 1];
          --sp;
          break;
        case Op::kXorI:
          stack[sp - 2] = stack[sp - 2] ^ stack[sp - 1];
          --sp;
          break;
        case Op::kShlI:
          stack[sp - 2] = IToCell(CellToI(stack[sp - 2])
                                  << (stack[sp - 1] & 63));
          --sp;
          break;
        case Op::kShrI:
          stack[sp - 2] = IToCell(CellToI(stack[sp - 2]) >>
                                  (stack[sp - 1] & 63));
          --sp;
          break;
        case Op::kAddF:
          stack[sp - 2] = FToCell(CellToF(stack[sp - 2]) + CellToF(stack[sp - 1]));
          --sp;
          break;
        case Op::kSubF:
          stack[sp - 2] = FToCell(CellToF(stack[sp - 2]) - CellToF(stack[sp - 1]));
          --sp;
          break;
        case Op::kMulF:
          stack[sp - 2] = FToCell(CellToF(stack[sp - 2]) * CellToF(stack[sp - 1]));
          --sp;
          break;
        case Op::kDivF:
          stack[sp - 2] = FToCell(CellToF(stack[sp - 2]) / CellToF(stack[sp - 1]));
          --sp;
          break;
        case Op::kNegF:
          stack[sp - 1] = FToCell(-CellToF(stack[sp - 1]));
          break;
        case Op::kEqI:
          stack[sp - 2] = CellToI(stack[sp - 2]) == CellToI(stack[sp - 1]);
          --sp;
          break;
        case Op::kNeI:
          stack[sp - 2] = CellToI(stack[sp - 2]) != CellToI(stack[sp - 1]);
          --sp;
          break;
        case Op::kLtI:
          stack[sp - 2] = CellToI(stack[sp - 2]) < CellToI(stack[sp - 1]);
          --sp;
          break;
        case Op::kLeI:
          stack[sp - 2] = CellToI(stack[sp - 2]) <= CellToI(stack[sp - 1]);
          --sp;
          break;
        case Op::kGtI:
          stack[sp - 2] = CellToI(stack[sp - 2]) > CellToI(stack[sp - 1]);
          --sp;
          break;
        case Op::kGeI:
          stack[sp - 2] = CellToI(stack[sp - 2]) >= CellToI(stack[sp - 1]);
          --sp;
          break;
        case Op::kEqF:
          stack[sp - 2] = CellToF(stack[sp - 2]) == CellToF(stack[sp - 1]);
          --sp;
          break;
        case Op::kNeF:
          stack[sp - 2] = CellToF(stack[sp - 2]) != CellToF(stack[sp - 1]);
          --sp;
          break;
        case Op::kLtF:
          stack[sp - 2] = CellToF(stack[sp - 2]) < CellToF(stack[sp - 1]);
          --sp;
          break;
        case Op::kLeF:
          stack[sp - 2] = CellToF(stack[sp - 2]) <= CellToF(stack[sp - 1]);
          --sp;
          break;
        case Op::kGtF:
          stack[sp - 2] = CellToF(stack[sp - 2]) > CellToF(stack[sp - 1]);
          --sp;
          break;
        case Op::kGeF:
          stack[sp - 2] = CellToF(stack[sp - 2]) >= CellToF(stack[sp - 1]);
          --sp;
          break;
        case Op::kLogNot:
          stack[sp - 1] = stack[sp - 1] == 0;
          break;
        case Op::kI2F:
          stack[sp - 1] = FToCell(static_cast<float>(CellToI(stack[sp - 1])));
          break;
        case Op::kF2I:
          stack[sp - 1] =
              IToCell(static_cast<std::int64_t>(CellToF(stack[sp - 1])));
          break;
        case Op::kJmp:
          pc = static_cast<std::uint32_t>(ins.a);
          break;
        case Op::kJz:
          if (stack[--sp] == 0) {
            pc = static_cast<std::uint32_t>(ins.a);
          }
          break;
        case Op::kJnz:
          if (stack[--sp] != 0) {
            pc = static_cast<std::uint32_t>(ins.a);
          }
          break;
        case Op::kPtrAdd: {
          std::int64_t index = CellToI(stack[--sp]);
          std::uint64_t ptr = stack[sp - 1];
          std::uint64_t offset =
              (PtrOffsetOf(ptr) +
               static_cast<std::uint64_t>(index * ins.a)) &
              kPtrOffsetMask;
          stack[sp - 1] = PackPtr(PtrSpaceOf(ptr), PtrBlockOf(ptr), offset);
          break;
        }
        case Op::kLd: {
          std::uint64_t ptr = stack[sp - 1];
          std::uint8_t* base;
          std::size_t size;
          if (!ResolvePtr(item, ptr, &base, &size)) {
            VM_TRAP("load through invalid pointer");
          }
          const std::uint64_t off = PtrOffsetOf(ptr);
          const MemElem elem = static_cast<MemElem>(ins.a);
          const std::size_t esz = MemElemSize(elem);
          if (off + esz > size) {
            VM_TRAP("out-of-bounds load at byte offset " + std::to_string(off));
          }
          std::uint64_t value = 0;
          switch (elem) {
            case MemElem::kF32: {
              std::uint32_t raw;
              std::memcpy(&raw, base + off, 4);
              value = raw;
              break;
            }
            case MemElem::kI32: {
              std::int32_t raw;
              std::memcpy(&raw, base + off, 4);
              value = IToCell(raw);
              break;
            }
            case MemElem::kU32: {
              std::uint32_t raw;
              std::memcpy(&raw, base + off, 4);
              value = raw;
              break;
            }
            case MemElem::kI64: {
              std::memcpy(&value, base + off, 8);
              break;
            }
          }
          if (PtrSpaceOf(ptr) == PtrSpace::kGlobal) {
            stats_.bytes_accessed += esz;
          }
          stack[sp - 1] = value;
          break;
        }
        case Op::kSt: {
          std::uint64_t value = stack[--sp];
          std::uint64_t ptr = stack[--sp];
          std::uint8_t* base;
          std::size_t size;
          if (!ResolvePtr(item, ptr, &base, &size)) {
            VM_TRAP("store through invalid pointer");
          }
          const std::uint64_t off = PtrOffsetOf(ptr);
          const MemElem elem = static_cast<MemElem>(ins.a);
          const std::size_t esz = MemElemSize(elem);
          if (off + esz > size) {
            VM_TRAP("out-of-bounds store at byte offset " +
                    std::to_string(off));
          }
          switch (elem) {
            case MemElem::kF32:
            case MemElem::kU32:
            case MemElem::kI32: {
              std::uint32_t raw = static_cast<std::uint32_t>(value);
              std::memcpy(base + off, &raw, 4);
              break;
            }
            case MemElem::kI64:
              std::memcpy(base + off, &value, 8);
              break;
          }
          if (PtrSpaceOf(ptr) == PtrSpace::kGlobal) {
            stats_.bytes_accessed += esz;
          }
          break;
        }
        case Op::kGetGlobalId: {
          std::int64_t d = CellToI(stack[sp - 1]);
          stack[sp - 1] = IToCell(
              d >= 0 && d < 3 ? static_cast<std::int64_t>(item->gid[d]) : 0);
          break;
        }
        case Op::kGetLocalId: {
          std::int64_t d = CellToI(stack[sp - 1]);
          stack[sp - 1] = IToCell(
              d >= 0 && d < 3 ? static_cast<std::int64_t>(item->lid[d]) : 0);
          break;
        }
        case Op::kGetGroupId: {
          std::int64_t d = CellToI(stack[sp - 1]);
          std::int64_t v = 0;
          if (d >= 0 && d < 3) {
            v = static_cast<std::int64_t>(
                (item->gid[d] - config_.global_offset[d]) /
                config_.local_size[d]);
          }
          stack[sp - 1] = IToCell(v);
          break;
        }
        case Op::kGetGlobalSize: {
          std::int64_t d = CellToI(stack[sp - 1]);
          stack[sp - 1] = IToCell(
              d >= 0 && d < 3 ? static_cast<std::int64_t>(config_.global_size[d])
                              : 1);
          break;
        }
        case Op::kGetLocalSize: {
          std::int64_t d = CellToI(stack[sp - 1]);
          stack[sp - 1] = IToCell(
              d >= 0 && d < 3 ? static_cast<std::int64_t>(config_.local_size[d])
                              : 1);
          break;
        }
        case Op::kGetNumGroups: {
          std::int64_t d = CellToI(stack[sp - 1]);
          std::int64_t v = 1;
          if (d >= 0 && d < 3) {
            v = static_cast<std::int64_t>(config_.global_size[d] /
                                          config_.local_size[d]);
          }
          stack[sp - 1] = IToCell(v);
          break;
        }
        case Op::kBarrier:
          item->at_barrier = ins.a;
          sync_back();
          return StopReason::kBarrier;
        case Op::kBuiltin: {
          const Builtin b = static_cast<Builtin>(ins.a);
          switch (b) {
            case Builtin::kSqrt:
              stack[sp - 1] = FToCell(std::sqrt(CellToF(stack[sp - 1])));
              break;
            case Builtin::kFabs:
              stack[sp - 1] = FToCell(std::fabs(CellToF(stack[sp - 1])));
              break;
            case Builtin::kExp:
              stack[sp - 1] = FToCell(std::exp(CellToF(stack[sp - 1])));
              break;
            case Builtin::kLog:
              stack[sp - 1] = FToCell(std::log(CellToF(stack[sp - 1])));
              break;
            case Builtin::kPow:
              stack[sp - 2] = FToCell(
                  std::pow(CellToF(stack[sp - 2]), CellToF(stack[sp - 1])));
              --sp;
              break;
            case Builtin::kFmax:
              stack[sp - 2] = FToCell(
                  std::fmax(CellToF(stack[sp - 2]), CellToF(stack[sp - 1])));
              --sp;
              break;
            case Builtin::kFmin:
              stack[sp - 2] = FToCell(
                  std::fmin(CellToF(stack[sp - 2]), CellToF(stack[sp - 1])));
              --sp;
              break;
            case Builtin::kFloor:
              stack[sp - 1] = FToCell(std::floor(CellToF(stack[sp - 1])));
              break;
            case Builtin::kCeil:
              stack[sp - 1] = FToCell(std::ceil(CellToF(stack[sp - 1])));
              break;
            case Builtin::kSin:
              stack[sp - 1] = FToCell(std::sin(CellToF(stack[sp - 1])));
              break;
            case Builtin::kCos:
              stack[sp - 1] = FToCell(std::cos(CellToF(stack[sp - 1])));
              break;
            case Builtin::kMinI: {
              std::int64_t x = CellToI(stack[sp - 2]);
              std::int64_t y = CellToI(stack[sp - 1]);
              stack[sp - 2] = IToCell(x < y ? x : y);
              --sp;
              break;
            }
            case Builtin::kMaxI: {
              std::int64_t x = CellToI(stack[sp - 2]);
              std::int64_t y = CellToI(stack[sp - 1]);
              stack[sp - 2] = IToCell(x > y ? x : y);
              --sp;
              break;
            }
            case Builtin::kAbsI: {
              std::int64_t x = CellToI(stack[sp - 1]);
              stack[sp - 1] = IToCell(x < 0 ? -x : x);
              break;
            }
          }
          break;
        }
        case Op::kRet:
          item->done = true;
          sync_back();
          return StopReason::kDone;
      }
    }
#undef VM_TRAP
  }

  const CompiledKernel& kernel_;
  const LaunchConfig& config_;
  const std::vector<KernelArg>& args_;
  const std::uint64_t max_instr_;
  std::vector<std::vector<std::uint8_t>> local_blocks_;
  std::size_t group_size_ = 0;
  ExecStats stats_;
};

}  // namespace

ava::Result<ExecStats> ExecuteKernel(const CompiledKernel& kernel,
                                     const LaunchConfig& config,
                                     const std::vector<KernelArg>& args,
                                     std::uint64_t max_instructions_per_item) {
  if (args.size() < kernel.params.size()) {
    return ava::FailedPrecondition("kernel '" + kernel.name +
                                   "': not all arguments set");
  }
  for (std::size_t i = 0; i < kernel.params.size(); ++i) {
    const ParamInfo& p = kernel.params[i];
    const KernelArg& a = args[i];
    const char* want = nullptr;
    switch (p.kind) {
      case ParamKind::kScalar:
        if (a.kind != KernelArg::Kind::kScalar) want = "scalar";
        break;
      case ParamKind::kGlobalPtr:
        if (a.kind != KernelArg::Kind::kBuffer) want = "buffer";
        break;
      case ParamKind::kLocalPtr:
        if (a.kind != KernelArg::Kind::kLocal) want = "local size";
        break;
    }
    if (want != nullptr) {
      return ava::FailedPrecondition(
          "kernel '" + kernel.name + "' argument " + std::to_string(i) +
          " ('" + p.name + "'): expected a " + want + " argument");
    }
  }
  std::uint64_t budget = max_instructions_per_item == 0
                             ? kDefaultMaxInstrPerItem
                             : max_instructions_per_item;
  return GroupRunner(kernel, config, args, budget).Run();
}

ava::Result<std::uint64_t> ScalarArgToCell(Scalar declared, const void* bytes,
                                           std::size_t size) {
  if (bytes == nullptr) {
    return ava::InvalidArgument("null scalar argument value");
  }
  switch (declared) {
    case Scalar::kInt: {
      if (size != 4) {
        return ava::InvalidArgument("int argument requires 4 bytes");
      }
      std::int32_t v;
      std::memcpy(&v, bytes, 4);
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
    }
    case Scalar::kUint: {
      if (size != 4) {
        return ava::InvalidArgument("uint argument requires 4 bytes");
      }
      std::uint32_t v;
      std::memcpy(&v, bytes, 4);
      return static_cast<std::uint64_t>(v);
    }
    case Scalar::kLong: {
      if (size != 8 && size != 4) {
        return ava::InvalidArgument("long argument requires 8 bytes");
      }
      if (size == 8) {
        std::int64_t v;
        std::memcpy(&v, bytes, 8);
        return static_cast<std::uint64_t>(v);
      }
      std::int32_t v;
      std::memcpy(&v, bytes, 4);
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
    }
    case Scalar::kFloat: {
      if (size != 4) {
        return ava::InvalidArgument("float argument requires 4 bytes");
      }
      std::uint32_t v;
      std::memcpy(&v, bytes, 4);
      return static_cast<std::uint64_t>(v);
    }
    case Scalar::kVoid:
      break;
  }
  return ava::InvalidArgument("unsupported scalar parameter type");
}

}  // namespace vcl
