// Lexer for the VCL kernel language (a C subset with OpenCL-style
// __kernel/__global/__local qualifiers). Produces a flat token stream with
// line/column info for diagnostics that end up in the program build log.
#ifndef AVA_SRC_VCL_COMPILER_LEXER_H_
#define AVA_SRC_VCL_COMPILER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace vcl {

enum class TokKind : std::uint8_t {
  kEof,
  kIdent,
  kIntLit,
  kFloatLit,
  // Keywords.
  kKwKernel,    // __kernel
  kKwGlobal,    // __global
  kKwLocal,     // __local
  kKwConst,     // const
  kKwVoid,
  kKwInt,
  kKwUint,
  kKwLong,
  kKwFloat,
  kKwIf,
  kKwElse,
  kKwFor,
  kKwWhile,
  kKwDo,
  kKwReturn,
  kKwBreak,
  kKwContinue,
  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemi,
  kComma,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAssign,      // =
  kPlusAssign,  // +=
  kMinusAssign,
  kStarAssign,
  kSlashAssign,
  kPlusPlus,
  kMinusMinus,
  kEq,  // ==
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAndAnd,
  kOrOr,
  kBang,
  kAmp,
  kPipe,
  kCaret,
  kShl,
  kShr,
  kQuestion,
  kColon,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;          // Identifier spelling or literal text.
  std::int64_t int_value = 0;
  float float_value = 0.0f;
  int line = 0;
  int column = 0;
};

// Tokenizes `source`. Returns InvalidArgument with a "line:col: message"
// diagnostic on malformed input (stray characters, bad literals,
// unterminated comments).
ava::Result<std::vector<Token>> Lex(std::string_view source);

// Debug name of a token kind ("'+='", "identifier", ...).
std::string_view TokKindName(TokKind kind);

}  // namespace vcl

#endif  // AVA_SRC_VCL_COMPILER_LEXER_H_
