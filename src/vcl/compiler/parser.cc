#include "src/vcl/compiler/parser.h"

#include <string>
#include <utility>
#include <vector>

#include "src/vcl/compiler/lexer.h"

namespace vcl {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  ava::Result<Program> Run() {
    Program program;
    while (!Check(TokKind::kEof)) {
      auto kernel = ParseKernel();
      if (!kernel.ok()) {
        return kernel.status();
      }
      program.kernels.push_back(std::move(kernel).value());
    }
    if (program.kernels.empty()) {
      return ava::InvalidArgument("program contains no __kernel functions");
    }
    return program;
  }

 private:
  // ------------------------------ token helpers ----------------------------

  const Token& Peek(std::size_t delta = 0) const {
    std::size_t i = pos_ + delta;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool Check(TokKind kind) const { return Peek().kind == kind; }

  const Token& Advance() {
    const Token& t = toks_[pos_];
    if (pos_ + 1 < toks_.size()) {
      ++pos_;
    }
    return t;
  }

  bool Match(TokKind kind) {
    if (!Check(kind)) {
      return false;
    }
    Advance();
    return true;
  }

  ava::Status Error(const std::string& message) const {
    const Token& t = Peek();
    return ava::InvalidArgument(std::to_string(t.line) + ":" +
                                std::to_string(t.column) + ": " + message);
  }

  ava::Status Expect(TokKind kind) {
    if (Match(kind)) {
      return ava::OkStatus();
    }
    return Error(std::string("expected ") + std::string(TokKindName(kind)) +
                 ", found " + std::string(TokKindName(Peek().kind)) +
                 (Peek().text.empty() ? "" : " '" + Peek().text + "'"));
  }

  // ------------------------------- types -----------------------------------

  static bool IsScalarKeyword(TokKind k) {
    return k == TokKind::kKwVoid || k == TokKind::kKwInt ||
           k == TokKind::kKwUint || k == TokKind::kKwLong ||
           k == TokKind::kKwFloat;
  }

  static bool IsTypeStart(TokKind k) {
    return IsScalarKeyword(k) || k == TokKind::kKwGlobal ||
           k == TokKind::kKwLocal || k == TokKind::kKwConst;
  }

  static Scalar ScalarFromKeyword(TokKind k) {
    switch (k) {
      case TokKind::kKwInt:
        return Scalar::kInt;
      case TokKind::kKwUint:
        return Scalar::kUint;
      case TokKind::kKwLong:
        return Scalar::kLong;
      case TokKind::kKwFloat:
        return Scalar::kFloat;
      default:
        return Scalar::kVoid;
    }
  }

  // Parses `[__global|__local|const]* scalar [const]* [*]`.
  ava::Result<Type> ParseType() {
    MemSpace space = MemSpace::kNone;
    bool is_const = false;
    bool saw_space_qualifier = false;
    while (true) {
      if (Match(TokKind::kKwGlobal)) {
        space = MemSpace::kGlobal;
        saw_space_qualifier = true;
      } else if (Match(TokKind::kKwLocal)) {
        space = MemSpace::kLocal;
        saw_space_qualifier = true;
      } else if (Match(TokKind::kKwConst)) {
        is_const = true;
      } else {
        break;
      }
    }
    if (!IsScalarKeyword(Peek().kind)) {
      return Error("expected a type name");
    }
    Scalar scalar = ScalarFromKeyword(Advance().kind);
    while (Match(TokKind::kKwConst)) {
      is_const = true;
    }
    bool is_pointer = Match(TokKind::kStar);
    while (Match(TokKind::kKwConst)) {
      // `T* const p` — the pointer itself is const; irrelevant here.
    }
    if (is_pointer) {
      if (scalar == Scalar::kVoid) {
        return Error("void* is not supported in kernels");
      }
      if (space == MemSpace::kNone) {
        // Pointers without an address space qualifier are private-array
        // pointers (produced only internally); forbid in source.
        return Error("pointer parameters require __global or __local");
      }
      return Type::Pointer(scalar, space, is_const);
    }
    if (saw_space_qualifier && space == MemSpace::kLocal) {
      // `__local float name[N]` declaration: scalar type carrying the local
      // space; the declarator supplies the array.
      Type t{scalar, MemSpace::kNone, is_const};
      // Encoded via separate flag path in ParseDecl; return scalar type and
      // let caller see the __local through local_pending_.
      local_pending_ = true;
      return t;
    }
    if (saw_space_qualifier) {
      return Error("__global requires a pointer type");
    }
    Type t{scalar, MemSpace::kNone, is_const};
    return t;
  }

  // ------------------------------ kernels ----------------------------------

  ava::Result<KernelDef> ParseKernel() {
    AVA_RETURN_IF_ERROR(Expect(TokKind::kKwKernel));
    KernelDef def;
    def.line = Peek().line;
    AVA_RETURN_IF_ERROR(Expect(TokKind::kKwVoid));
    if (!Check(TokKind::kIdent)) {
      return Error("expected kernel name");
    }
    def.name = Advance().text;
    AVA_RETURN_IF_ERROR(Expect(TokKind::kLParen));
    if (!Check(TokKind::kRParen)) {
      do {
        KernelParam param;
        local_pending_ = false;
        auto type = ParseType();
        if (!type.ok()) {
          return type.status();
        }
        if (local_pending_) {
          return Error("__local kernel parameters must be pointers");
        }
        param.type = *type;
        if (!Check(TokKind::kIdent)) {
          return Error("expected parameter name");
        }
        param.name = Advance().text;
        def.params.push_back(std::move(param));
      } while (Match(TokKind::kComma));
    }
    AVA_RETURN_IF_ERROR(Expect(TokKind::kRParen));
    auto body = ParseBlock();
    if (!body.ok()) {
      return body.status();
    }
    def.body = std::move(body).value();
    return def;
  }

  // ----------------------------- statements --------------------------------

  ava::Result<StmtPtr> ParseBlock() {
    int line = Peek().line;
    AVA_RETURN_IF_ERROR(Expect(TokKind::kLBrace));
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::kBlock;
    block->line = line;
    while (!Check(TokKind::kRBrace) && !Check(TokKind::kEof)) {
      AVA_RETURN_IF_ERROR(ParseStatementInto(&block->body));
    }
    AVA_RETURN_IF_ERROR(Expect(TokKind::kRBrace));
    return StmtPtr(std::move(block));
  }

  // Appends one parsed statement (possibly several kDecl statements for
  // `int i, j;`) into `out`.
  ava::Status ParseStatementInto(std::vector<StmtPtr>* out) {
    if (Check(TokKind::kLBrace)) {
      AVA_ASSIGN_OR_RETURN(auto block, ParseBlock());
      out->push_back(std::move(block));
      return ava::OkStatus();
    }
    if (IsTypeStart(Peek().kind)) {
      return ParseDeclList(out);
    }
    AVA_ASSIGN_OR_RETURN(auto stmt, ParseSimpleStatement());
    if (stmt != nullptr) {
      out->push_back(std::move(stmt));
    }
    return ava::OkStatus();
  }

  // Declarations: `type declarator (',' declarator)* ';'`.
  ava::Status ParseDeclList(std::vector<StmtPtr>* out) {
    local_pending_ = false;
    AVA_ASSIGN_OR_RETURN(Type base, ParseType());
    bool is_local = local_pending_;
    do {
      AVA_ASSIGN_OR_RETURN(auto decl, ParseDeclarator(base, is_local));
      out->push_back(std::move(decl));
    } while (Match(TokKind::kComma));
    return Expect(TokKind::kSemi);
  }

  ava::Result<StmtPtr> ParseDeclarator(Type base, bool is_local) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kDecl;
    stmt->line = Peek().line;
    stmt->decl_type = base;
    if (!Check(TokKind::kIdent)) {
      return Error("expected variable name");
    }
    stmt->decl_name = Advance().text;
    if (Match(TokKind::kLBracket)) {
      if (!Check(TokKind::kIntLit)) {
        return Error("array size must be an integer literal");
      }
      stmt->array_size = Advance().int_value;
      if (stmt->array_size <= 0) {
        return Error("array size must be positive");
      }
      AVA_RETURN_IF_ERROR(Expect(TokKind::kRBracket));
      stmt->decl_type.space = is_local ? MemSpace::kLocal : MemSpace::kPrivate;
    } else if (is_local) {
      return Error("__local variables must be arrays");
    }
    if (Match(TokKind::kAssign)) {
      if (stmt->array_size > 0) {
        return Error("array initializers are not supported");
      }
      AVA_ASSIGN_OR_RETURN(stmt->init, ParseAssignment());
    }
    return StmtPtr(std::move(stmt));
  }

  // Statements other than blocks and declarations. Returns nullptr for a
  // bare ';'.
  ava::Result<StmtPtr> ParseSimpleStatement() {
    int line = Peek().line;
    if (Match(TokKind::kSemi)) {
      return StmtPtr(nullptr);
    }
    if (Match(TokKind::kKwIf)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kIf;
      stmt->line = line;
      AVA_RETURN_IF_ERROR(Expect(TokKind::kLParen));
      AVA_ASSIGN_OR_RETURN(stmt->cond, ParseExpression());
      AVA_RETURN_IF_ERROR(Expect(TokKind::kRParen));
      AVA_ASSIGN_OR_RETURN(stmt->then_branch, ParseNestedStatement());
      if (Match(TokKind::kKwElse)) {
        AVA_ASSIGN_OR_RETURN(stmt->else_branch, ParseNestedStatement());
      }
      return StmtPtr(std::move(stmt));
    }
    if (Match(TokKind::kKwWhile)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kWhile;
      stmt->line = line;
      AVA_RETURN_IF_ERROR(Expect(TokKind::kLParen));
      AVA_ASSIGN_OR_RETURN(stmt->cond, ParseExpression());
      AVA_RETURN_IF_ERROR(Expect(TokKind::kRParen));
      AVA_ASSIGN_OR_RETURN(stmt->then_branch, ParseNestedStatement());
      return StmtPtr(std::move(stmt));
    }
    if (Match(TokKind::kKwDo)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kDoWhile;
      stmt->line = line;
      AVA_ASSIGN_OR_RETURN(stmt->then_branch, ParseNestedStatement());
      AVA_RETURN_IF_ERROR(Expect(TokKind::kKwWhile));
      AVA_RETURN_IF_ERROR(Expect(TokKind::kLParen));
      AVA_ASSIGN_OR_RETURN(stmt->cond, ParseExpression());
      AVA_RETURN_IF_ERROR(Expect(TokKind::kRParen));
      AVA_RETURN_IF_ERROR(Expect(TokKind::kSemi));
      return StmtPtr(std::move(stmt));
    }
    if (Match(TokKind::kKwFor)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kFor;
      stmt->line = line;
      AVA_RETURN_IF_ERROR(Expect(TokKind::kLParen));
      if (!Match(TokKind::kSemi)) {
        if (IsTypeStart(Peek().kind)) {
          local_pending_ = false;
          AVA_ASSIGN_OR_RETURN(Type base, ParseType());
          if (local_pending_) {
            return Error("__local declarations are not allowed in for-init");
          }
          AVA_ASSIGN_OR_RETURN(stmt->for_init, ParseDeclarator(base, false));
        } else {
          auto init = std::make_unique<Stmt>();
          init->kind = StmtKind::kExpr;
          init->line = line;
          AVA_ASSIGN_OR_RETURN(init->expr, ParseExpression());
          stmt->for_init = std::move(init);
        }
        AVA_RETURN_IF_ERROR(Expect(TokKind::kSemi));
      }
      if (!Check(TokKind::kSemi)) {
        AVA_ASSIGN_OR_RETURN(stmt->cond, ParseExpression());
      }
      AVA_RETURN_IF_ERROR(Expect(TokKind::kSemi));
      if (!Check(TokKind::kRParen)) {
        AVA_ASSIGN_OR_RETURN(stmt->for_step, ParseExpression());
      }
      AVA_RETURN_IF_ERROR(Expect(TokKind::kRParen));
      AVA_ASSIGN_OR_RETURN(stmt->then_branch, ParseNestedStatement());
      return StmtPtr(std::move(stmt));
    }
    if (Match(TokKind::kKwReturn)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kReturn;
      stmt->line = line;
      if (!Check(TokKind::kSemi)) {
        return Error("kernels return void; 'return' takes no value");
      }
      AVA_RETURN_IF_ERROR(Expect(TokKind::kSemi));
      return StmtPtr(std::move(stmt));
    }
    if (Match(TokKind::kKwBreak)) {
      AVA_RETURN_IF_ERROR(Expect(TokKind::kSemi));
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kBreak;
      stmt->line = line;
      return StmtPtr(std::move(stmt));
    }
    if (Match(TokKind::kKwContinue)) {
      AVA_RETURN_IF_ERROR(Expect(TokKind::kSemi));
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kContinue;
      stmt->line = line;
      return StmtPtr(std::move(stmt));
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kExpr;
    stmt->line = line;
    AVA_ASSIGN_OR_RETURN(stmt->expr, ParseExpression());
    AVA_RETURN_IF_ERROR(Expect(TokKind::kSemi));
    return StmtPtr(std::move(stmt));
  }

  // A statement used as an if/loop body: a block or a single statement
  // (wrapped so downstream code always sees a block for scoping).
  ava::Result<StmtPtr> ParseNestedStatement() {
    if (Check(TokKind::kLBrace)) {
      return ParseBlock();
    }
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::kBlock;
    block->line = Peek().line;
    AVA_RETURN_IF_ERROR(ParseStatementInto(&block->body));
    return StmtPtr(std::move(block));
  }

  // ----------------------------- expressions -------------------------------

  ava::Result<ExprPtr> ParseExpression() { return ParseAssignment(); }

  ava::Result<ExprPtr> ParseAssignment() {
    AVA_ASSIGN_OR_RETURN(auto lhs, ParseTernary());
    TokKind k = Peek().kind;
    bool compound = false;
    BinOp op = BinOp::kAdd;
    switch (k) {
      case TokKind::kAssign:
        break;
      case TokKind::kPlusAssign:
        compound = true;
        op = BinOp::kAdd;
        break;
      case TokKind::kMinusAssign:
        compound = true;
        op = BinOp::kSub;
        break;
      case TokKind::kStarAssign:
        compound = true;
        op = BinOp::kMul;
        break;
      case TokKind::kSlashAssign:
        compound = true;
        op = BinOp::kDiv;
        break;
      default:
        return lhs;
    }
    int line = Peek().line;
    Advance();
    AVA_ASSIGN_OR_RETURN(auto rhs, ParseAssignment());
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kAssign;
    node->line = line;
    node->is_compound_assign = compound;
    node->assign_op = op;
    node->a = std::move(lhs);
    node->b = std::move(rhs);
    return ExprPtr(std::move(node));
  }

  ava::Result<ExprPtr> ParseTernary() {
    AVA_ASSIGN_OR_RETURN(auto cond, ParseBinary(0));
    if (!Match(TokKind::kQuestion)) {
      return cond;
    }
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kTernary;
    node->line = cond->line;
    node->a = std::move(cond);
    AVA_ASSIGN_OR_RETURN(node->b, ParseAssignment());
    AVA_RETURN_IF_ERROR(Expect(TokKind::kColon));
    AVA_ASSIGN_OR_RETURN(node->c, ParseAssignment());
    return ExprPtr(std::move(node));
  }

  // Precedence-climbing over binary operators. Level 0 is weakest (||).
  static int BinPrecedence(TokKind k) {
    switch (k) {
      case TokKind::kOrOr:
        return 1;
      case TokKind::kAndAnd:
        return 2;
      case TokKind::kPipe:
        return 3;
      case TokKind::kCaret:
        return 4;
      case TokKind::kAmp:
        return 5;
      case TokKind::kEq:
      case TokKind::kNe:
        return 6;
      case TokKind::kLt:
      case TokKind::kLe:
      case TokKind::kGt:
      case TokKind::kGe:
        return 7;
      case TokKind::kShl:
      case TokKind::kShr:
        return 8;
      case TokKind::kPlus:
      case TokKind::kMinus:
        return 9;
      case TokKind::kStar:
      case TokKind::kSlash:
      case TokKind::kPercent:
        return 10;
      default:
        return -1;
    }
  }

  static BinOp BinOpFromToken(TokKind k) {
    switch (k) {
      case TokKind::kOrOr:
        return BinOp::kLogOr;
      case TokKind::kAndAnd:
        return BinOp::kLogAnd;
      case TokKind::kPipe:
        return BinOp::kBitOr;
      case TokKind::kCaret:
        return BinOp::kBitXor;
      case TokKind::kAmp:
        return BinOp::kBitAnd;
      case TokKind::kEq:
        return BinOp::kEq;
      case TokKind::kNe:
        return BinOp::kNe;
      case TokKind::kLt:
        return BinOp::kLt;
      case TokKind::kLe:
        return BinOp::kLe;
      case TokKind::kGt:
        return BinOp::kGt;
      case TokKind::kGe:
        return BinOp::kGe;
      case TokKind::kShl:
        return BinOp::kShl;
      case TokKind::kShr:
        return BinOp::kShr;
      case TokKind::kPlus:
        return BinOp::kAdd;
      case TokKind::kMinus:
        return BinOp::kSub;
      case TokKind::kStar:
        return BinOp::kMul;
      case TokKind::kSlash:
        return BinOp::kDiv;
      default:
        return BinOp::kRem;
    }
  }

  ava::Result<ExprPtr> ParseBinary(int min_prec) {
    AVA_ASSIGN_OR_RETURN(auto lhs, ParseUnary());
    while (true) {
      int prec = BinPrecedence(Peek().kind);
      if (prec < 0 || prec < min_prec) {
        return lhs;
      }
      TokKind op_tok = Peek().kind;
      int line = Peek().line;
      Advance();
      AVA_ASSIGN_OR_RETURN(auto rhs, ParseBinary(prec + 1));
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->line = line;
      node->bin_op = BinOpFromToken(op_tok);
      node->a = std::move(lhs);
      node->b = std::move(rhs);
      lhs = std::move(node);
    }
  }

  ava::Result<ExprPtr> ParseUnary() {
    int line = Peek().line;
    if (Match(TokKind::kMinus)) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->line = line;
      node->un_op = UnOp::kNeg;
      AVA_ASSIGN_OR_RETURN(node->a, ParseUnary());
      return ExprPtr(std::move(node));
    }
    if (Match(TokKind::kPlus)) {
      return ParseUnary();
    }
    if (Match(TokKind::kBang)) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->line = line;
      node->un_op = UnOp::kLogNot;
      AVA_ASSIGN_OR_RETURN(node->a, ParseUnary());
      return ExprPtr(std::move(node));
    }
    if (Check(TokKind::kPlusPlus) || Check(TokKind::kMinusMinus)) {
      bool inc = Check(TokKind::kPlusPlus);
      Advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kIncDec;
      node->line = line;
      node->is_prefix = true;
      node->is_increment = inc;
      AVA_ASSIGN_OR_RETURN(node->a, ParseUnary());
      return ExprPtr(std::move(node));
    }
    // Cast: '(' scalar-type ')' unary.
    if (Check(TokKind::kLParen) && IsScalarKeyword(Peek(1).kind) &&
        Peek(2).kind == TokKind::kRParen) {
      Advance();  // (
      Scalar s = ScalarFromKeyword(Advance().kind);
      Advance();  // )
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kCast;
      node->line = line;
      node->cast_type = Type{s, MemSpace::kNone, false};
      AVA_ASSIGN_OR_RETURN(node->a, ParseUnary());
      return ExprPtr(std::move(node));
    }
    return ParsePostfix();
  }

  ava::Result<ExprPtr> ParsePostfix() {
    AVA_ASSIGN_OR_RETURN(auto expr, ParsePrimary());
    while (true) {
      if (Match(TokKind::kLBracket)) {
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kIndex;
        node->line = expr->line;
        node->a = std::move(expr);
        AVA_ASSIGN_OR_RETURN(node->b, ParseExpression());
        AVA_RETURN_IF_ERROR(Expect(TokKind::kRBracket));
        expr = std::move(node);
      } else if (Check(TokKind::kPlusPlus) || Check(TokKind::kMinusMinus)) {
        bool inc = Check(TokKind::kPlusPlus);
        int line = Peek().line;
        Advance();
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kIncDec;
        node->line = line;
        node->is_prefix = false;
        node->is_increment = inc;
        node->a = std::move(expr);
        expr = std::move(node);
      } else {
        return expr;
      }
    }
  }

  ava::Result<ExprPtr> ParsePrimary() {
    int line = Peek().line;
    if (Check(TokKind::kIntLit)) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kIntLit;
      node->line = line;
      node->int_value = Advance().int_value;
      return ExprPtr(std::move(node));
    }
    if (Check(TokKind::kFloatLit)) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kFloatLit;
      node->line = line;
      node->float_value = Advance().float_value;
      return ExprPtr(std::move(node));
    }
    if (Match(TokKind::kLParen)) {
      AVA_ASSIGN_OR_RETURN(auto inner, ParseExpression());
      AVA_RETURN_IF_ERROR(Expect(TokKind::kRParen));
      return inner;
    }
    if (Check(TokKind::kIdent)) {
      std::string name = Advance().text;
      if (Match(TokKind::kLParen)) {
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kCall;
        node->line = line;
        node->name = std::move(name);
        if (!Check(TokKind::kRParen)) {
          do {
            AVA_ASSIGN_OR_RETURN(auto arg, ParseAssignment());
            node->args.push_back(std::move(arg));
          } while (Match(TokKind::kComma));
        }
        AVA_RETURN_IF_ERROR(Expect(TokKind::kRParen));
        return ExprPtr(std::move(node));
      }
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kVarRef;
      node->line = line;
      node->name = std::move(name);
      return ExprPtr(std::move(node));
    }
    return Error(std::string("unexpected token ") +
                 std::string(TokKindName(Peek().kind)) + " in expression");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  bool local_pending_ = false;
};

}  // namespace

ava::Result<Program> ParseProgram(std::string_view source) {
  auto tokens = Lex(source);
  if (!tokens.ok()) {
    return tokens.status();
  }
  return Parser(std::move(tokens).value()).Run();
}

}  // namespace vcl
