// Transfer-cache ablation (DESIGN.md §11): what the content-addressed
// bulk-transfer cache buys on the paths it targets, and what it costs on
// the paths it does not.
//
// Four experiments:
//   1. Repeated identical payloads (the weight-upload / per-timestep input
//      shape): blocking 1 MiB-class writes of the SAME bytes, arena path
//      vs. cache path. The cache sends a 24-byte descriptor after the
//      first install, so the steady-state cost is one Hash64 pass plus a
//      descriptor round trip instead of a bulk copy.
//   2. Cold transfers (every payload distinct): the cache's overhead case.
//      Full hashing and installs are gated behind a 4 KiB prefix
//      fingerprint that must repeat first, so a cold send pays about a
//      microsecond on top of the arena transfer — no full-payload hash, no
//      server-side verify, no cache copy. Must stay within noise of
//      arena-only.
//   3. The policed scenario (the headline): a per-VM bytes_per_sec budget,
//      where the router charges cached hits only their descriptor bytes.
//      An arena-only guest pays the full payload against its allotment
//      every send; a cached guest re-sending identical bytes is limited
//      only by the round trip. This is where the >=5x acceptance number
//      lives — the raw unpoliced hit path is bounded below by one Hash64
//      pass over the payload, the policed path by policy.
//   4. Equivalence: every Figure-5 workload self-validates byte-identical
//      results with the cache enabled, disabled (AVA_XFER_CACHE_BYTES=0),
//      and under forced misses (guest believes digests resident, server
//      cache zeroed -> every cached send takes the miss-retry path).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/harness.h"
#include "src/common/hash64.h"
#include "src/workloads/vcl_workloads.h"

namespace {

struct CacheRig {
  bench::GuestVm* vm = nullptr;
  ava_gen_vcl::VclApi api;
  vcl_command_queue queue = nullptr;
  vcl_mem mem = nullptr;

  // xfer_min < 0 leaves the cache at its default threshold; 0 disables the
  // guest-side cache path entirely (pure PR 3 arena behavior).
  CacheRig(bench::Stack& stack, ava::VmId vm_id, std::int64_t xfer_min,
           std::size_t bytes, ava::VmPolicy policy = {}) {
    ava::GuestEndpoint::Options opts;
    opts.arena_threshold_bytes = 64 << 10;
    opts.xfer_cache_min_bytes = xfer_min;
    vm = &stack.AddVm(vm_id, bench::TransportKind::kShmRing, opts, policy);
    api = vm->VclApi();
    vcl_platform_id platform = nullptr;
    api.vclGetPlatformIDs(1, &platform, nullptr);
    vcl_device_id device = nullptr;
    api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
    vcl_int err = VCL_SUCCESS;
    vcl_context ctx = api.vclCreateContext(&device, 1, &err);
    queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
    mem = api.vclCreateBuffer(ctx, 0, bytes, nullptr, &err);
  }

  double WriteNs(const std::uint8_t* host, std::size_t bytes) {
    ava::Stopwatch watch;
    api.vclEnqueueWriteBuffer(queue, mem, VCL_TRUE, 0, bytes, host, 0,
                              nullptr, nullptr);
    return watch.ElapsedSeconds() * 1e9;
  }
};

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// Experiment 1+2: interleaved A/B on identical vs. distinct payloads.
void HitAndColdAblation() {
  std::printf(
      "Repeated identical 1 MiB-class writes — arena path vs. transfer "
      "cache\n\n");
  std::printf("%-12s %14s %14s %10s %12s\n", "buffer", "arena", "cached",
              "speedup", "bytes saved");
  bench::PrintRule(68);
  const std::size_t kSizes[] = {256u << 10, 1u << 20, 4u << 20};
  constexpr int kReps = 21;
  for (std::size_t bytes : kSizes) {
    vcl::ResetDefaultSilo({});
    bench::Stack stack;
    CacheRig arena_rig(stack, 1, /*xfer_min=*/0, bytes);
    CacheRig cache_rig(stack, 2, /*xfer_min=*/64 << 10, bytes);
    std::vector<std::uint8_t> host(bytes, 0x5A);
    // Warm both paths; the cache rig's second send installs the digest
    // (installs are gated on the second sighting), so the measured region
    // is all hits.
    for (int i = 0; i < 2; ++i) {
      arena_rig.WriteNs(host.data(), bytes);
      cache_rig.WriteNs(host.data(), bytes);
    }
    std::vector<double> arena_ns, cached_ns;
    for (int rep = 0; rep < kReps; ++rep) {
      arena_ns.push_back(arena_rig.WriteNs(host.data(), bytes));
      cached_ns.push_back(cache_rig.WriteNs(host.data(), bytes));
    }
    const double a = Median(arena_ns), c = Median(cached_ns);
    std::printf("%8zu KiB %12.0fns %12.0fns %9.2fx %9llu MiB\n", bytes >> 10,
                a, c, a / c,
                static_cast<unsigned long long>(
                    cache_rig.vm->endpoint->xfer_hits() * bytes >> 20));
  }
  bench::PrintRule(68);
  std::printf(
      "cached steady state = one Hash64 pass + a 24-byte descriptor round\n"
      "trip; the payload bytes never cross the ring.\n\n");

  std::printf("Cold transfers (every payload distinct) — cache overhead\n\n");
  std::printf("%-12s %14s %14s %10s\n", "buffer", "arena", "cached-cold",
              "ratio");
  bench::PrintRule(56);
  for (std::size_t bytes : kSizes) {
    vcl::ResetDefaultSilo({});
    bench::Stack stack;
    CacheRig arena_rig(stack, 1, /*xfer_min=*/0, bytes);
    CacheRig cache_rig(stack, 2, /*xfer_min=*/64 << 10, bytes);
    std::vector<std::uint8_t> host(bytes, 0x5A);
    arena_rig.WriteNs(host.data(), bytes);
    cache_rig.WriteNs(host.data(), bytes);
    std::vector<double> arena_ns, cached_ns;
    for (int rep = 0; rep < kReps; ++rep) {
      host[0] = static_cast<std::uint8_t>(rep * 2);  // new digest every send
      arena_ns.push_back(arena_rig.WriteNs(host.data(), bytes));
      host[0] = static_cast<std::uint8_t>(rep * 2 + 1);
      cached_ns.push_back(cache_rig.WriteNs(host.data(), bytes));
    }
    const double a = Median(arena_ns), c = Median(cached_ns);
    std::printf("%8zu KiB %12.0fns %12.0fns %9.2fx\n", bytes >> 10, a, c,
                c / a);
  }
  bench::PrintRule(56);
  std::printf(
      "cold cost = a 4 KiB prefix probe per send (full hashing and\n"
      "installs wait for a repeated prefix, so never-repeating payloads\n"
      "skip the full-payload hash, the server-side verify, and the cache\n"
      "copy entirely); the acceptance bound is the perf-gate margin.\n\n");
}

// Experiment 3: identical payloads under a per-VM byte budget.
void PolicedAblation() {
  constexpr std::size_t kBytes = 1u << 20;
  constexpr double kBytesPerSec = 64.0 * (1u << 20);  // 64 MiB/s allotment
  std::printf(
      "Policed guests (bytes_per_sec = 64 MiB/s) — repeated identical "
      "1 MiB writes\n\n");
  vcl::ResetDefaultSilo({});
  bench::Stack stack;
  ava::VmPolicy policy;
  policy.bytes_per_sec = kBytesPerSec;
  CacheRig arena_rig(stack, 1, /*xfer_min=*/0, kBytes, policy);
  CacheRig cache_rig(stack, 2, /*xfer_min=*/64 << 10, kBytes, policy);
  std::vector<std::uint8_t> host(kBytes, 0x5A);
  // Drain each rig's token-bucket burst (one second of tokens) so the
  // measured region reflects steady-state policing, not the initial burst.
  const int kBurstWrites =
      static_cast<int>(kBytesPerSec / static_cast<double>(kBytes)) + 2;
  for (int i = 0; i < kBurstWrites; ++i) {
    arena_rig.WriteNs(host.data(), kBytes);
    cache_rig.WriteNs(host.data(), kBytes);
  }
  constexpr int kReps = 9;
  std::vector<double> arena_ns, cached_ns;
  for (int rep = 0; rep < kReps; ++rep) {
    arena_ns.push_back(arena_rig.WriteNs(host.data(), kBytes));
    cached_ns.push_back(cache_rig.WriteNs(host.data(), kBytes));
  }
  const double a = Median(arena_ns), c = Median(cached_ns);
  std::printf("%-22s %14.0fns\n", "arena (full charge)", a);
  std::printf("%-22s %14.0fns\n", "cached (descriptor)", c);
  std::printf("%-22s %13.1fx\n", "speedup", a / c);
  bench::PrintRule(40);
  std::printf(
      "the router charges a cached hit only its descriptor bytes\n"
      "(router.cached_bytes counts the logical payload for accounting),\n"
      "so a policed guest re-sending resident bytes is bounded by the\n"
      "round trip, not its bandwidth allotment.\n\n");
}

// Experiment 4: result equivalence across cache configurations. Workloads
// validate their own outputs (options.validate), so an OK status means the
// computed bytes matched the expected results exactly.
bool EquivalenceSweep() {
  workloads::WorkloadOptions options;
  std::printf("Workload equivalence — cached vs. disabled vs. forced-miss\n\n");
  std::printf("%-12s %10s %10s %12s\n", "benchmark", "cached", "disabled",
              "forced-miss");
  bench::PrintRule(48);
  bool all_ok = true;
  for (const auto& workload : workloads::AllVclWorkloads()) {
    bool ok[3] = {false, false, false};
    for (int mode = 0; mode < 3; ++mode) {
      if (mode == 1) {
        ::setenv("AVA_XFER_CACHE_BYTES", "0", 1);
      } else {
        ::unsetenv("AVA_XFER_CACHE_BYTES");
      }
      vcl::ResetDefaultSilo({});
      bench::Stack stack;
      ava::GuestEndpoint::Options opts;
      opts.arena_threshold_bytes = 64 << 10;
      opts.xfer_cache_min_bytes = mode == 0 ? -1 : (mode == 1 ? 0 : 4096);
      auto& vm = stack.AddVm(1, bench::TransportKind::kShmRing, opts);
      if (mode == 2) {
        // Guest keeps believing its digests are resident; the server holds
        // nothing. Every cached send misses and retries inline.
        vm.session->context().xfer_cache().Reconfigure(0);
      }
      auto api = vm.VclApi();
      ok[mode] = workload.run(api, options).ok();
    }
    ::unsetenv("AVA_XFER_CACHE_BYTES");
    all_ok = all_ok && ok[0] && ok[1] && ok[2];
    std::printf("%-12s %10s %10s %12s\n", workload.name.c_str(),
                ok[0] ? "ok" : "FAIL", ok[1] ? "ok" : "FAIL",
                ok[2] ? "ok" : "FAIL");
  }
  bench::PrintRule(48);
  return all_ok;
}

}  // namespace

int main() {
  std::printf("Transfer-cache ablation — content-addressed bulk dedup\n\n");
  HitAndColdAblation();
  PolicedAblation();
  const bool ok = EquivalenceSweep();
  if (!ok) {
    std::fprintf(stderr, "abl_cache: equivalence sweep FAILED\n");
    return 1;
  }
  return 0;
}
