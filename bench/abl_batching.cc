// E8 — §4.2 lazy RPC / API batching: a clSetKernelArg-heavy microworkload
// (many tiny asynchronous calls per launch) swept over batch sizes. The
// paper cites vCUDA's lazy RPC and rCUDA's batching as the optimizations
// async-annotated functions enable.
#include <cstdio>

#include "bench/harness.h"

namespace {

constexpr const char* kSource =
    "__kernel void axpy(__global float* y, float a, int n) {"
    "  int i = get_global_id(0);"
    "  if (i < n) { y[i] = a * y[i] + 1.0f; }"
    "}";

double RunWithBatch(std::size_t batch) {
  vcl::ResetDefaultSilo({});
  bench::Stack stack;
  ava::GuestEndpoint::Options opts;
  opts.batch_max_calls = batch;
  auto& vm = stack.AddVm(1, bench::TransportKind::kInProc, opts);
  auto api = vm.VclApi();

  vcl_platform_id platform = nullptr;
  api.vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
  vcl_mem buf = api.vclCreateBuffer(ctx, 0, 1024 * 4, nullptr, &err);
  vcl_program prog = api.vclCreateProgramWithSource(ctx, kSource, &err);
  api.vclBuildProgram(prog, nullptr);
  vcl_kernel kernel = api.vclCreateKernel(prog, "axpy", &err);
  int n = 1024;
  size_t global = 1024;

  ava::Stopwatch watch;
  for (int i = 0; i < 2000; ++i) {
    float a = static_cast<float>(i % 7);
    // 3 tiny async arg calls + 1 async launch per iteration.
    api.vclSetKernelArgBuffer(kernel, 0, buf);
    api.vclSetKernelArgScalar(kernel, 1, sizeof(float), &a);
    api.vclSetKernelArgScalar(kernel, 2, sizeof(int), &n);
    api.vclEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, nullptr,
                                0, nullptr, nullptr);
  }
  api.vclFinish(queue);
  const double seconds = watch.ElapsedSeconds();

  auto stats = vm.endpoint->stats();
  std::printf(
      "batch %4zu: %8.1f ms   transport messages %6llu (for %llu calls)\n",
      batch == 0 ? 1 : batch, seconds * 1e3,
      static_cast<unsigned long long>(stats.messages_sent),
      static_cast<unsigned long long>(stats.sync_calls + stats.async_calls));

  api.vclReleaseKernel(kernel);
  api.vclReleaseProgram(prog);
  api.vclReleaseMemObject(buf);
  api.vclReleaseCommandQueue(queue);
  api.vclReleaseContext(ctx);
  return seconds;
}

}  // namespace

int main() {
  std::printf(
      "Batching ablation — 2000 iterations of SetKernelArg x3 + launch "
      "(paper §4.2 lazy RPC)\n\n");
  for (std::size_t batch : {0, 4, 16, 64}) {
    RunWithBatch(batch);
  }
  std::printf(
      "\nlarger batches amortize per-message transport cost across the tiny\n"
      "asynchronous calls; correctness is unchanged (sync calls flush).\n");
  return 0;
}
