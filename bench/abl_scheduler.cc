// E5 — §4.3 resource management at the router, three policies:
//
//   1. Weighted fair queuing under backlog: when the API server is the
//      bottleneck, dispatch throughput follows the configured weights.
//   2. Device-time allotment: a VM's kernels may consume at most N virtual
//      ns of device time per wall second ("how much of each specified API
//      resource (e.g., device time) each VM is allotted").
//   3. Call-rate limiting (token bucket at the transport layer).
//   4. Thousand-session scale-out: 1000 guests in three weight classes
//      flood one router through the epoll front end; mid-backlog service
//      shares follow weights (Jain index over weight-normalized vns) and
//      a final sync call per session proves nobody is stuck.
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/router/wfq.h"

namespace {

constexpr const char* kSpinSrc =
    "__kernel void spin(__global float* d, int n, int iters) {"
    "  int i = get_global_id(0);"
    "  if (i >= n) return;"
    "  float acc = d[i];"
    "  for (int k = 0; k < iters; k++) { acc = acc * 1.000001f + 0.5f; }"
    "  d[i] = acc;"
    "}";

// ---------------------------------------------------------------------------
// Part 1: WFQ weights under router backlog (synthetic slow API).
// ---------------------------------------------------------------------------

constexpr std::uint16_t kSlowApiId = 99;

ava::ApiHandler MakeSlowHandler() {
  return [](ava::ServerContext* ctx, std::uint32_t func_id,
            ava::ByteReader* args, bool is_async,
            ava::ByteWriter* reply) -> ava::Status {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    ctx->ChargeCost(300000);
    return ava::OkStatus();
  };
}

void RunWfq(double w1, double w2) {
  vcl::ResetDefaultSilo({});
  bench::Stack stack;
  ava::VmPolicy p1, p2;
  p1.weight = w1;
  p2.weight = w2;
  auto& vm1 = stack.AddVm(1, bench::TransportKind::kInProc, {}, p1);
  auto& vm2 = stack.AddVm(2, bench::TransportKind::kInProc, {}, p2);
  vm1.session->RegisterApi(kSlowApiId, MakeSlowHandler());
  vm2.session->RegisterApi(kSlowApiId, MakeSlowHandler());

  // Both guests flood fire-and-forget calls: the 300us handler makes the
  // router the bottleneck, so its WFQ decides who runs.
  auto flood = [](ava::GuestEndpoint* ep, double seconds) {
    ava::Stopwatch watch;
    while (watch.ElapsedSeconds() < seconds) {
      (void)ep->CallAsync(kSlowApiId, 0, {});
      if (ep->stats().async_calls % 64 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    }
  };
  std::thread t1([&] { flood(vm1.endpoint.get(), 1.5); });
  std::thread t2([&] { flood(vm2.endpoint.get(), 1.5); });
  t1.join();
  t2.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto s1 = stack.router().StatsFor(1);
  auto s2 = stack.router().StatsFor(2);
  const double c1 = static_cast<double>(s1->cost_vns);
  const double c2 = static_cast<double>(s2->cost_vns);
  std::printf(
      "  weights %.0f:%.0f -> dispatched share %5.1f%% : %5.1f%%  "
      "(ratio %.2f, target %.2f)\n",
      w1, w2, 100.0 * c1 / (c1 + c2), 100.0 * c2 / (c1 + c2), c1 / c2,
      w1 / w2);
}

// ---------------------------------------------------------------------------
// Part 2: device-time allotment with real kernels.
// ---------------------------------------------------------------------------

void DriveKernels(const ava_gen_vcl::VclApi& api, double seconds) {
  vcl_platform_id platform = nullptr;
  api.vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
  vcl_mem buf = api.vclCreateBuffer(ctx, 0, 4096 * 4, nullptr, &err);
  vcl_program prog = api.vclCreateProgramWithSource(ctx, kSpinSrc, &err);
  api.vclBuildProgram(prog, nullptr);
  vcl_kernel kernel = api.vclCreateKernel(prog, "spin", &err);
  int n = 4096, iters = 200;
  api.vclSetKernelArgBuffer(kernel, 0, buf);
  api.vclSetKernelArgScalar(kernel, 1, sizeof(int), &n);
  api.vclSetKernelArgScalar(kernel, 2, sizeof(int), &iters);
  size_t global = 4096;
  ava::Stopwatch watch;
  int launches = 0;
  while (watch.ElapsedSeconds() < seconds) {
    api.vclEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, nullptr,
                                0, nullptr, nullptr);
    if (++launches % 8 == 0) {
      api.vclFinish(queue);
    }
  }
  api.vclFinish(queue);
  api.vclReleaseKernel(kernel);
  api.vclReleaseProgram(prog);
  api.vclReleaseMemObject(buf);
  api.vclReleaseCommandQueue(queue);
  api.vclReleaseContext(ctx);
}

void RunWeightedKernels(double w1, double w2) {
  vcl::ResetDefaultSilo({});
  bench::Stack stack;
  ava::VmPolicy p1, p2;
  p1.weight = w1;
  p2.weight = w2;
  auto& vm1 = stack.AddVm(1, bench::TransportKind::kInProc, {}, p1);
  auto& vm2 = stack.AddVm(2, bench::TransportKind::kInProc, {}, p2);
  auto api1 = vm1.VclApi();
  auto api2 = vm2.VclApi();
  std::thread t1([&] { DriveKernels(api1, 2.0); });
  std::thread t2([&] { DriveKernels(api2, 2.0); });
  t1.join();
  t2.join();
  auto s1 = stack.router().StatsFor(1);
  auto s2 = stack.router().StatsFor(2);
  const double c1 = static_cast<double>(s1->cost_vns);
  const double c2 = static_cast<double>(s2->cost_vns);
  std::printf(
      "  weights %.0f:%.0f -> device-time share %5.1f%% : %5.1f%% "
      "(ratio %.2f, target %.2f)\n",
      w1, w2, 100.0 * c1 / (c1 + c2), 100.0 * c2 / (c1 + c2), c1 / c2,
      w1 / w2);
}

// Returns the vns/s a single unconstrained VM achieves (calibration).
double Calibrate() {
  vcl::ResetDefaultSilo({});
  bench::Stack stack;
  auto& vm = stack.AddVm(1, bench::TransportKind::kInProc);
  auto api = vm.VclApi();
  ava::Stopwatch watch;
  DriveKernels(api, 1.0);
  auto stats = stack.router().StatsFor(1);
  return static_cast<double>(stats->cost_vns) / watch.ElapsedSeconds();
}

void RunAllotment(double capacity_vns, double cap_fraction) {
  vcl::ResetDefaultSilo({});
  bench::Stack stack;
  ava::VmPolicy capped;
  capped.device_vns_per_sec = capacity_vns * cap_fraction;
  auto& vm1 = stack.AddVm(1, bench::TransportKind::kInProc);  // unconstrained
  auto& vm2 = stack.AddVm(2, bench::TransportKind::kInProc, {}, capped);
  auto api1 = vm1.VclApi();
  auto api2 = vm2.VclApi();
  std::thread t1([&] { DriveKernels(api1, 2.0); });
  std::thread t2([&] { DriveKernels(api2, 2.0); });
  t1.join();
  t2.join();
  auto s1 = stack.router().StatsFor(1);
  auto s2 = stack.router().StatsFor(2);
  const double c1 = static_cast<double>(s1->cost_vns);
  const double c2 = static_cast<double>(s2->cost_vns);
  std::printf(
      "  vm2 allotted %4.0f%% of capacity -> shares %5.1f%% : %5.1f%% "
      "(vm2 measured %.0f%% of capacity)\n",
      100.0 * cap_fraction, 100.0 * c1 / (c1 + c2), 100.0 * c2 / (c1 + c2),
      100.0 * (c2 / 2.0) / capacity_vns);
}

// ---------------------------------------------------------------------------
// Part 5: thousand-session scale-out soak over the epoll front end.
// ---------------------------------------------------------------------------

constexpr std::uint16_t kSoakApiId = 98;

// ~50us of simulated device time per call, charged as vns so the WFQ core
// (not the arrival order) decides who runs while the backlog lasts.
ava::ApiHandler MakeSoakHandler() {
  return [](ava::ServerContext* ctx, std::uint32_t func_id,
            ava::ByteReader* args, bool is_async,
            ava::ByteWriter* reply) -> ava::Status {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    ctx->ChargeCost(50000);
    return ava::OkStatus();
  };
}

void RunThousandSessionSoak() {
  vcl::ResetDefaultSilo({});
  constexpr int kSessions = 1000;
  constexpr int kRounds = 12;  // each VM sends kRounds x weight async calls
  bench::Stack stack;
  std::vector<bench::GuestVm*> vms;
  std::vector<double> weights(kSessions);
  vms.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    weights[i] = static_cast<double>(1 << (i % 3));  // 1, 2, 4
    ava::VmPolicy policy;
    policy.weight = weights[i];
    policy.queue_depth = 128;  // bounded ingress, but sized to take the flood
    auto& vm = stack.AddVm(static_cast<ava::VmId>(i) + 1,
                           bench::TransportKind::kSocketPair, {}, policy);
    vm.session->RegisterApi(kSoakApiId, MakeSoakHandler());
    vms.push_back(&vm);
  }
  std::printf("  attached %d sessions over socketpair (epoll front end)\n",
              kSessions);

  // Flood: work proportional to weight, so every class stays backlogged
  // through the measurement window instead of the heavy classes running
  // dry early. Sends are cheap relative to the 50us handler, so the
  // router's ingress queues go deep immediately.
  ava::Stopwatch flood_watch;
  int sent = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kSessions; ++i) {
      for (int k = 0; k < static_cast<int>(weights[i]); ++k) {
        (void)vms[i]->endpoint->CallAsync(kSoakApiId, 0, {});
        ++sent;
      }
    }
  }
  const double flood_s = flood_watch.ElapsedSeconds();

  // Snapshot mid-backlog: total queued work is ~kRounds * sum(w) * 50us
  // (= ~1.4 s); sample while every class still has calls waiting.
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  std::vector<double> mid(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    mid[i] = static_cast<double>(
        stack.router().StatsFor(static_cast<ava::VmId>(i) + 1)->cost_vns);
  }

  // Liveness: one sync call per session must round-trip even while the
  // router digests the tail of the flood. Any stuck session fails here.
  int stuck = 0;
  for (int i = 0; i < kSessions; ++i) {
    if (!vms[i]->endpoint->CallSync(kSoakApiId, 0, {}).ok()) {
      ++stuck;
    }
  }

  // Weight-normalized fairness over the mid-backlog snapshot.
  std::vector<double> normalized(kSessions);
  double class_vns[3] = {}, class_n[3] = {};
  std::uint64_t rejected = 0;
  for (int i = 0; i < kSessions; ++i) {
    normalized[i] = mid[i] / weights[i];
    class_vns[i % 3] += mid[i];
    class_n[i % 3] += 1.0;
    rejected +=
        stack.router().StatsFor(static_cast<ava::VmId>(i) + 1)->calls_rejected;
  }
  const double total_vns = class_vns[0] + class_vns[1] + class_vns[2];
  std::printf("  flood: %d calls sent in %.2fs; %llu admission rejects\n",
              sent, flood_s, static_cast<unsigned long long>(rejected));
  for (int c = 0; c < 3; ++c) {
    std::printf(
        "  weight %d class (%4.0f VMs): mean share %6.3f%% of device time "
        "per VM\n",
        1 << c, class_n[c], 100.0 * class_vns[c] / class_n[c] / total_vns);
  }
  std::printf("  Jain fairness index (weight-normalized vns): %.4f\n",
              ava::JainIndex(normalized));
  std::printf("  final sync call per session: %d/%d ok (%d stuck)\n",
              kSessions - stuck, kSessions, stuck);
}

}  // namespace

int main() {
  std::printf("Scheduler ablation (paper §4.3)\n");
  std::printf("\n1. Weighted fair queuing under router backlog:\n");
  RunWfq(1.0, 1.0);
  RunWfq(2.0, 1.0);
  RunWfq(4.0, 1.0);

  std::printf("\n2. Weighted device-time sharing, real kernel streams:\n");
  RunWeightedKernels(1.0, 1.0);
  RunWeightedKernels(2.0, 1.0);
  RunWeightedKernels(4.0, 1.0);

  std::printf("\n3. Device-time allotment (contending kernel streams):\n");
  const double capacity = Calibrate();
  std::printf("  calibrated single-VM device throughput: %.1f Mvns/s\n",
              capacity / 1e6);
  RunAllotment(capacity, 0.25);
  RunAllotment(capacity, 0.10);

  std::printf("\n4. Call-rate limiting:\n");
  for (double cap : {0.0, 500.0}) {
    vcl::ResetDefaultSilo({});
    bench::Stack stack;
    ava::VmPolicy policy;
    policy.calls_per_sec = cap;
    auto& vm = stack.AddVm(1, bench::TransportKind::kInProc, {}, policy);
    auto api = vm.VclApi();
    vcl_platform_id platform = nullptr;
    api.vclGetPlatformIDs(1, &platform, nullptr);
    ava::Stopwatch watch;
    const int kCalls = 1200;
    for (int i = 0; i < kCalls; ++i) {
      vcl_uint n = 0;
      api.vclGetPlatformIDs(0, nullptr, &n);
    }
    auto stats = stack.router().StatsFor(1);
    std::printf(
        "  cap %6.0f calls/s -> measured %8.0f calls/s (throttle wait %.0f "
        "ms)\n",
        cap, kCalls / watch.ElapsedSeconds(),
        static_cast<double>(stats->rate_limit_wait_ns) / 1e6);
  }

  std::printf("\n5. Thousand-session scale-out soak (epoll front end):\n");
  RunThousandSessionSoak();
  return 0;
}
