// Shared plumbing for the benchmark binaries: stack assembly (guest +
// router + server over a chosen transport), repetition/median timing, and
// paper-style table printing.
#ifndef AVA_BENCH_HARNESS_H_
#define AVA_BENCH_HARNESS_H_

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mvnc_gen.h"
#include "src/common/vclock.h"
#include "src/transport/sqcq_ring.h"
#include "src/obs/metrics.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"
#include "src/vcl/silo.h"
#include "src/mvnc/silo.h"
#include "vcl_gen.h"

namespace bench {

enum class TransportKind { kInProc, kShmRing, kSocketPair, kSqcq };

inline const char* TransportName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProc:
      return "inproc";
    case TransportKind::kShmRing:
      return "shm-ring";
    case TransportKind::kSocketPair:
      return "socketpair";
    case TransportKind::kSqcq:
      return "sqcq";
  }
  return "?";
}

inline ava::ChannelPair MakeChannel(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProc:
      return ava::MakeInProcChannel();
    case TransportKind::kShmRing: {
      auto c = ava::MakeShmRingChannel(8u << 20);
      if (!c.ok()) {
        std::fprintf(stderr, "shm channel failed: %s\n",
                     c.status().ToString().c_str());
        std::abort();
      }
      return std::move(*c);
    }
    case TransportKind::kSocketPair: {
      auto c = ava::MakeSocketPairChannel();
      if (!c.ok()) {
        std::abort();
      }
      return std::move(*c);
    }
    case TransportKind::kSqcq: {
      auto c = ava::MakeSqcqChannel();
      if (!c.ok()) {
        std::fprintf(stderr, "sqcq channel failed: %s\n",
                     c.status().ToString().c_str());
        std::abort();
      }
      return std::move(*c);
    }
  }
  return ava::MakeInProcChannel();
}

// One guest VM + its session, attached to a router the stack owns.
struct GuestVm {
  std::shared_ptr<ava::ApiServerSession> session;
  std::shared_ptr<ava::GuestEndpoint> endpoint;

  ava_gen_vcl::VclApi VclApi() const {
    return ava_gen_vcl::MakeVclGuestApi(endpoint);
  }
  ava_gen_mvnc::MvncApi MvncApi() const {
    return ava_gen_mvnc::MakeMvncGuestApi(endpoint);
  }
};

class Stack {
 public:
  Stack() {
    router_ = std::make_unique<ava::Router>();
    router_->Start();
  }
  ~Stack() {
    vms_.clear();
    router_->Stop();
  }

  GuestVm& AddVm(ava::VmId vm_id, TransportKind transport = TransportKind::kShmRing,
                 ava::GuestEndpoint::Options opts = {},
                 ava::VmPolicy policy = {},
                 std::shared_ptr<ava::SwapManager> swap = nullptr) {
    auto pair = MakeChannel(transport);
    auto vm = std::make_unique<GuestVm>();
    vm->session = std::make_shared<ava::ApiServerSession>(vm_id, swap);
    vm->session->RegisterApi(ava_gen_vcl::kApiId,
                             ava_gen_vcl::MakeVclApiHandler());
    vm->session->RegisterApi(ava_gen_mvnc::kApiId,
                             ava_gen_mvnc::MakeMvncApiHandler());
    if (!router_->AttachVm(vm_id, std::move(pair.host), vm->session, policy)
             .ok()) {
      std::abort();
    }
    opts.vm_id = vm_id;
    vm->endpoint =
        std::make_shared<ava::GuestEndpoint>(std::move(pair.guest), opts);
    vms_.push_back(std::move(vm));
    return *vms_.back();
  }

  ava::Router& router() { return *router_; }

 private:
  std::unique_ptr<ava::Router> router_;
  std::vector<std::unique_ptr<GuestVm>> vms_;
};

// Runs `fn` `reps` times and returns the median wall seconds.
inline double MedianSeconds(int reps, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    ava::Stopwatch watch;
    fn();
    times.push_back(watch.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

// Paper-style latency-distribution line from an obs histogram snapshot
// (e.g. GuestEndpoint::sync_latency()). Values are nanoseconds.
inline void PrintLatencyPercentiles(const char* label,
                                    const ava::obs::HistogramSnapshot& snap) {
  if (snap.empty()) {
    std::printf("%-14s (no sampled calls)\n", label);
    return;
  }
  std::printf(
      "%-14s n=%-8llu p50=%8.0fns  p95=%8.0fns  p99=%8.0fns  mean=%8.0fns\n",
      label, static_cast<unsigned long long>(snap.count), snap.Percentile(50),
      snap.Percentile(95), snap.Percentile(99), snap.Mean());
}

}  // namespace bench

#endif  // AVA_BENCH_HARNESS_H_
