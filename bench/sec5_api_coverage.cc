// E3 — §5's "39 commonly used OpenCL functions" (plus the NCSDK MVNC API):
// exercises every generated entry point of both APIs through the full
// remoted stack and reports coverage. A function counts as covered when its
// stub round-trips with the expected result.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/mvnc/graph.h"

namespace {

struct Coverage {
  std::vector<std::string> covered;
  void Note(const char* name, bool ok) {
    if (ok) {
      covered.push_back(name);
    } else {
      std::fprintf(stderr, "FAILED: %s\n", name);
    }
  }
};

#define COVER(cov, expr_name, expr) (cov).Note(expr_name, (expr))

void CoverVcl(const ava_gen_vcl::VclApi& api, Coverage* cov) {
  vcl_platform_id platform = nullptr;
  vcl_uint n = 0;
  COVER(*cov, "vclGetPlatformIDs",
        api.vclGetPlatformIDs(1, &platform, &n) == VCL_SUCCESS && n == 1);
  char text[128];
  size_t text_size = 0;
  COVER(*cov, "vclGetPlatformInfo",
        api.vclGetPlatformInfo(platform, VCL_PLATFORM_NAME, sizeof(text),
                               text, &text_size) == VCL_SUCCESS);
  vcl_device_id device = nullptr;
  COVER(*cov, "vclGetDeviceIDs",
        api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device,
                            nullptr) == VCL_SUCCESS);
  vcl_ulong mem = 0;
  COVER(*cov, "vclGetDeviceInfo",
        api.vclGetDeviceInfo(device, VCL_DEVICE_GLOBAL_MEM_SIZE, sizeof(mem),
                             &mem, nullptr) == VCL_SUCCESS);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  COVER(*cov, "vclCreateContext", err == VCL_SUCCESS && ctx != nullptr);
  COVER(*cov, "vclRetainContext", api.vclRetainContext(ctx) == VCL_SUCCESS);
  COVER(*cov, "vclReleaseContext", api.vclReleaseContext(ctx) == VCL_SUCCESS);
  vcl_command_queue queue =
      api.vclCreateCommandQueue(ctx, device, VCL_QUEUE_PROFILING_ENABLE, &err);
  COVER(*cov, "vclCreateCommandQueue", err == VCL_SUCCESS);
  COVER(*cov, "vclRetainCommandQueue",
        api.vclRetainCommandQueue(queue) == VCL_SUCCESS);
  COVER(*cov, "vclReleaseCommandQueue",
        api.vclReleaseCommandQueue(queue) == VCL_SUCCESS);
  float init[256];
  for (int i = 0; i < 256; ++i) {
    init[i] = static_cast<float>(i);
  }
  vcl_mem buf = api.vclCreateBuffer(ctx, VCL_MEM_COPY_HOST_PTR, sizeof(init),
                                    init, &err);
  COVER(*cov, "vclCreateBuffer", err == VCL_SUCCESS);
  COVER(*cov, "vclRetainMemObject", api.vclRetainMemObject(buf) == VCL_SUCCESS);
  COVER(*cov, "vclReleaseMemObject",
        api.vclReleaseMemObject(buf) == VCL_SUCCESS);
  size_t buf_size = 0;
  COVER(*cov, "vclGetMemObjectInfo",
        api.vclGetMemObjectInfo(buf, VCL_MEM_SIZE, sizeof(buf_size), &buf_size,
                                nullptr) == VCL_SUCCESS &&
            buf_size == sizeof(init));
  const char* source =
      "__kernel void twice(__global float* d, __local float* scratch, int n) {"
      "  int i = get_global_id(0);"
      "  scratch[get_local_id(0)] = 0.0f;"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  if (i < n) { d[i] = d[i] * 2.0f; }"
      "}";
  vcl_program program = api.vclCreateProgramWithSource(ctx, source, &err);
  COVER(*cov, "vclCreateProgramWithSource", err == VCL_SUCCESS);
  COVER(*cov, "vclBuildProgram",
        api.vclBuildProgram(program, nullptr) == VCL_SUCCESS);
  COVER(*cov, "vclGetProgramBuildInfo",
        api.vclGetProgramBuildInfo(program, VCL_PROGRAM_BUILD_LOG,
                                   sizeof(text), text,
                                   &text_size) == VCL_SUCCESS);
  COVER(*cov, "vclRetainProgram", api.vclRetainProgram(program) == VCL_SUCCESS);
  COVER(*cov, "vclReleaseProgram",
        api.vclReleaseProgram(program) == VCL_SUCCESS);
  vcl_kernel kernel = api.vclCreateKernel(program, "twice", &err);
  COVER(*cov, "vclCreateKernel", err == VCL_SUCCESS);
  COVER(*cov, "vclRetainKernel", api.vclRetainKernel(kernel) == VCL_SUCCESS);
  COVER(*cov, "vclReleaseKernel", api.vclReleaseKernel(kernel) == VCL_SUCCESS);
  int count = 256;
  COVER(*cov, "vclSetKernelArgBuffer",
        api.vclSetKernelArgBuffer(kernel, 0, buf) == VCL_SUCCESS);
  COVER(*cov, "vclSetKernelArgLocal",
        api.vclSetKernelArgLocal(kernel, 1, 64 * sizeof(float)) ==
            VCL_SUCCESS);
  COVER(*cov, "vclSetKernelArgScalar",
        api.vclSetKernelArgScalar(kernel, 2, sizeof(int), &count) ==
            VCL_SUCCESS);
  size_t global = 256, local = 64;
  vcl_event kernel_event = nullptr;
  COVER(*cov, "vclEnqueueNDRangeKernel",
        api.vclEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, &local,
                                    0, nullptr, &kernel_event) == VCL_SUCCESS);
  COVER(*cov, "vclWaitForEvents",
        api.vclWaitForEvents(1, &kernel_event) == VCL_SUCCESS);
  vcl_int exec_status = -1;
  COVER(*cov, "vclGetEventInfo",
        api.vclGetEventInfo(kernel_event, VCL_EVENT_COMMAND_EXECUTION_STATUS,
                            sizeof(exec_status), &exec_status, nullptr) ==
                VCL_SUCCESS &&
            exec_status == VCL_COMPLETE);
  vcl_ulong t_end = 0;
  COVER(*cov, "vclGetEventProfilingInfo",
        api.vclGetEventProfilingInfo(kernel_event, VCL_PROFILING_COMMAND_END,
                                     sizeof(t_end), &t_end, nullptr) ==
            VCL_SUCCESS);
  COVER(*cov, "vclRetainEvent",
        api.vclRetainEvent(kernel_event) == VCL_SUCCESS);
  COVER(*cov, "vclReleaseEvent",
        api.vclReleaseEvent(kernel_event) == VCL_SUCCESS);
  api.vclReleaseEvent(kernel_event);
  float out[256] = {0};
  COVER(*cov, "vclEnqueueReadBuffer",
        api.vclEnqueueReadBuffer(queue, buf, VCL_TRUE, 0, sizeof(out), out, 0,
                                 nullptr, nullptr) == VCL_SUCCESS &&
            out[3] == 6.0f);
  COVER(*cov, "vclEnqueueWriteBuffer",
        api.vclEnqueueWriteBuffer(queue, buf, VCL_TRUE, 0, sizeof(init), init,
                                  0, nullptr, nullptr) == VCL_SUCCESS);
  vcl_mem buf2 = api.vclCreateBuffer(ctx, 0, sizeof(init), nullptr, &err);
  COVER(*cov, "vclEnqueueCopyBuffer",
        api.vclEnqueueCopyBuffer(queue, buf, buf2, 0, 0, sizeof(init), 0,
                                 nullptr, nullptr) == VCL_SUCCESS);
  std::uint32_t pattern = 0x3f800000;  // 1.0f
  COVER(*cov, "vclEnqueueFillBuffer",
        api.vclEnqueueFillBuffer(queue, buf2, &pattern, 4, 0, sizeof(init), 0,
                                 nullptr, nullptr) == VCL_SUCCESS);
  COVER(*cov, "vclEnqueueBarrier",
        api.vclEnqueueBarrier(queue) == VCL_SUCCESS);
  COVER(*cov, "vclFlush", api.vclFlush(queue) == VCL_SUCCESS);
  COVER(*cov, "vclFinish", api.vclFinish(queue) == VCL_SUCCESS);
  size_t wg = 0;
  COVER(*cov, "vclGetKernelWorkGroupInfo",
        api.vclGetKernelWorkGroupInfo(kernel, device,
                                      VCL_KERNEL_WORK_GROUP_SIZE, sizeof(wg),
                                      &wg, nullptr) == VCL_SUCCESS);
  api.vclReleaseKernel(kernel);
  api.vclReleaseProgram(program);
  api.vclReleaseMemObject(buf);
  api.vclReleaseMemObject(buf2);
  api.vclReleaseCommandQueue(queue);
  api.vclReleaseContext(ctx);
}

void CoverMvnc(const ava_gen_mvnc::MvncApi& api, Coverage* cov) {
  char name[32];
  COVER(*cov, "mvncGetDeviceName",
        api.mvncGetDeviceName(0, name, sizeof(name)) == MVNC_OK);
  mvnc_device dev = nullptr;
  COVER(*cov, "mvncOpenDevice", api.mvncOpenDevice(name, &dev) == MVNC_OK);
  auto file = mvnc::GraphBuilder(1, 8, 8, 3).Dense(4).Softmax().BuildFile();
  mvnc_graph graph = nullptr;
  COVER(*cov, "mvncAllocateGraph",
        api.mvncAllocateGraph(dev, &graph, file.data(),
                              static_cast<std::uint32_t>(file.size())) ==
            MVNC_OK);
  std::vector<float> input(64, 0.25f);
  COVER(*cov, "mvncLoadTensor",
        api.mvncLoadTensor(graph, input.data(), 64 * sizeof(float)) ==
            MVNC_OK);
  float result[4];
  std::uint32_t result_size = 0;
  COVER(*cov, "mvncGetResult",
        api.mvncGetResult(graph, result, sizeof(result), &result_size) ==
                MVNC_OK &&
            result_size == sizeof(result));
  std::int32_t iterations = 0;
  std::uint32_t opt_size = 0;
  COVER(*cov, "mvncGetGraphOption",
        api.mvncGetGraphOption(graph, MVNC_ITERATIONS, &iterations,
                               sizeof(iterations), &opt_size) == MVNC_OK &&
            iterations == 1);
  std::int32_t reset = 0;
  COVER(*cov, "mvncSetGraphOption",
        api.mvncSetGraphOption(graph, MVNC_ITERATIONS, &reset,
                               sizeof(reset)) == MVNC_OK);
  std::int32_t loaded = 0;
  COVER(*cov, "mvncGetDeviceOption",
        api.mvncGetDeviceOption(dev, MVNC_LOADED_GRAPHS, &loaded,
                                sizeof(loaded), &opt_size) == MVNC_OK &&
            loaded == 1);
  COVER(*cov, "mvncDeallocateGraph",
        api.mvncDeallocateGraph(graph) == MVNC_OK);
  COVER(*cov, "mvncCloseDevice", api.mvncCloseDevice(dev) == MVNC_OK);
}

}  // namespace

int main() {
  vcl::ResetDefaultSilo({});
  mvnc::ResetMvncSilo({});
  bench::Stack stack;
  auto& vm = stack.AddVm(1, bench::TransportKind::kInProc);

  Coverage vcl_cov;
  auto vcl_api = vm.VclApi();
  CoverVcl(vcl_api, &vcl_cov);
  vm.endpoint->Flush();

  Coverage mvnc_cov;
  auto mvnc_api = vm.MvncApi();
  CoverMvnc(mvnc_api, &mvnc_cov);

  std::printf("S5 — API coverage through the generated remoting stack\n\n");
  std::printf("VCL (OpenCL-subset) functions exercised:  %zu / %u\n",
              vcl_cov.covered.size(),
              static_cast<unsigned>(ava_gen_vcl::kFuncCount));
  std::printf("MVNC (NCSDK) functions exercised:         %zu / %u\n",
              mvnc_cov.covered.size(),
              static_cast<unsigned>(ava_gen_mvnc::kFuncCount));
  std::printf(
      "\npaper: \"39 commonly used OpenCL functions\" plus the NCSDK MVNC "
      "API\n");
  const bool ok =
      vcl_cov.covered.size() == ava_gen_vcl::kFuncCount &&
      mvnc_cov.covered.size() == ava_gen_mvnc::kFuncCount;
  std::printf("coverage: %s\n", ok ? "COMPLETE" : "INCOMPLETE");
  return ok ? 0 : 1;
}
