// E9 — microbenchmarks (google-benchmark): forwarded-call latency and
// marshaling/transport throughput, the primitives underneath every Figure 5
// number.
#include <benchmark/benchmark.h>

#include "bench/harness.h"

namespace {

// A stack shared by the benchmarks in this binary (constructed lazily so the
// --benchmark_filter flag doesn't pay for it unnecessarily).
struct SharedStack {
  SharedStack() {
    vcl::ResetDefaultSilo({});
    stack = std::make_unique<bench::Stack>();
    vm = &stack->AddVm(1, bench::TransportKind::kInProc);
    api = vm->VclApi();
    api.vclGetPlatformIDs(1, &platform, nullptr);
    api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
    vcl_int err = VCL_SUCCESS;
    ctx = api.vclCreateContext(&device, 1, &err);
    queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
    buffer = api.vclCreateBuffer(ctx, 0, 16u << 20, nullptr, &err);
  }

  std::unique_ptr<bench::Stack> stack;
  bench::GuestVm* vm = nullptr;
  ava_gen_vcl::VclApi api;
  vcl_platform_id platform = nullptr;
  vcl_device_id device = nullptr;
  vcl_context ctx = nullptr;
  vcl_command_queue queue = nullptr;
  vcl_mem buffer = nullptr;
};

SharedStack& Shared() {
  static auto* shared = new SharedStack;
  return *shared;
}

// Null synchronous call: the round-trip floor through guest stub, FIFO,
// router verification, WFQ dispatch, handler, and reply.
void BM_SyncNullCall(benchmark::State& state) {
  auto& s = Shared();
  vcl_uint n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.api.vclGetPlatformIDs(0, nullptr, &n));
  }
}
BENCHMARK(BM_SyncNullCall);

// Async call issue cost at the guest (transport send, no reply wait).
void BM_AsyncCallIssue(benchmark::State& state) {
  auto& s = Shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.api.vclFlush(s.queue));
  }
  s.api.vclFinish(s.queue);
}
BENCHMARK(BM_AsyncCallIssue);

// Blocking write of `range(0)` bytes: marshal + transport + device copy.
void BM_WriteBuffer(benchmark::State& state) {
  auto& s = Shared();
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> data(bytes, 0xAB);
  for (auto _ : state) {
    s.api.vclEnqueueWriteBuffer(s.queue, s.buffer, VCL_TRUE, 0, bytes,
                                data.data(), 0, nullptr, nullptr);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_WriteBuffer)->Range(1 << 10, 16 << 20);

// Blocking read of `range(0)` bytes.
void BM_ReadBuffer(benchmark::State& state) {
  auto& s = Shared();
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> data(bytes);
  for (auto _ : state) {
    s.api.vclEnqueueReadBuffer(s.queue, s.buffer, VCL_TRUE, 0, bytes,
                               data.data(), 0, nullptr, nullptr);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ReadBuffer)->Range(1 << 10, 16 << 20);

// Raw transport round trip (no API layer) for each transport kind.
void TransportPingPong(benchmark::State& state, bench::TransportKind kind) {
  auto channel = bench::MakeChannel(kind);
  std::thread echo([&] {
    while (true) {
      auto m = channel.host->Recv();
      if (!m.ok()) {
        return;
      }
      if (!channel.host->Send(*m).ok()) {
        return;
      }
    }
  });
  ava::Bytes message(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    if (!channel.guest->Send(message).ok()) {
      break;
    }
    auto reply = channel.guest->Recv();
    benchmark::DoNotOptimize(reply);
  }
  channel.guest->Close();
  echo.join();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
}

void BM_TransportInProc(benchmark::State& state) {
  TransportPingPong(state, bench::TransportKind::kInProc);
}
void BM_TransportShm(benchmark::State& state) {
  TransportPingPong(state, bench::TransportKind::kShmRing);
}
void BM_TransportSocket(benchmark::State& state) {
  TransportPingPong(state, bench::TransportKind::kSocketPair);
}
BENCHMARK(BM_TransportInProc)->Arg(64)->Arg(64 << 10);
BENCHMARK(BM_TransportShm)->Arg(64)->Arg(64 << 10);
BENCHMARK(BM_TransportSocket)->Arg(64)->Arg(64 << 10);

}  // namespace

// BENCHMARK_MAIN plus a latency-distribution epilogue: after the benchmarks
// run, report percentiles of the forwarded sync calls the shared stack saw.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto latency = Shared().vm->endpoint->sync_latency();
  if (!latency.empty()) {
    std::printf("\nforwarded sync-call round-trip latency\n");
    bench::PrintLatencyPercentiles("sync_call", latency);
  } else {
    std::printf(
        "\n(no latency samples — run with AVA_METRICS_DUMP=stderr or "
        "AVA_TRACE=1 to sample per-call distributions)\n");
  }
  return 0;
}
