// Ablation: intra-VM parallel dispatch via per-object execution lanes.
//
// Rows:
//   - 1 thread, parallelism 1: the classic serial executor (the baseline
//     every prior PR measured)
//   - 1 thread, parallelism 4: no-regression check — lanes must cost
//     nothing when a single caller is latency-bound
//   - 4 threads, parallelism 1: the concurrent-caller reply demux alone
//     (calls still execute one at a time)
//   - 4 threads, parallelism 4, distinct objects: the headline — target is
//     >= 2x the single-thread aggregate null-call throughput
//   - same split for a 1 MiB bulk payload over the shm ring
//
// Throughput here is aggregate completed calls per second across all caller
// threads; latency rows print the endpoint's sync-latency percentiles.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/proto/wire.h"

namespace {

constexpr std::uint16_t kApi = 77;
constexpr std::uint32_t kFnNull = 0;
constexpr std::uint32_t kFnBulk = 1;

ava::ApiHandler MakeBenchHandler() {
  return [](ava::ServerContext* ctx, std::uint32_t func_id,
            ava::ByteReader* args, bool, ava::ByteWriter* reply)
             -> ava::Status {
    if (func_id == kFnNull) {
      reply->PutU32(args->GetU32());
    } else {
      auto view = args->GetBlobView();
      reply->PutU64(static_cast<std::uint64_t>(view.size()));
    }
    ctx->ChargeCost(100);
    return ava::OkStatus();
  };
}

ava::Bytes MakeNullCall(std::uint64_t lane) {
  ava::ByteWriter w = ava::BeginCall(kApi, kFnNull);
  w.PutU32(7);
  ava::Bytes message = std::move(w).TakeBytes();
  ava::PatchCallLaneKey(&message, lane);
  return message;
}

ava::Bytes MakeBulkCall(std::uint64_t lane,
                        const std::vector<std::uint8_t>& payload) {
  ava::ByteWriter w = ava::BeginCall(kApi, kFnBulk);
  w.PutBlob(payload.data(), payload.size());
  ava::Bytes message = std::move(w).TakeBytes();
  ava::PatchCallLaneKey(&message, lane);
  return message;
}

struct RunResult {
  double calls_per_sec = 0;
};

// Aggregate throughput: `threads` callers each issue `iters` sync calls on
// their own lane (distinct objects); wall time covers all of them.
RunResult Run(int parallelism, int threads, int iters, std::size_t bulk_bytes,
              bench::TransportKind transport) {
  bench::Stack stack;
  ava::VmPolicy policy;
  policy.max_parallelism = parallelism;
  auto& vm = stack.AddVm(1, transport, {}, policy);
  vm.session->RegisterApi(kApi, MakeBenchHandler());
  const std::vector<std::uint8_t> payload(bulk_bytes, 0x5C);

  // Warm every lane (first call on a lane allocates it).
  for (int t = 0; t < threads; ++t) {
    auto warm = vm.endpoint->CallSyncPrepared(MakeNullCall(t + 1));
    if (!warm.ok()) {
      std::fprintf(stderr, "warm call failed: %s\n",
                   warm.status().ToString().c_str());
      std::abort();
    }
  }

  std::atomic<int> failures{0};
  const double median_s = bench::MedianSeconds(5, [&] {
    std::vector<std::thread> callers;
    callers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      callers.emplace_back([&, t] {
        const std::uint64_t lane = static_cast<std::uint64_t>(t + 1);
        for (int i = 0; i < iters; ++i) {
          auto reply = vm.endpoint->CallSyncPrepared(
              bulk_bytes > 0 ? MakeBulkCall(lane, payload)
                             : MakeNullCall(lane));
          if (!reply.ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& caller : callers) {
      caller.join();
    }
  });
  if (failures.load() > 0) {
    std::fprintf(stderr, "%d call(s) failed\n", failures.load());
    std::abort();
  }
  RunResult result;
  result.calls_per_sec =
      static_cast<double>(threads) * iters / median_s;
  return result;
}

void PrintRow(const char* label, const RunResult& row, double baseline) {
  std::printf("%-34s %12.0f calls/s %8.2fx\n", label, row.calls_per_sec,
              row.calls_per_sec / baseline);
}

}  // namespace

int main() {
  std::printf("abl_lanes: per-object execution lanes (inproc, 4 lanes)\n");
  bench::PrintRule(64);

  constexpr int kNullIters = 4000;
  const auto serial =
      Run(/*parallelism=*/1, /*threads=*/1, kNullIters, 0,
          bench::TransportKind::kInProc);
  PrintRow("null  1 thread  parallelism 1", serial, serial.calls_per_sec);
  PrintRow("null  1 thread  parallelism 4",
           Run(4, 1, kNullIters, 0, bench::TransportKind::kInProc),
           serial.calls_per_sec);
  PrintRow("null  4 threads parallelism 1",
           Run(1, 4, kNullIters / 4, 0, bench::TransportKind::kInProc),
           serial.calls_per_sec);
  const auto lanes =
      Run(4, 4, kNullIters / 4, 0, bench::TransportKind::kInProc);
  PrintRow("null  4 threads parallelism 4", lanes, serial.calls_per_sec);

  bench::PrintRule(64);
  constexpr std::size_t kBulkBytes = 1u << 20;
  constexpr int kBulkIters = 64;
  const auto bulk_serial = Run(1, 1, kBulkIters, kBulkBytes,
                               bench::TransportKind::kShmRing);
  PrintRow("1MiB  1 thread  parallelism 1", bulk_serial,
           bulk_serial.calls_per_sec);
  PrintRow("1MiB  4 threads parallelism 4",
           Run(4, 4, kBulkIters / 4, kBulkBytes,
               bench::TransportKind::kShmRing),
           bulk_serial.calls_per_sec);

  bench::PrintRule(64);
  const double speedup = lanes.calls_per_sec / serial.calls_per_sec;
  std::printf("4-thread/4-lane null-call speedup: %.2fx (target >= 2.0x on "
              "a multi-core host; pipelining only on fewer cores)\n",
              speedup);
  return 0;
}
