// E4 — transport ablation (§4.1: "different communication transports and
// system architectures"): the same workloads over the in-process FIFO, the
// cross-process shared-memory ring, and a Unix socket (the disaggregated
// configuration's transport).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/workloads/vcl_workloads.h"

namespace {

// One guest VM with a context/queue/device buffer ready for bulk transfers.
struct BulkRig {
  bench::GuestVm* vm = nullptr;
  ava_gen_vcl::VclApi api;
  vcl_command_queue queue = nullptr;
  vcl_mem mem = nullptr;

  explicit BulkRig(bench::Stack& stack, ava::VmId vm_id,
                   std::int64_t arena_threshold, std::size_t bytes) {
    ava::GuestEndpoint::Options opts;
    opts.arena_threshold_bytes = arena_threshold;
    vm = &stack.AddVm(vm_id, bench::TransportKind::kShmRing, opts);
    api = vm->VclApi();
    vcl_platform_id platform = nullptr;
    api.vclGetPlatformIDs(1, &platform, nullptr);
    vcl_device_id device = nullptr;
    api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
    vcl_int err = VCL_SUCCESS;
    vcl_context ctx = api.vclCreateContext(&device, 1, &err);
    queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
    mem = api.vclCreateBuffer(ctx, 0, bytes, nullptr, &err);
  }

  double RoundTripNs(std::uint8_t* host, std::size_t bytes) {
    ava::Stopwatch watch;
    api.vclEnqueueWriteBuffer(queue, mem, VCL_TRUE, 0, bytes, host, 0,
                              nullptr, nullptr);
    api.vclEnqueueReadBuffer(queue, mem, VCL_TRUE, 0, bytes, host, 0,
                             nullptr, nullptr);
    return watch.ElapsedSeconds() * 1e9;
  }
};

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// Interleaved A/B of the bulk data path on the shm transport: the same
// blocking write+read round trip with the arena disabled (inline
// marshaling, the pre-arena wire format) and enabled. Interleaving keeps
// both sides exposed to the same machine state (the honest way to compare;
// see the verify notes on run-to-run noise).
void BulkDataPathAblation() {
  std::printf(
      "\nBulk data path on shm-ring — inline marshaling vs. shared-memory "
      "arena\n\n");
  std::printf("%-12s %14s %14s %10s\n", "buffer", "inline", "arena",
              "speedup");
  bench::PrintRule(56);
  const std::size_t kSizes[] = {256u << 10, 1u << 20, 4u << 20, 16u << 20};
  constexpr int kReps = 15;
  for (std::size_t bytes : kSizes) {
    vcl::ResetDefaultSilo({});
    bench::Stack stack;
    BulkRig inline_rig(stack, 1, /*arena_threshold=*/0, bytes);
    BulkRig arena_rig(stack, 2, /*arena_threshold=*/64 << 10, bytes);
    std::vector<std::uint8_t> host(bytes, 0x5A);
    std::vector<double> inline_ns, arena_ns;
    inline_rig.RoundTripNs(host.data(), bytes);  // warm both paths
    arena_rig.RoundTripNs(host.data(), bytes);
    for (int rep = 0; rep < kReps; ++rep) {
      inline_ns.push_back(inline_rig.RoundTripNs(host.data(), bytes));
      arena_ns.push_back(arena_rig.RoundTripNs(host.data(), bytes));
    }
    const double inline_med = Median(inline_ns);
    const double arena_med = Median(arena_ns);
    std::printf("%8zu KiB %12.0fns %12.0fns %9.2fx\n", bytes >> 10,
                inline_med, arena_med, inline_med / arena_med);
  }
  bench::PrintRule(56);
  std::printf(
      "inline = bytes serialized into the command block (two copies +\n"
      "ring trip); arena = out-of-band shm slots, descriptor-only frames.\n");
}

}  // namespace

int main() {
  constexpr int kReps = 3;
  const char* names[] = {"pathfinder", "gaussian", "nn"};
  const std::size_t indices[] = {6, 2, 4};
  workloads::WorkloadOptions options;

  std::printf("Transport ablation — same stack, pluggable transport\n\n");
  std::printf("%-12s %10s %10s %10s %10s %10s\n", "benchmark", "native",
              "inproc", "shm-ring", "socket", "sqcq");
  bench::PrintRule(70);
  for (int row = 0; row < 3; ++row) {
    const auto& workload = workloads::AllVclWorkloads()[indices[row]];
    vcl::ResetDefaultSilo({});
    auto native_api = ava_gen_vcl::MakeVclNativeApi();
    double native_ms = 1e3 * bench::MedianSeconds(kReps, [&] {
      if (!workload.run(native_api, options).ok()) {
        std::abort();
      }
    });
    double ms[4] = {0, 0, 0, 0};
    const bench::TransportKind kinds[] = {bench::TransportKind::kInProc,
                                          bench::TransportKind::kShmRing,
                                          bench::TransportKind::kSocketPair,
                                          bench::TransportKind::kSqcq};
    for (int t = 0; t < 4; ++t) {
      vcl::ResetDefaultSilo({});
      bench::Stack stack;
      auto& vm = stack.AddVm(1, kinds[t]);
      auto api = vm.VclApi();
      ms[t] = 1e3 * bench::MedianSeconds(kReps, [&] {
        if (!workload.run(api, options).ok()) {
          std::abort();
        }
      });
    }
    std::printf("%-12s %8.1fms %8.1fms %8.1fms %8.1fms %8.1fms\n",
                names[row], native_ms, ms[0], ms[1], ms[2], ms[3]);
  }
  bench::PrintRule(70);
  std::printf(
      "\ninproc = condvar-signaled FIFO (virtio-style kick);\n"
      "shm-ring = polled shared-memory rings usable across fork();\n"
      "socket = AF_UNIX stream (remote/disaggregated accelerators);\n"
      "sqcq = submission/completion record rings, wait-free submit.\n");

  BulkDataPathAblation();
  return 0;
}
