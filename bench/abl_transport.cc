// E4 — transport ablation (§4.1: "different communication transports and
// system architectures"): the same workloads over the in-process FIFO, the
// cross-process shared-memory ring, and a Unix socket (the disaggregated
// configuration's transport).
#include <cstdio>

#include "bench/harness.h"
#include "src/workloads/vcl_workloads.h"

int main() {
  constexpr int kReps = 3;
  const char* names[] = {"pathfinder", "gaussian", "nn"};
  const std::size_t indices[] = {6, 2, 4};
  workloads::WorkloadOptions options;

  std::printf("Transport ablation — same stack, pluggable transport\n\n");
  std::printf("%-12s %10s %10s %10s %10s\n", "benchmark", "native",
              "inproc", "shm-ring", "socket");
  bench::PrintRule(58);
  for (int row = 0; row < 3; ++row) {
    const auto& workload = workloads::AllVclWorkloads()[indices[row]];
    vcl::ResetDefaultSilo({});
    auto native_api = ava_gen_vcl::MakeVclNativeApi();
    double native_ms = 1e3 * bench::MedianSeconds(kReps, [&] {
      if (!workload.run(native_api, options).ok()) {
        std::abort();
      }
    });
    double ms[3] = {0, 0, 0};
    const bench::TransportKind kinds[] = {bench::TransportKind::kInProc,
                                          bench::TransportKind::kShmRing,
                                          bench::TransportKind::kSocketPair};
    for (int t = 0; t < 3; ++t) {
      vcl::ResetDefaultSilo({});
      bench::Stack stack;
      auto& vm = stack.AddVm(1, kinds[t]);
      auto api = vm.VclApi();
      ms[t] = 1e3 * bench::MedianSeconds(kReps, [&] {
        if (!workload.run(api, options).ok()) {
          std::abort();
        }
      });
    }
    std::printf("%-12s %8.1fms %8.1fms %8.1fms %8.1fms\n",
                names[row], native_ms, ms[0], ms[1], ms[2]);
  }
  bench::PrintRule(58);
  std::printf(
      "\ninproc = condvar-signaled FIFO (virtio-style kick);\n"
      "shm-ring = polled shared-memory rings usable across fork();\n"
      "socket = AF_UNIX stream (remote/disaggregated accelerators).\n");
  return 0;
}
