// E7 — §4.3 buffer-granularity swapping: two VMs oversubscribe the device;
// with the swap manager their combined working set keeps fitting (at the
// cost of swap traffic), while without it the second VM simply gets OOM.
//
// Part two sweeps oversubscription from 1x to 16x of device memory through
// the full tier hierarchy (host arena -> LZSS-compressed pages -> disk
// spill) with the background demotion thread running, and reports sustained
// streaming bandwidth plus where the pages ended up.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/harness.h"
#include "src/gen/vcl_hooks.h"

namespace {

struct VmState {
  bench::GuestVm* vm;
  ava_gen_vcl::VclApi api;
  vcl_context ctx = nullptr;
  vcl_command_queue queue = nullptr;
  std::vector<vcl_mem> buffers;
  int failures = 0;
};

void Setup(VmState* s) {
  vcl_platform_id platform = nullptr;
  s->api.vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  s->api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  vcl_int err = VCL_SUCCESS;
  s->ctx = s->api.vclCreateContext(&device, 1, &err);
  s->queue = s->api.vclCreateCommandQueue(s->ctx, device, 0, &err);
}

// Allocates `count` chunks of `bytes` and touches them round-robin.
void Churn(VmState* s, int count, std::size_t bytes, int rounds) {
  std::vector<std::uint32_t> data(bytes / 4, 0x5A5A5A5A);
  for (int i = 0; i < count; ++i) {
    vcl_int err = VCL_SUCCESS;
    vcl_mem m = s->api.vclCreateBuffer(s->ctx, VCL_MEM_COPY_HOST_PTR, bytes,
                                       data.data(), &err);
    if (err != VCL_SUCCESS) {
      ++s->failures;
      continue;
    }
    s->buffers.push_back(m);
  }
  std::vector<std::uint32_t> out(bytes / 4);
  for (int round = 0; round < rounds; ++round) {
    for (vcl_mem m : s->buffers) {
      if (s->api.vclEnqueueReadBuffer(s->queue, m, VCL_TRUE, 0, bytes,
                                      out.data(), 0, nullptr,
                                      nullptr) != VCL_SUCCESS) {
        ++s->failures;
      } else if (out[0] != 0x5A5A5A5A) {
        ++s->failures;  // data corruption would count as failure
      }
    }
  }
}

void RunConfig(bool with_swap) {
  vcl::SiloConfig config;
  config.device_global_mem_bytes = 16u << 20;  // 16 MiB device
  vcl::ResetDefaultSilo(config);
  std::shared_ptr<ava::SwapManager> swap;
  if (with_swap) {
    swap = std::make_shared<ava::SwapManager>(
        ava_gen_vcl::MakeVclBufferHooks());
  }
  bench::Stack stack;
  VmState vm1{&stack.AddVm(1, bench::TransportKind::kInProc, {}, {}, swap)};
  VmState vm2{&stack.AddVm(2, bench::TransportKind::kInProc, {}, {}, swap)};
  vm1.api = vm1.vm->VclApi();
  vm2.api = vm2.vm->VclApi();
  Setup(&vm1);
  Setup(&vm2);

  // Combined demand: 2 VMs x 6 x 2 MiB = 24 MiB on a 16 MiB device.
  ava::Stopwatch watch;
  Churn(&vm1, 6, 2u << 20, 2);
  Churn(&vm2, 6, 2u << 20, 2);
  const double ms = watch.ElapsedSeconds() * 1e3;

  std::printf("%-12s: %7.1f ms   vm1 failures %d, vm2 failures %d",
              with_swap ? "with-swap" : "no-swap", ms, vm1.failures,
              vm2.failures);
  if (swap != nullptr) {
    auto stats = swap->stats();
    std::printf("   swap-outs %llu, swap-ins %llu, %.1f MiB moved",
                static_cast<unsigned long long>(stats.swap_outs),
                static_cast<unsigned long long>(stats.swap_ins),
                static_cast<double>(stats.bytes_swapped_out +
                                    stats.bytes_swapped_in) /
                    (1u << 20));
  }
  std::printf("\n");
}

// One sweep point: a single VM streams a working set of `ratio` x device
// memory through the tier hierarchy and we report sustained MB/s.
void RunSweepPoint(int ratio, const std::string& spill_dir) {
  constexpr std::size_t kDeviceBytes = 8u << 20;
  constexpr std::size_t kChunk = 1u << 20;
  vcl::SiloConfig config;
  config.device_global_mem_bytes = kDeviceBytes;
  vcl::ResetDefaultSilo(config);

  ava::SwapManager::Options options;
  options.host_tier_bytes = 16u << 20;  // past 3x, demotion has to kick in
  options.compress = true;
  options.spill_dir = spill_dir;
  options.prefetch = true;
  options.demote_interval_ms = 2;
  auto swap = std::make_shared<ava::SwapManager>(
      ava_gen_vcl::MakeVclBufferHooks(), options);

  bench::Stack stack;
  VmState vm{&stack.AddVm(1, bench::TransportKind::kInProc, {}, {}, swap)};
  vm.api = vm.vm->VclApi();
  Setup(&vm);

  const int chunks = ratio * static_cast<int>(kDeviceBytes / kChunk);
  const int rounds = 3;
  ava::Stopwatch watch;
  Churn(&vm, chunks, kChunk, rounds);
  const double seconds = watch.ElapsedSeconds();
  const double moved_mib =
      static_cast<double>(chunks) * rounds * (kChunk >> 20);
  auto stats = swap->stats();
  std::printf(
      "%3dx %s: %7.1f MB/s   failures %d   swap-outs %llu  "
      "compressed %llu  spilled %llu  prefetch-hits %llu\n",
      ratio, ratio >= 10 ? "" : " ", moved_mib / seconds, vm.failures,
      static_cast<unsigned long long>(stats.swap_outs),
      static_cast<unsigned long long>(stats.demoted_compressed),
      static_cast<unsigned long long>(stats.demoted_disk),
      static_cast<unsigned long long>(stats.prefetch_hits));
}

}  // namespace

int main() {
  std::printf(
      "Swap ablation — 2 VMs demand 24 MiB on a 16 MiB device (paper §4.3:\n"
      "\"AvA avoids exposing out-of-memory conditions to contending guest "
      "VMs\")\n\n");
  RunConfig(/*with_swap=*/false);
  RunConfig(/*with_swap=*/true);
  std::printf(
      "\nwithout swapping the contending VM's allocations fail; with\n"
      "buffer-granularity swapping every access succeeds, paid for in swap\n"
      "traffic.\n");

  std::printf(
      "\nOversubscription sweep — one VM streams N x 8 MiB round-robin\n"
      "through host arena (16 MiB) -> LZSS-compressed pages -> disk spill,\n"
      "background demotion every 2 ms:\n\n");
  const std::string spill_dir =
      std::filesystem::temp_directory_path() /
      ("ava_abl_swap." + std::to_string(::getpid()));
  std::filesystem::create_directories(spill_dir);
  for (int ratio : {1, 2, 4, 8, 16}) {
    RunSweepPoint(ratio, spill_dir);
  }
  std::filesystem::remove_all(spill_dir);
  return 0;
}
