// E2 — §5's asynchronous-forwarding result: "allowing certain API functions
// to execute asynchronously ... achieving an 8.6% speedup compared to an
// unoptimized specification and a 5% overhead compared to native".
//
// Three configurations per workload:
//   native       — API table bound to the silo
//   ava-sync     — remoted with force_sync (every call waits for its reply,
//                  i.e. a specification with no async annotations)
//   ava-async    — remoted with the spec's sync/async annotations honored
#include <cstdio>

#include "bench/harness.h"
#include "src/workloads/vcl_workloads.h"

namespace {

constexpr int kReps = 3;

}  // namespace

int main() {
  std::printf(
      "S5 — asynchronous-forwarding optimization (paper: async spec is 8.6%%\n"
      "faster than the all-sync spec and 5%% over native)\n\n");
  std::printf("%-12s %10s %10s %10s %12s %12s\n", "benchmark", "native",
              "ava-sync", "ava-async", "async-gain", "vs-native");
  bench::PrintRule(72);

  workloads::WorkloadOptions options;
  double gain_sum = 0.0, over_sum = 0.0;
  int rows = 0;
  for (const auto& workload : workloads::AllVclWorkloads()) {
    vcl::ResetDefaultSilo({});
    auto native_api = ava_gen_vcl::MakeVclNativeApi();
    const double native_ms = 1e3 * bench::MedianSeconds(kReps, [&] {
      if (!workload.run(native_api, options).ok()) {
        std::abort();
      }
    });

    double sync_ms = 0.0, async_ms = 0.0;
    for (bool force_sync : {true, false}) {
      vcl::ResetDefaultSilo({});
      bench::Stack stack;
      ava::GuestEndpoint::Options opts;
      opts.force_sync = force_sync;
      auto& vm = stack.AddVm(1, bench::TransportKind::kInProc, opts);
      auto api = vm.VclApi();
      const double ms = 1e3 * bench::MedianSeconds(kReps, [&] {
        if (!workload.run(api, options).ok()) {
          std::abort();
        }
      });
      (force_sync ? sync_ms : async_ms) = ms;
    }
    const double gain = 100.0 * (sync_ms - async_ms) / sync_ms;
    const double over = 100.0 * (async_ms / native_ms - 1.0);
    gain_sum += gain;
    over_sum += over;
    ++rows;
    std::printf("%-12s %9.1fms %9.1fms %9.1fms %+11.1f%% %+11.1f%%\n",
                workload.name.c_str(), native_ms, sync_ms, async_ms, gain,
                over);
  }
  bench::PrintRule(72);
  std::printf("mean async-forwarding speedup: %+.1f%%   (paper: 8.6%%)\n",
              gain_sum / rows);
  std::printf("mean overhead vs native:       %+.1f%%   (paper: 5%%)\n",
              over_sum / rows);
  return 0;
}
