// Perf-regression gate (`ctest -L perf`): measures the numbers the rest of
// the performance story is built on — the forwarded null-call round trip, a
// cold 4 MiB bulk-buffer round trip over the shm transport (arena path), a
// repeated-identical 1 MiB write on the transfer-cache hit path, the
// policed cached-vs-arena speedup, the null call through the epoll front
// end, and the 64-tenant WFQ fairness index — and fails when a latency
// regresses more than the configured margin past the baseline checked into
// bench/baselines.json, or a floor metric (speedup, fairness) drops below
// its minimum.
//
// Baselines are deliberately set WIDE of the observed medians (see the
// "note" field in the JSON): the gate exists to catch structural
// regressions (an accidental copy, a lost fast path, a serialization blowup),
// not to flake on a loaded CI box. Medians over several repetitions absorb
// scheduler noise. To refresh after an intentional change, run the binary
// and copy the printed medians (plus headroom) into baselines.json.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/harness.h"
#include "src/common/rng.h"
#include "src/gen/vcl_hooks.h"
#include "src/migrate/live.h"
#include "src/obs/admin.h"
#include "src/proto/wire.h"
#include "src/router/wfq.h"
#include "src/server/api_server.h"
#include "src/server/swap_manager.h"
#include "src/transport/transport.h"

namespace {

// Minimal extractor for the flat {"key": number, ...} shape of
// baselines.json (no external JSON dependency in this repo).
bool FindNumber(const std::string& json, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  const std::size_t colon = json.find(':', at + needle.size());
  if (colon == std::string::npos) {
    return false;
  }
  char* end = nullptr;
  const double value = std::strtod(json.c_str() + colon + 1, &end);
  if (end == json.c_str() + colon + 1) {
    return false;
  }
  *out = value;
  return true;
}

// Median per-iteration nanoseconds over `reps` repetitions of `iters`
// iterations each. Medians make single descheduling spikes harmless.
double MedianNsPerIter(int reps, int iters, const std::function<void()>& fn) {
  const double median_s =
      bench::MedianSeconds(reps, [&] {
        for (int i = 0; i < iters; ++i) {
          fn();
        }
      });
  return median_s * 1e9 / iters;
}

struct GateRow {
  const char* name;
  double measured_ns;
  double baseline_ns;
};

// ---- concurrent-caller rows (per-object execution lanes) ----
// These measure the multi-threaded guest path end to end: four application
// threads multiplex one endpoint, each keyed to its own execution lane, with
// the VM's parallelism bound at 4. Raw prepared calls against a trivial
// handler keep the row about dispatch mechanics (demux + lanes + worker
// pool), not API semantics.

constexpr std::uint16_t kLaneApi = 77;

ava::ApiHandler MakeLaneGateHandler() {
  return [](ava::ServerContext* ctx, std::uint32_t func_id,
            ava::ByteReader* args, bool, ava::ByteWriter* reply)
             -> ava::Status {
    if (func_id == 0) {
      reply->PutU32(args->GetU32());
    } else {
      reply->PutU64(static_cast<std::uint64_t>(args->GetBlobView().size()));
    }
    ctx->ChargeCost(100);
    return ava::OkStatus();
  };
}

// Aggregate ns per completed call across 4 caller threads on 4 lanes.
// `median_ns` feeds the absolute gate rows; `min_ns` (best of the reps)
// feeds same-run ratio floors, where a scheduler preemption landing in one
// side's median would otherwise swing the ratio far more than any
// structural change — the best rep is the one that shows the mechanism.
struct FourThreadStats {
  double median_ns = 0;
  double min_ns = 0;
};

FourThreadStats FourThreadNsPerCall(std::size_t bulk_bytes, int iters,
                                    bench::TransportKind transport) {
  constexpr int kThreads = 4;
  bench::Stack stack;
  ava::VmPolicy policy;
  policy.max_parallelism = kThreads;
  auto& vm = stack.AddVm(1, transport, {}, policy);
  vm.session->RegisterApi(kLaneApi, MakeLaneGateHandler());
  const std::vector<std::uint8_t> payload(bulk_bytes, 0x5C);
  auto make_call = [&](std::uint64_t lane) {
    ava::ByteWriter w = ava::BeginCall(kLaneApi, bulk_bytes > 0 ? 1 : 0);
    if (bulk_bytes > 0) {
      w.PutBlob(payload.data(), payload.size());
    } else {
      w.PutU32(7);
    }
    ava::Bytes message = std::move(w).TakeBytes();
    ava::PatchCallLaneKey(&message, lane);
    return message;
  };
  for (int t = 0; t < kThreads; ++t) {  // warm each lane
    (void)vm.endpoint->CallSyncPrepared(make_call(t + 1));
  }
  std::atomic<int> failures{0};
  std::vector<double> rep_seconds;
  for (int rep = 0; rep < 5; ++rep) {
    ava::Stopwatch watch;
    std::vector<std::thread> callers;
    for (int t = 0; t < kThreads; ++t) {
      callers.emplace_back([&, t] {
        for (int i = 0; i < iters; ++i) {
          if (!vm.endpoint->CallSyncPrepared(make_call(t + 1)).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& caller : callers) {
      caller.join();
    }
    rep_seconds.push_back(watch.ElapsedSeconds());
  }
  if (failures.load() > 0) {
    std::fprintf(stderr, "perf_gate: %d concurrent call(s) failed\n",
                 failures.load());
    std::exit(2);
  }
  std::sort(rep_seconds.begin(), rep_seconds.end());
  FourThreadStats stats;
  stats.median_ns =
      rep_seconds[rep_seconds.size() / 2] * 1e9 / (kThreads * iters);
  stats.min_ns = rep_seconds.front() * 1e9 / (kThreads * iters);
  return stats;
}

// ---- scheduler fairness row (weighted fair queuing over virtual time) ----
// Deterministic: a hand-advanced clock drives the real WFQ core through a
// 64-tenant backlog with seeded per-dispatch costs, so the measured Jain
// index is exactly reproducible — any drop below the floor is a scheduler
// change, never machine noise.

class GateFakeClock final : public ava::SchedClock {
 public:
  std::int64_t NowNs() const override { return now_ns_; }
  void Advance(std::int64_t ns) { now_ns_ += ns; }

 private:
  std::int64_t now_ns_ = 1;
};

// ---- swap-manager rows ----
// Resident fast path: 4 lanes translate pinned buffers that never leave the
// device, one registry per lane, so the only lock each call takes is its own
// VM's registry mutex (the sharded design). A global swap mutex on this path
// would serialize all four lanes and blow straight past the baseline.
double SwapResidentTranslate4LaneNs() {
  constexpr int kThreads = 4;
  constexpr int kEntries = 64;
  constexpr int kIters = 20000;
  constexpr std::uint32_t kTag = 42;
  ava::BufferHooks hooks;
  hooks.buffer_type_tag = kTag;
  hooks.read_back = [](ava::ObjectRegistry*, ava::WireHandle,
                       ava::ObjectRegistry::Entry& entry,
                       ava::Bytes* out) -> ava::Status {
    out->assign(entry.size, 0);
    return ava::OkStatus();
  };
  hooks.free_buffer = [](ava::ObjectRegistry*, ava::ObjectRegistry::Entry&) {};
  hooks.realloc_buffer = [](ava::ObjectRegistry*, ava::WireHandle,
                            ava::ObjectRegistry::Entry&,
                            const ava::Bytes&) -> void* { return nullptr; };
  ava::SwapManager::Options options;
  options.demote_interval_ms = 0;  // the row measures the fast path alone
  ava::SwapManager swap(hooks, options);
  std::vector<std::unique_ptr<ava::ObjectRegistry>> registries;
  std::vector<std::vector<ava::WireHandle>> ids(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    registries.push_back(
        std::make_unique<ava::ObjectRegistry>(static_cast<std::uint64_t>(t) +
                                              1));
    swap.AttachRegistry(registries.back().get());
    for (int i = 0; i < kEntries; ++i) {
      ava::WireHandle id = registries[t]->Insert(
          kTag, reinterpret_cast<void*>(0x1000 + kEntries * t + i));
      registries[t]->SetMeta(id, 0, 4096);
      swap.NoteCreated(registries[t].get(), id);
      ids[t].push_back(id);
    }
  }
  std::atomic<int> failures{0};
  std::vector<double> rep_seconds;
  for (int rep = 0; rep < 5; ++rep) {
    ava::Stopwatch watch;
    std::vector<std::thread> lanes;
    for (int t = 0; t < kThreads; ++t) {
      lanes.emplace_back([&, t] {
        ava::ObjectRegistry* reg = registries[t].get();
        for (int i = 0; i < kIters; ++i) {
          if (!swap.TranslatePinned(reg, ids[t][i % kEntries]).ok()) {
            failures.fetch_add(1);
          }
          swap.UnpinAll(reg);
        }
      });
    }
    for (std::thread& lane : lanes) {
      lane.join();
    }
    rep_seconds.push_back(watch.ElapsedSeconds());
  }
  for (auto& registry : registries) {
    swap.DetachRegistry(registry.get());
  }
  if (failures.load() > 0) {
    std::fprintf(stderr, "perf_gate: %d resident translate(s) failed\n",
                 failures.load());
    std::exit(2);
  }
  std::sort(rep_seconds.begin(), rep_seconds.end());
  return rep_seconds[rep_seconds.size() / 2] * 1e9 / (kThreads * kIters);
}

// 4x oversubscription floor: one VM streams a 32 MiB working set round-robin
// over an 8 MiB device through the full tier hierarchy (host arena ->
// LZSS-compressed pages -> disk spill) with the demotion thread live, and
// must sustain a minimum streaming bandwidth. Best of 3 reps: the floor
// checks the mechanism works at 4x, not the box's disk that day.
double Oversub4xMbps() {
  constexpr std::size_t kDeviceBytes = 8u << 20;
  constexpr std::size_t kChunk = 1u << 20;
  constexpr int kChunks = 32;  // 4x the device
  constexpr int kRounds = 2;
  const std::string spill_dir =
      "/tmp/ava_perf_gate_spill." + std::to_string(::getpid());
  std::filesystem::create_directories(spill_dir);
  double best_mbps = 0;
  for (int rep = 0; rep < 3; ++rep) {
    vcl::SiloConfig config;
    config.device_global_mem_bytes = kDeviceBytes;
    vcl::ResetDefaultSilo(config);
    ava::SwapManager::Options options;
    options.host_tier_bytes = 16u << 20;
    options.compress = true;
    options.spill_dir = spill_dir;
    options.prefetch = true;
    options.demote_interval_ms = 2;
    auto swap = std::make_shared<ava::SwapManager>(
        ava_gen_vcl::MakeVclBufferHooks(), options);
    bench::Stack stack;
    auto& vm = stack.AddVm(1, bench::TransportKind::kInProc, {}, {}, swap);
    auto api = vm.VclApi();
    vcl_platform_id platform = nullptr;
    api.vclGetPlatformIDs(1, &platform, nullptr);
    vcl_device_id device = nullptr;
    api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
    vcl_int err = VCL_SUCCESS;
    vcl_context ctx = api.vclCreateContext(&device, 1, &err);
    vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
    std::vector<std::uint32_t> data(kChunk / 4, 0x5A5A5A5A);
    std::vector<vcl_mem> buffers;
    for (int i = 0; i < kChunks; ++i) {
      vcl_mem m = api.vclCreateBuffer(ctx, VCL_MEM_COPY_HOST_PTR, kChunk,
                                      data.data(), &err);
      if (err != VCL_SUCCESS) {
        std::fprintf(stderr, "perf_gate: oversub alloc %d failed\n", i);
        std::exit(2);
      }
      buffers.push_back(m);
    }
    std::vector<std::uint32_t> out(kChunk / 4);
    ava::Stopwatch watch;
    for (int round = 0; round < kRounds; ++round) {
      for (vcl_mem m : buffers) {
        if (api.vclEnqueueReadBuffer(queue, m, VCL_TRUE, 0, kChunk,
                                     out.data(), 0, nullptr,
                                     nullptr) != VCL_SUCCESS ||
            out[0] != 0x5A5A5A5A) {
          std::fprintf(stderr, "perf_gate: oversub read failed/corrupt\n");
          std::exit(2);
        }
      }
    }
    const double mbps = static_cast<double>(kChunks) * kRounds *
                        (kChunk >> 20) / watch.ElapsedSeconds();
    best_mbps = std::max(best_mbps, mbps);
  }
  std::filesystem::remove_all(spill_dir);
  return best_mbps;
}

// ---- live-migration rows ----
// Self-contained: a fake device (host-side map) on both ends, a 16 x 1 MiB
// working set with half-duplicate contents, one full pre-copy round, one
// buffer dirtied, then stop-and-copy. The downtime ceiling catches
// working-set-proportional work leaking back into the pause (the eager
// incremental import keeps cutover proportional to the dirty residual);
// the dedup floor catches the content-digest dedup going dark. Best of 3
// reps for the ceiling: the row checks the mechanism, not the box.
struct MigrateGateStats {
  double downtime_ns = 0;
  double dedup_ratio = 0;
};

MigrateGateStats MigrateGate() {
  constexpr std::uint32_t kTag = 91;
  constexpr std::size_t kBufBytes = 1u << 20;
  constexpr int kBufCount = 16;  // half duplicates: 8 unique contents
  struct Device {
    std::mutex m;
    std::uintptr_t next = 0x1000;
    std::unordered_map<void*, ava::Bytes> mem;
  };
  const auto make_hooks = [](Device* dev) {
    ava::BufferHooks hooks;
    hooks.buffer_type_tag = kTag;
    hooks.read_back = [dev](ava::ObjectRegistry*, ava::WireHandle,
                            ava::ObjectRegistry::Entry& entry,
                            ava::Bytes* out) -> ava::Status {
      std::lock_guard<std::mutex> lock(dev->m);
      *out = dev->mem[entry.real];
      return ava::OkStatus();
    };
    hooks.free_buffer = [dev](ava::ObjectRegistry*,
                              ava::ObjectRegistry::Entry& entry) {
      std::lock_guard<std::mutex> lock(dev->m);
      dev->mem.erase(entry.real);
    };
    hooks.realloc_buffer = [dev](ava::ObjectRegistry*, ava::WireHandle,
                                 ava::ObjectRegistry::Entry&,
                                 const ava::Bytes& contents) -> void* {
      std::lock_guard<std::mutex> lock(dev->m);
      void* p = reinterpret_cast<void*>(dev->next++);
      dev->mem[p] = contents;
      return p;
    };
    hooks.write_back = [dev](ava::ObjectRegistry*, ava::WireHandle,
                             ava::ObjectRegistry::Entry& entry,
                             const ava::Bytes& contents) -> ava::Status {
      std::lock_guard<std::mutex> lock(dev->m);
      dev->mem[entry.real] = contents;
      return ava::OkStatus();
    };
    return hooks;
  };
  const auto content = [](std::uint64_t seed) {
    ava::Bytes out(kBufBytes);
    std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
    for (std::size_t i = 0; i < out.size(); i += 8) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      std::memcpy(out.data() + i, &x, 8);
    }
    return out;
  };
  MigrateGateStats best;
  best.downtime_ns = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    Device src_dev;
    Device dst_dev;
    auto src_session = std::make_shared<ava::ApiServerSession>(1);
    auto dst_session = std::make_shared<ava::ApiServerSession>(1);
    std::vector<ava::WireHandle> ids;
    for (int i = 0; i < kBufCount; ++i) {
      ava::Bytes bytes = content(i % (kBufCount / 2));
      std::lock_guard<std::mutex> lock(src_dev.m);
      void* p = reinterpret_cast<void*>(src_dev.next++);
      src_dev.mem[p] = std::move(bytes);
      ava::WireHandle id = src_session->registry().Insert(kTag, p);
      src_session->registry().SetMeta(id, 0, kBufBytes);
      ids.push_back(id);
    }
    ava::LiveMigrateOptions options;
    options.chunk_bytes = 256u << 10;
    options.copy_rate_bytes_per_sec = 1e9;
    ava::LiveMigrationSource source(make_hooks(&src_dev), options);
    ava::LiveMigrationTarget target(make_hooks(&dst_dev), options);
    auto wire = ava::MakeInProcChannel();
    if (!source.Bind(nullptr, src_session.get(), nullptr).ok()) {
      std::fprintf(stderr, "perf_gate: migrate bind failed\n");
      std::exit(2);
    }
    std::thread serve([&, t = std::move(wire.host)]() mutable {
      (void)target.Serve(std::move(t), dst_session.get());
    });
    bool ok = source.Connect(std::move(wire.guest)).ok() &&
              source.RunRound().ok();
    if (ok) {
      // The VM's write during the full round: one buffer of new content.
      auto real = src_session->registry().Translate(kTag, ids[0]);
      ok = real.ok();
      if (ok) {
        std::lock_guard<std::mutex> lock(src_dev.m);
        src_dev.mem[*real] = content(1000 + rep);
      }
    }
    ok = ok && source.StopAndCopy().ok() && source.FinishCutover().ok();
    serve.join();
    if (!ok) {
      std::fprintf(stderr, "perf_gate: live migration rep %d failed\n", rep);
      std::exit(2);
    }
    const ava::LiveMigrateStats& stats = source.stats();
    best.downtime_ns = std::min(
        best.downtime_ns, static_cast<double>(stats.downtime_ns));
    if (stats.bytes_shipped > 0) {
      // Would-have-shipped over actually-shipped: bytes_deduped counts
      // chunks elided at scan time (already in the source's store) and at
      // OFFER/NEED time (already in the target's).
      best.dedup_ratio = std::max(
          best.dedup_ratio,
          static_cast<double>(stats.bytes_shipped + stats.bytes_deduped) /
              static_cast<double>(stats.bytes_shipped));
    }
  }
  return best;
}

double FairnessJain64Vm() {
  constexpr int kTenants = 64;
  constexpr int kDispatches = 40000;
  GateFakeClock clock;
  ava::WfqScheduler sched(&clock);
  ava::Rng rng(0x64f41ULL);
  std::vector<double> weights(kTenants);
  std::vector<double> charged(kTenants, 0.0);
  for (int i = 0; i < kTenants; ++i) {
    weights[i] = static_cast<double>(1 << (i % 4));  // 1, 2, 4, 8
    sched.AddTenant(static_cast<std::uint64_t>(i) + 1, weights[i],
                    /*allot_vns_per_sec=*/0.0);
    sched.SetRunnable(static_cast<std::uint64_t>(i) + 1, true);
  }
  for (int iter = 0; iter < kDispatches; ++iter) {
    std::uint64_t vm = 0;
    if (!sched.PickNext(&vm)) {
      std::fprintf(stderr, "perf_gate: backlogged scheduler went idle\n");
      std::exit(2);
    }
    const std::int64_t cost = rng.NextInRange(5000, 15000);
    sched.Charge(vm, cost);
    clock.Advance(cost);
    charged[vm - 1] += static_cast<double>(cost);
  }
  std::vector<double> normalized(kTenants);
  for (int i = 0; i < kTenants; ++i) {
    normalized[i] = charged[i] / weights[i];
  }
  return ava::JainIndex(normalized);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: perf_gate <baselines.json>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "perf_gate: cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();

  double null_call_baseline = 0, bulk_baseline = 0, margin = 0;
  double hit_baseline = 0, min_speedup = 0;
  double null4_baseline = 0, bulk4_baseline = 0;
  double null_scraped_baseline = 0;
  double null_epoll_baseline = 0, min_jain = 0;
  double null_sqcq_baseline = 0, null_sqcq4_baseline = 0;
  double sqcq4_min_speedup = 0;
  double swap4_baseline = 0, oversub_min_mbps = 0;
  double migrate_downtime_ms_baseline = 0, migrate_min_dedup = 0;
  if (!FindNumber(json, "null_call_ns", &null_call_baseline) ||
      !FindNumber(json, "bulk_4mib_roundtrip_ns", &bulk_baseline) ||
      !FindNumber(json, "xfer_cache_hit_1mib_ns", &hit_baseline) ||
      !FindNumber(json, "xfer_cache_policed_min_speedup", &min_speedup) ||
      !FindNumber(json, "null_call_4thread_ns", &null4_baseline) ||
      !FindNumber(json, "bulk_1mib_4thread_ns", &bulk4_baseline) ||
      !FindNumber(json, "null_call_scraped_ns", &null_scraped_baseline) ||
      !FindNumber(json, "null_call_epoll_ns", &null_epoll_baseline) ||
      !FindNumber(json, "null_call_sqcq_ns", &null_sqcq_baseline) ||
      !FindNumber(json, "null_call_sqcq_4thread_ns", &null_sqcq4_baseline) ||
      !FindNumber(json, "sqcq_4thread_min_speedup", &sqcq4_min_speedup) ||
      !FindNumber(json, "swap_resident_translate_4lane_ns", &swap4_baseline) ||
      !FindNumber(json, "oversub_4x_floor_mbps", &oversub_min_mbps) ||
      !FindNumber(json, "migrate_downtime_ms", &migrate_downtime_ms_baseline) ||
      !FindNumber(json, "migrate_dedup_ratio", &migrate_min_dedup) ||
      !FindNumber(json, "fairness_jain_64vm_min", &min_jain) ||
      !FindNumber(json, "regression_margin", &margin)) {
    std::fprintf(stderr, "perf_gate: malformed %s\n", argv[1]);
    return 2;
  }

  // --- null call: the small-call hot path (inproc, like micro_call) ---
  vcl::ResetDefaultSilo({});
  double null_call_ns = 0;
  {
    bench::Stack stack;
    auto& vm = stack.AddVm(1, bench::TransportKind::kInProc);
    auto api = vm.VclApi();
    vcl_uint n = 0;
    api.vclGetPlatformIDs(0, nullptr, &n);  // warm the stack
    null_call_ns = MedianNsPerIter(
        7, 2000, [&] { api.vclGetPlatformIDs(0, nullptr, &n); });
  }

  // --- null call under a live 10 Hz admin scrape: the introspection plane
  // must not tax the hot path. A scraper thread hits `metrics` (a full
  // registry snapshot + Prometheus render) and `account` (ledger fold +
  // EWMA + gauge refresh) every 100 ms while the same null call as above
  // is measured; the row shares the null-call margin. ---
  double null_scraped_ns = 0;
  {
    vcl::ResetDefaultSilo({});
    bench::Stack stack;
    auto& vm = stack.AddVm(1, bench::TransportKind::kInProc);
    auto api = vm.VclApi();
    vcl_uint n = 0;
    api.vclGetPlatformIDs(0, nullptr, &n);

    ava::obs::AdminChannel admin;
    stack.router().RegisterAdmin(&admin);
    const std::string sock =
        "/tmp/ava_perf_gate." + std::to_string(::getpid()) + ".sock";
    if (!admin.Serve(sock).ok()) {
      std::fprintf(stderr, "perf_gate: cannot serve admin socket %s\n",
                   sock.c_str());
      return 2;
    }
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> scrapes{0};
    std::thread scraper([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (ava::obs::AdminQuery(sock, "metrics").ok() &&
            ava::obs::AdminQuery(sock, "account").ok()) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
    null_scraped_ns = MedianNsPerIter(
        7, 2000, [&] { api.vclGetPlatformIDs(0, nullptr, &n); });
    stop.store(true);
    scraper.join();
    admin.Stop();
    if (scrapes.load() == 0) {
      std::fprintf(stderr,
                   "perf_gate: no admin scrape completed during the "
                   "null_call_scraped row\n");
      return 2;
    }
  }

  // --- null call over the epoll front end: the same round trip as the
  // null_call row, but over a socketpair channel whose host side is served
  // by the router's event loop (readiness -> drain -> WFQ dispatch) instead
  // of the inproc fallback's blocking reader. Guards the event-driven
  // path's per-call overhead against the thread-per-session baseline. ---
  double null_epoll_ns = 0;
  {
    vcl::ResetDefaultSilo({});
    bench::Stack stack;
    auto& vm = stack.AddVm(1, bench::TransportKind::kSocketPair);
    auto api = vm.VclApi();
    vcl_uint n = 0;
    api.vclGetPlatformIDs(0, nullptr, &n);  // warm the stack
    null_epoll_ns = MedianNsPerIter(
        7, 2000, [&] { api.vclGetPlatformIDs(0, nullptr, &n); });
  }

  // --- 4 MiB buffer round trip: the bulk path (shm ring + arena) ---
  constexpr std::size_t kBulkBytes = 4u << 20;
  double bulk_ns = 0;
  {
    vcl::ResetDefaultSilo({});
    bench::Stack stack;
    auto& vm = stack.AddVm(1, bench::TransportKind::kShmRing);
    auto api = vm.VclApi();
    vcl_platform_id platform = nullptr;
    api.vclGetPlatformIDs(1, &platform, nullptr);
    vcl_device_id device = nullptr;
    api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
    vcl_int err = VCL_SUCCESS;
    vcl_context ctx = api.vclCreateContext(&device, 1, &err);
    vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
    vcl_mem mem = api.vclCreateBuffer(ctx, 0, kBulkBytes, nullptr, &err);
    std::vector<std::uint8_t> host(kBulkBytes, 0x77);
    // Mutate a byte inside the transfer-cache prefix probe every iteration
    // so each write is brand-new content: this row measures the COLD bulk
    // path (arena transfer + the cache's prefix probe), which is where an
    // accidental extra copy or a lost fast path would show up. The cache's
    // own hit path has its own row below.
    std::uint8_t tick = 0;
    bulk_ns = MedianNsPerIter(7, 8, [&] {
      host[0] = ++tick;
      api.vclEnqueueWriteBuffer(queue, mem, VCL_TRUE, 0, kBulkBytes,
                                host.data(), 0, nullptr, nullptr);
      api.vclEnqueueReadBuffer(queue, mem, VCL_TRUE, 0, kBulkBytes,
                               host.data(), 0, nullptr, nullptr);
    });
    api.vclReleaseMemObject(mem);
    api.vclReleaseCommandQueue(queue);
    api.vclReleaseContext(ctx);
  }

  // --- transfer-cache hit: repeated identical 1 MiB write (shm + cache) ---
  constexpr std::size_t kHitBytes = 1u << 20;
  double hit_ns = 0;
  double policed_speedup = 0;
  {
    vcl::ResetDefaultSilo({});
    bench::Stack stack;
    auto& vm = stack.AddVm(1, bench::TransportKind::kShmRing);
    auto api = vm.VclApi();
    vcl_platform_id platform = nullptr;
    api.vclGetPlatformIDs(1, &platform, nullptr);
    vcl_device_id device = nullptr;
    api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
    vcl_int err = VCL_SUCCESS;
    vcl_context ctx = api.vclCreateContext(&device, 1, &err);
    vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
    vcl_mem mem = api.vclCreateBuffer(ctx, 0, kHitBytes, nullptr, &err);
    std::vector<std::uint8_t> host(kHitBytes, 0x33);
    // Two warm sends: sighting, then install. Everything after is a hit —
    // one full Hash64 pass plus a 24-byte descriptor round trip.
    for (int i = 0; i < 2; ++i) {
      api.vclEnqueueWriteBuffer(queue, mem, VCL_TRUE, 0, kHitBytes,
                                host.data(), 0, nullptr, nullptr);
    }
    hit_ns = MedianNsPerIter(7, 16, [&] {
      api.vclEnqueueWriteBuffer(queue, mem, VCL_TRUE, 0, kHitBytes,
                                host.data(), 0, nullptr, nullptr);
    });
    api.vclReleaseMemObject(mem);
    api.vclReleaseCommandQueue(queue);
    api.vclReleaseContext(ctx);
  }

  // --- policed speedup: the headline the cache exists for. Under a per-VM
  // byte budget the router charges cached hits only their descriptor
  // bytes, so a guest re-sending resident content is bounded by the round
  // trip while an arena-only guest is bounded by policy. ---
  {
    constexpr double kBytesPerSec = 64.0 * (1u << 20);
    vcl::ResetDefaultSilo({});
    bench::Stack stack;
    ava::VmPolicy policy;
    policy.bytes_per_sec = kBytesPerSec;
    ava::GuestEndpoint::Options arena_opts;
    arena_opts.arena_threshold_bytes = 64 << 10;
    arena_opts.xfer_cache_min_bytes = 0;  // PR 3 behavior: no cache path
    ava::GuestEndpoint::Options cache_opts;
    cache_opts.arena_threshold_bytes = 64 << 10;
    auto& arena_vm = stack.AddVm(1, bench::TransportKind::kShmRing,
                                 arena_opts, policy);
    auto& cache_vm = stack.AddVm(2, bench::TransportKind::kShmRing,
                                 cache_opts, policy);
    auto measure = [&](bench::GuestVm& vm) {
      auto api = vm.VclApi();
      vcl_platform_id platform = nullptr;
      api.vclGetPlatformIDs(1, &platform, nullptr);
      vcl_device_id device = nullptr;
      api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device,
                          nullptr);
      vcl_int err = VCL_SUCCESS;
      vcl_context ctx = api.vclCreateContext(&device, 1, &err);
      vcl_command_queue queue =
          api.vclCreateCommandQueue(ctx, device, 0, &err);
      vcl_mem mem = api.vclCreateBuffer(ctx, 0, kHitBytes, nullptr, &err);
      std::vector<std::uint8_t> host(kHitBytes, 0x44);
      // Drain the token bucket's one-second burst so the measured region
      // is steady-state policing. A fixed write count races the bucket's
      // refill — on a slow or loaded machine each round trip refills a
      // slice of the budget and the burst can end with credit still
      // banked, leaving the measured region unpoliced — so write until
      // two consecutive calls each block for a solid fraction of the
      // ~16 ms a 1 MiB frame needs to refill at 64 MiB/s. The cache VM
      // never blocks (hits are charged descriptor bytes only), so the
      // iteration cap bounds its loop.
      const auto slow = std::chrono::milliseconds(6);
      int consecutive_slow = 0;
      for (int i = 0; i < 300 && consecutive_slow < 2; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        api.vclEnqueueWriteBuffer(queue, mem, VCL_TRUE, 0, kHitBytes,
                                  host.data(), 0, nullptr, nullptr);
        const bool blocked = std::chrono::steady_clock::now() - t0 >= slow;
        consecutive_slow = blocked ? consecutive_slow + 1 : 0;
      }
      const double ns = MedianNsPerIter(5, 1, [&] {
        api.vclEnqueueWriteBuffer(queue, mem, VCL_TRUE, 0, kHitBytes,
                                  host.data(), 0, nullptr, nullptr);
      });
      api.vclReleaseMemObject(mem);
      api.vclReleaseCommandQueue(queue);
      api.vclReleaseContext(ctx);
      return ns;
    };
    const double arena_ns = measure(arena_vm);
    const double cached_ns = measure(cache_vm);
    policed_speedup = arena_ns / cached_ns;
  }

  // --- null call over the SQ/CQ record ring: the same round trip as the
  // null_call row, over the lock-free submit / doorbell-suppressed
  // transport served by the router's event loop. Gated against its own
  // baseline with the shared margin. ---
  double null_sqcq_ns = 0;
  {
    vcl::ResetDefaultSilo({});
    bench::Stack stack;
    auto& vm = stack.AddVm(1, bench::TransportKind::kSqcq);
    auto api = vm.VclApi();
    vcl_uint n = 0;
    api.vclGetPlatformIDs(0, nullptr, &n);  // warm the stack
    null_sqcq_ns = MedianNsPerIter(
        7, 2000, [&] { api.vclGetPlatformIDs(0, nullptr, &n); });
  }

  // --- concurrent-caller rows: 4 threads, 4 lanes, parallelism 4 ---
  vcl::ResetDefaultSilo({});
  const double null4_ns =
      FourThreadNsPerCall(0, 500, bench::TransportKind::kInProc).median_ns;
  vcl::ResetDefaultSilo({});
  const double bulk4_ns =
      FourThreadNsPerCall(1u << 20, 8, bench::TransportKind::kShmRing)
          .median_ns;

  // --- the SQ/CQ headline: 4 concurrent callers, null call. Submissions
  // claim slots wait-free and reply wakeups batch through the CQ reap, so
  // this row must beat the leader/follower shm demux — measured in the
  // same run, not against a stored number — by the configured floor. The
  // ratio compares best reps (see FourThreadStats) across three
  // back-to-back pairs, keeping the best pair: one preemption storm
  // landing on either side of a single pair cannot mask the structural
  // advantage, while a genuinely lost fast path still fails every pair.
  // Six pairs, not three: on a single-CPU host the sqcq side is bimodal —
  // runs that pipeline against the router's drain loop suppress every
  // doorbell (~10 µs/call), runs that settle into lockstep ring one per
  // call (~13 µs, which measures right at 2.0x). The mode flips between
  // pairs, so enough pairs all but guarantee at least one pipelined
  // sample, while a genuinely lost fast path (~1.3x) still fails all six.
  FourThreadStats sqcq4;
  double sqcq4_speedup = 0;
  for (int pair = 0; pair < 6; ++pair) {
    vcl::ResetDefaultSilo({});
    const FourThreadStats sqcq_stats =
        FourThreadNsPerCall(0, 500, bench::TransportKind::kSqcq);
    vcl::ResetDefaultSilo({});
    const FourThreadStats shm_stats =
        FourThreadNsPerCall(0, 500, bench::TransportKind::kShmRing);
    if (pair == 0) {
      sqcq4 = sqcq_stats;
    }
    sqcq4_speedup =
        std::max(sqcq4_speedup, shm_stats.min_ns / sqcq_stats.min_ns);
    std::printf("# sqcq4 pair %d: sqcq min %.0fns  shm min %.0fns  (%.2fx)\n",
                pair, sqcq_stats.min_ns, shm_stats.min_ns,
                shm_stats.min_ns / sqcq_stats.min_ns);
  }

  const double swap4_ns = SwapResidentTranslate4LaneNs();
  const double oversub_mbps = Oversub4xMbps();
  const MigrateGateStats migrate = MigrateGate();
  const double fairness_jain = FairnessJain64Vm();

  const GateRow rows[] = {
      {"null_call", null_call_ns, null_call_baseline},
      {"null_call_scraped", null_scraped_ns, null_scraped_baseline},
      {"null_call_epoll", null_epoll_ns, null_epoll_baseline},
      {"bulk_4mib_roundtrip", bulk_ns, bulk_baseline},
      {"xfer_cache_hit_1mib", hit_ns, hit_baseline},
      {"null_call_4thread", null4_ns, null4_baseline},
      {"bulk_1mib_4thread", bulk4_ns, bulk4_baseline},
      {"null_call_sqcq", null_sqcq_ns, null_sqcq_baseline},
      {"null_call_sqcq_4thread", sqcq4.median_ns, null_sqcq4_baseline},
      {"swap_resident_4lane", swap4_ns, swap4_baseline},
      {"migrate_downtime", migrate.downtime_ns,
       migrate_downtime_ms_baseline * 1e6},
  };
  int failures = 0;
  std::printf("perf gate (fail above baseline x %.2f)\n", margin);
  std::printf("%-22s %14s %14s %10s  %s\n", "metric", "measured",
              "baseline", "ratio", "verdict");
  bench::PrintRule(72);
  for (const auto& row : rows) {
    const double limit = row.baseline_ns * margin;
    const bool ok = row.measured_ns <= limit;
    failures += ok ? 0 : 1;
    std::printf("%-22s %12.0fns %12.0fns %9.2fx  %s\n", row.name,
                row.measured_ns, row.baseline_ns,
                row.measured_ns / row.baseline_ns, ok ? "ok" : "REGRESSED");
  }
  {
    // Floor check, not a ceiling: the policed cached path must keep its
    // structural advantage over paying full freight against the byte
    // budget.
    const bool ok = policed_speedup >= min_speedup;
    failures += ok ? 0 : 1;
    std::printf("%-22s %13.1fx %13.1fx %9s  %s\n",
                "xfer_policed_speedup", policed_speedup, min_speedup,
                "(min)", ok ? "ok" : "REGRESSED");
  }
  {
    // Floor check: at 4 concurrent callers the SQ/CQ ring must keep its
    // structural throughput advantage (wait-free submit, batched reaps,
    // suppressed doorbells) over the leader/follower shm demux. Both sides
    // measured in this run, so machine speed cancels out.
    const bool ok = sqcq4_speedup >= sqcq4_min_speedup;
    failures += ok ? 0 : 1;
    std::printf("%-22s %13.1fx %13.1fx %9s  %s\n", "sqcq_4thread_speedup",
                sqcq4_speedup, sqcq4_min_speedup, "(min)",
                ok ? "ok" : "REGRESSED");
  }
  {
    // Floor check: at 4x oversubscription the tier hierarchy must keep
    // streaming — a lost prefetch, a serialized demoter, or a synchronous
    // write-back shows up here long before the ablation chart does.
    const bool ok = oversub_mbps >= oversub_min_mbps;
    failures += ok ? 0 : 1;
    std::printf("%-22s %9.1fMB/s %9.1fMB/s %9s  %s\n", "oversub_4x_floor",
                oversub_mbps, oversub_min_mbps, "(min)",
                ok ? "ok" : "REGRESSED");
  }
  {
    // Floor check: pre-copy over the half-duplicate working set must keep
    // shipping measurably fewer bytes than it offers — the content-digest
    // dedup's whole contract. A ratio collapse to ~1.0 means every offered
    // chunk went over the wire.
    const bool ok = migrate.dedup_ratio >= migrate_min_dedup;
    failures += ok ? 0 : 1;
    std::printf("%-22s %13.1fx %13.1fx %9s  %s\n", "migrate_dedup_ratio",
                migrate.dedup_ratio, migrate_min_dedup, "(min)",
                ok ? "ok" : "REGRESSED");
  }
  {
    // Floor check: weight-normalized service across a deterministic
    // 64-tenant backlog must stay near-perfectly fair.
    const bool ok = fairness_jain >= min_jain;
    failures += ok ? 0 : 1;
    std::printf("%-22s %14.3f %14.3f %9s  %s\n", "fairness_jain_64vm",
                fairness_jain, min_jain, "(min)", ok ? "ok" : "REGRESSED");
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "\nperf_gate: %d metric(s) regressed past the margin. If "
                 "the change is intentional, refresh bench/baselines.json "
                 "with the printed medians plus headroom.\n",
                 failures);
    return 1;
  }
  return 0;
}
