// Perf-regression gate (`ctest -L perf`): measures the two numbers the rest
// of the performance story is built on — the forwarded null-call round trip
// and a 4 MiB bulk-buffer round trip over the shm transport (arena path) —
// and fails when either regresses more than the configured margin past the
// baseline checked into bench/baselines.json.
//
// Baselines are deliberately set WIDE of the observed medians (see the
// "note" field in the JSON): the gate exists to catch structural
// regressions (an accidental copy, a lost fast path, a serialization blowup),
// not to flake on a loaded CI box. Medians over several repetitions absorb
// scheduler noise. To refresh after an intentional change, run the binary
// and copy the printed medians (plus headroom) into baselines.json.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace {

// Minimal extractor for the flat {"key": number, ...} shape of
// baselines.json (no external JSON dependency in this repo).
bool FindNumber(const std::string& json, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  const std::size_t colon = json.find(':', at + needle.size());
  if (colon == std::string::npos) {
    return false;
  }
  char* end = nullptr;
  const double value = std::strtod(json.c_str() + colon + 1, &end);
  if (end == json.c_str() + colon + 1) {
    return false;
  }
  *out = value;
  return true;
}

// Median per-iteration nanoseconds over `reps` repetitions of `iters`
// iterations each. Medians make single descheduling spikes harmless.
double MedianNsPerIter(int reps, int iters, const std::function<void()>& fn) {
  const double median_s =
      bench::MedianSeconds(reps, [&] {
        for (int i = 0; i < iters; ++i) {
          fn();
        }
      });
  return median_s * 1e9 / iters;
}

struct GateRow {
  const char* name;
  double measured_ns;
  double baseline_ns;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: perf_gate <baselines.json>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "perf_gate: cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();

  double null_call_baseline = 0, bulk_baseline = 0, margin = 0;
  if (!FindNumber(json, "null_call_ns", &null_call_baseline) ||
      !FindNumber(json, "bulk_4mib_roundtrip_ns", &bulk_baseline) ||
      !FindNumber(json, "regression_margin", &margin)) {
    std::fprintf(stderr, "perf_gate: malformed %s\n", argv[1]);
    return 2;
  }

  // --- null call: the small-call hot path (inproc, like micro_call) ---
  vcl::ResetDefaultSilo({});
  double null_call_ns = 0;
  {
    bench::Stack stack;
    auto& vm = stack.AddVm(1, bench::TransportKind::kInProc);
    auto api = vm.VclApi();
    vcl_uint n = 0;
    api.vclGetPlatformIDs(0, nullptr, &n);  // warm the stack
    null_call_ns = MedianNsPerIter(
        7, 2000, [&] { api.vclGetPlatformIDs(0, nullptr, &n); });
  }

  // --- 4 MiB buffer round trip: the bulk path (shm ring + arena) ---
  constexpr std::size_t kBulkBytes = 4u << 20;
  double bulk_ns = 0;
  {
    vcl::ResetDefaultSilo({});
    bench::Stack stack;
    auto& vm = stack.AddVm(1, bench::TransportKind::kShmRing);
    auto api = vm.VclApi();
    vcl_platform_id platform = nullptr;
    api.vclGetPlatformIDs(1, &platform, nullptr);
    vcl_device_id device = nullptr;
    api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
    vcl_int err = VCL_SUCCESS;
    vcl_context ctx = api.vclCreateContext(&device, 1, &err);
    vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
    vcl_mem mem = api.vclCreateBuffer(ctx, 0, kBulkBytes, nullptr, &err);
    std::vector<std::uint8_t> host(kBulkBytes, 0x77);
    bulk_ns = MedianNsPerIter(7, 8, [&] {
      api.vclEnqueueWriteBuffer(queue, mem, VCL_TRUE, 0, kBulkBytes,
                                host.data(), 0, nullptr, nullptr);
      api.vclEnqueueReadBuffer(queue, mem, VCL_TRUE, 0, kBulkBytes,
                               host.data(), 0, nullptr, nullptr);
    });
    api.vclReleaseMemObject(mem);
    api.vclReleaseCommandQueue(queue);
    api.vclReleaseContext(ctx);
  }

  const GateRow rows[] = {
      {"null_call", null_call_ns, null_call_baseline},
      {"bulk_4mib_roundtrip", bulk_ns, bulk_baseline},
  };
  int failures = 0;
  std::printf("perf gate (fail above baseline x %.2f)\n", margin);
  std::printf("%-22s %14s %14s %10s  %s\n", "metric", "measured",
              "baseline", "ratio", "verdict");
  bench::PrintRule(72);
  for (const auto& row : rows) {
    const double limit = row.baseline_ns * margin;
    const bool ok = row.measured_ns <= limit;
    failures += ok ? 0 : 1;
    std::printf("%-22s %12.0fns %12.0fns %9.2fx  %s\n", row.name,
                row.measured_ns, row.baseline_ns,
                row.measured_ns / row.baseline_ns, ok ? "ok" : "REGRESSED");
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "\nperf_gate: %d metric(s) regressed past the margin. If "
                 "the change is intentional, refresh bench/baselines.json "
                 "with the printed medians plus headroom.\n",
                 failures);
    return 1;
  }
  return 0;
}
