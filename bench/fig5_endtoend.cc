// E1 — Figure 5: end-to-end relative execution time of the Rodinia-style
// OpenCL benchmarks and Inception-sim on the NCS stand-in, virtualized with
// AvA and normalized to native.
//
// Paper reports: at most 16% overhead (8% average) for the OpenCL
// benchmarks; ~1% for Inception on the Movidius NCS. The reproduction
// target is the *shape*: near-native ratios, with call-latency-bound
// benchmarks (gaussian, nw, bfs) at the high end and data/compute-bound
// ones (nn, hotspot, inception) near 1.0.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "src/workloads/inception.h"
#include "src/workloads/vcl_workloads.h"

namespace {

constexpr int kReps = 3;

struct Row {
  std::string name;
  double native_ms;
  double ava_ms;
  // Forwarded sync-call round-trip distribution during the AvA runs.
  ava::obs::HistogramSnapshot latency;
};

Row RunVclRow(const workloads::VclWorkload& workload) {
  workloads::WorkloadOptions options;
  Row row;
  row.name = workload.name;

  // Native: the API table bound straight to the silo.
  vcl::ResetDefaultSilo({});
  auto native_api = ava_gen_vcl::MakeVclNativeApi();
  row.native_ms = 1e3 * bench::MedianSeconds(kReps, [&] {
    ava::Status s = workload.run(native_api, options);
    if (!s.ok()) {
      std::fprintf(stderr, "native %s failed: %s\n", workload.name.c_str(),
                   s.ToString().c_str());
      std::abort();
    }
  });

  // AvA: generated guest stubs -> para-virtual FIFO -> router -> server.
  vcl::ResetDefaultSilo({});
  bench::Stack stack;
  auto& vm = stack.AddVm(1, bench::TransportKind::kInProc);
  auto ava_api = vm.VclApi();
  row.ava_ms = 1e3 * bench::MedianSeconds(kReps, [&] {
    ava::Status s = workload.run(ava_api, options);
    if (!s.ok()) {
      std::fprintf(stderr, "ava %s failed: %s\n", workload.name.c_str(),
                   s.ToString().c_str());
      std::abort();
    }
  });
  row.latency = vm.endpoint->sync_latency();
  return row;
}

Row RunInceptionRow() {
  workloads::WorkloadOptions options;
  Row row;
  row.name = "inception";
  mvnc::ResetMvncSilo({});
  auto native_api = ava_gen_mvnc::MakeMvncNativeApi();
  row.native_ms = 1e3 * bench::MedianSeconds(kReps, [&] {
    ava::Status s = workloads::RunInception(native_api, options);
    if (!s.ok()) {
      std::abort();
    }
  });
  mvnc::ResetMvncSilo({});
  bench::Stack stack;
  auto& vm = stack.AddVm(1, bench::TransportKind::kInProc);
  auto ava_api = vm.MvncApi();
  row.ava_ms = 1e3 * bench::MedianSeconds(kReps, [&] {
    ava::Status s = workloads::RunInception(ava_api, options);
    if (!s.ok()) {
      std::abort();
    }
  });
  row.latency = vm.endpoint->sync_latency();
  return row;
}

}  // namespace

int main() {
  // Latency sampling is off by default to keep hot paths clean; this bench
  // exists to report distributions, so switch it on before building VMs.
  ava::obs::SetSamplingEnabled(true);
  std::printf("Figure 5 — end-to-end relative execution time (AvA / native)\n");
  std::printf("native = direct silo calls; AvA = generated stack through the router over the\n");
  std::printf("para-virtual FIFO transport (median of %d runs; see abl_transport\nfor shm-ring and socket numbers)\n\n", kReps);
  std::printf("%-12s %12s %12s %10s\n", "benchmark", "native(ms)", "ava(ms)",
              "relative");
  bench::PrintRule(50);

  double ratio_sum = 0.0;
  double ratio_max = 0.0;
  int vcl_rows = 0;
  std::vector<Row> rows;
  for (const auto& workload : workloads::AllVclWorkloads()) {
    Row row = RunVclRow(workload);
    const double ratio = row.ava_ms / row.native_ms;
    ratio_sum += ratio;
    ratio_max = std::max(ratio_max, ratio);
    ++vcl_rows;
    std::printf("%-12s %12.1f %12.1f %9.2fx\n", row.name.c_str(),
                row.native_ms, row.ava_ms, ratio);
    rows.push_back(std::move(row));
  }
  Row inception = RunInceptionRow();
  const double inception_ratio = inception.ava_ms / inception.native_ms;
  std::printf("%-12s %12.1f %12.1f %9.2fx   (NCS stand-in)\n",
              inception.name.c_str(), inception.native_ms, inception.ava_ms,
              inception_ratio);
  bench::PrintRule(50);
  std::printf("OpenCL-suite mean overhead: %+.1f%%   worst: %+.1f%%\n",
              100.0 * (ratio_sum / vcl_rows - 1.0),
              100.0 * (ratio_max - 1.0));
  std::printf("Inception overhead:         %+.1f%%\n",
              100.0 * (inception_ratio - 1.0));
  std::printf(
      "\npaper: <=16%% worst, 8%% average (OpenCL); ~1%% (Movidius NCS)\n");

  std::printf("\nforwarded sync-call round-trip latency per workload\n");
  bench::PrintRule(78);
  rows.push_back(std::move(inception));
  for (const Row& row : rows) {
    bench::PrintLatencyPercentiles(row.name.c_str(), row.latency);
  }
  return 0;
}
