// E6 — §4.3 VM migration cost: suspend (drain in-flight call), record/replay
// snapshot + device-buffer copy-out, replay + buffer restore on the
// destination, then resume. Reports each phase and the total pause as a
// function of resident device state.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "src/gen/vcl_hooks.h"
#include "src/migrate/recorder.h"
#include "src/migrate/snapshot.h"

namespace {

constexpr const char* kScaleSrc =
    "__kernel void scale(__global float* d, float k, int n) {"
    "  int i = get_global_id(0);"
    "  if (i < n) { d[i] = d[i] * k; }"
    "}";

void RunOnce(std::size_t buffer_mb) {
  vcl::ResetDefaultSilo({});
  auto router = std::make_unique<ava::Router>();
  router->Start();
  auto pair = ava::MakeInProcChannel();
  auto session = std::make_shared<ava::ApiServerSession>(1);
  session->RegisterApi(ava_gen_vcl::kApiId, ava_gen_vcl::MakeVclApiHandler());
  ava::Recorder recorder;
  session->SetRecordSink(&recorder);
  router->AttachVm(1, std::move(pair.host), session);
  ava::GuestEndpoint::Options opts;
  opts.vm_id = 1;
  auto endpoint =
      std::make_shared<ava::GuestEndpoint>(std::move(pair.guest), opts);
  auto api = ava_gen_vcl::MakeVclGuestApi(endpoint);

  // Establish state: N buffers of 1 MiB each, a built program, bound args.
  vcl_platform_id platform = nullptr;
  api.vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
  std::vector<vcl_mem> buffers;
  std::vector<float> chunk((1u << 20) / 4, 1.5f);
  for (std::size_t i = 0; i < buffer_mb; ++i) {
    buffers.push_back(api.vclCreateBuffer(ctx, VCL_MEM_COPY_HOST_PTR,
                                          1u << 20, chunk.data(), &err));
  }
  vcl_program prog = api.vclCreateProgramWithSource(ctx, kScaleSrc, &err);
  api.vclBuildProgram(prog, nullptr);
  vcl_kernel kernel = api.vclCreateKernel(prog, "scale", &err);
  float k = 2.0f;
  int n = static_cast<int>(chunk.size());
  api.vclSetKernelArgBuffer(kernel, 0, buffers[0]);
  api.vclSetKernelArgScalar(kernel, 1, sizeof(float), &k);
  api.vclSetKernelArgScalar(kernel, 2, sizeof(int), &n);
  size_t global = chunk.size();
  api.vclEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, nullptr, 0,
                              nullptr, nullptr);
  api.vclFinish(queue);

  // Migrate.
  ava::MigrationEngine engine(ava_gen_vcl::MakeVclBufferHooks());
  ava::MigrationTimings timings;
  ava::Stopwatch total;
  auto snapshot =
      engine.Capture(router.get(), session.get(), recorder, &timings);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "capture failed: %s\n",
                 snapshot.status().ToString().c_str());
    std::abort();
  }
  ava::Bytes wire = snapshot->Serialize();
  auto target = std::make_shared<ava::ApiServerSession>(1);
  target->RegisterApi(ava_gen_vcl::kApiId, ava_gen_vcl::MakeVclApiHandler());
  auto arrived = ava::VmSnapshot::Deserialize(wire);
  if (!engine.Restore(*arrived, target.get(), &timings).ok()) {
    std::abort();
  }
  const double total_ms = total.ElapsedSeconds() * 1e3;

  std::printf(
      "%5zu MiB state: suspend %6.2f ms  snapshot %7.2f ms  replay %6.2f ms  "
      "restore %7.2f ms  total %8.2f ms  (wire %5.1f MiB, %zu calls)\n",
      buffer_mb, timings.suspend_ns / 1e6, timings.snapshot_ns / 1e6,
      timings.replay_ns / 1e6, timings.restore_buffers_ns / 1e6, total_ms,
      static_cast<double>(wire.size()) / (1u << 20),
      arrived->calls.size());

  endpoint.reset();
  router->Stop();
}

}  // namespace

int main() {
  std::printf(
      "Migration ablation — record/replay + buffer snapshot cost vs resident "
      "state (paper §4.3)\n\n");
  for (std::size_t mb : {1, 8, 32, 64}) {
    RunOnce(mb);
  }
  std::printf(
      "\npause scales with device state (buffer copy-out/in dominates); the\n"
      "replay log stays small because it tracks live objects, not history.\n");
  return 0;
}
