// E6 — §4.3 VM migration cost, two sections:
//
//  (a) offline: suspend (drain in-flight call), record/replay snapshot +
//      device-buffer copy-out, replay + buffer restore on the destination,
//      then resume. Reports each phase and the total pause as a function of
//      resident device state.
//  (b) live: iterative pre-copy over the migration channel against the same
//      working set. The VM keeps running through the pre-copy rounds, so
//      the pause (downtime) covers only the dirty residual — reported at
//      several dirty rates against the naive frozen full copy, together
//      with the bytes the content-digest dedup avoided shipping.
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/harness.h"
#include "src/gen/vcl_hooks.h"
#include "src/migrate/live.h"
#include "src/migrate/recorder.h"
#include "src/migrate/snapshot.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"

namespace {

constexpr const char* kScaleSrc =
    "__kernel void scale(__global float* d, float k, int n) {"
    "  int i = get_global_id(0);"
    "  if (i < n) { d[i] = d[i] * k; }"
    "}";

void RunOnce(std::size_t buffer_mb) {
  vcl::ResetDefaultSilo({});
  auto router = std::make_unique<ava::Router>();
  router->Start();
  auto pair = ava::MakeInProcChannel();
  auto session = std::make_shared<ava::ApiServerSession>(1);
  session->RegisterApi(ava_gen_vcl::kApiId, ava_gen_vcl::MakeVclApiHandler());
  ava::Recorder recorder;
  session->SetRecordSink(&recorder);
  router->AttachVm(1, std::move(pair.host), session);
  ava::GuestEndpoint::Options opts;
  opts.vm_id = 1;
  auto endpoint =
      std::make_shared<ava::GuestEndpoint>(std::move(pair.guest), opts);
  auto api = ava_gen_vcl::MakeVclGuestApi(endpoint);

  // Establish state: N buffers of 1 MiB each, a built program, bound args.
  vcl_platform_id platform = nullptr;
  api.vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
  std::vector<vcl_mem> buffers;
  std::vector<float> chunk((1u << 20) / 4, 1.5f);
  for (std::size_t i = 0; i < buffer_mb; ++i) {
    buffers.push_back(api.vclCreateBuffer(ctx, VCL_MEM_COPY_HOST_PTR,
                                          1u << 20, chunk.data(), &err));
  }
  vcl_program prog = api.vclCreateProgramWithSource(ctx, kScaleSrc, &err);
  api.vclBuildProgram(prog, nullptr);
  vcl_kernel kernel = api.vclCreateKernel(prog, "scale", &err);
  float k = 2.0f;
  int n = static_cast<int>(chunk.size());
  api.vclSetKernelArgBuffer(kernel, 0, buffers[0]);
  api.vclSetKernelArgScalar(kernel, 1, sizeof(float), &k);
  api.vclSetKernelArgScalar(kernel, 2, sizeof(int), &n);
  size_t global = chunk.size();
  api.vclEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, nullptr, 0,
                              nullptr, nullptr);
  api.vclFinish(queue);

  // Migrate.
  ava::MigrationEngine engine(ava_gen_vcl::MakeVclBufferHooks());
  ava::MigrationTimings timings;
  ava::Stopwatch total;
  auto snapshot =
      engine.Capture(router.get(), session.get(), recorder, &timings);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "capture failed: %s\n",
                 snapshot.status().ToString().c_str());
    std::abort();
  }
  ava::Bytes wire = snapshot->Serialize();
  auto target = std::make_shared<ava::ApiServerSession>(1);
  target->RegisterApi(ava_gen_vcl::kApiId, ava_gen_vcl::MakeVclApiHandler());
  auto arrived = ava::VmSnapshot::Deserialize(wire);
  if (!engine.Restore(*arrived, target.get(), &timings).ok()) {
    std::abort();
  }
  const double total_ms = total.ElapsedSeconds() * 1e3;

  std::printf(
      "%5zu MiB state: suspend %6.2f ms  snapshot %7.2f ms  replay %6.2f ms  "
      "restore %7.2f ms  total %8.2f ms  (wire %5.1f MiB, %zu calls)\n",
      buffer_mb, timings.suspend_ns / 1e6, timings.snapshot_ns / 1e6,
      timings.replay_ns / 1e6, timings.restore_buffers_ns / 1e6, total_ms,
      static_cast<double>(wire.size()) / (1u << 20),
      arrived->calls.size());

  endpoint.reset();
  router->Stop();
}

// ---------------------------------------------------------------------------
// (b) live pre-copy vs naive frozen full copy
// ---------------------------------------------------------------------------

constexpr std::uint32_t kLiveBufTag = 7;
constexpr std::size_t kLiveBufBytes = 1u << 20;
constexpr int kLiveBufCount = 32;  // half duplicates: 16 unique contents

struct LiveDevice {
  void* Alloc(const ava::Bytes& content) {
    std::lock_guard<std::mutex> lock(m);
    void* p = reinterpret_cast<void*>(next++);
    mem[p] = content;
    return p;
  }

  std::mutex m;
  std::uintptr_t next = 0x1000;
  std::unordered_map<void*, ava::Bytes> mem;
};

ava::BufferHooks LiveHooks(LiveDevice* dev) {
  ava::BufferHooks hooks;
  hooks.buffer_type_tag = kLiveBufTag;
  hooks.read_back = [dev](ava::ObjectRegistry*, ava::WireHandle,
                          ava::ObjectRegistry::Entry& entry,
                          ava::Bytes* out) -> ava::Status {
    std::lock_guard<std::mutex> lock(dev->m);
    *out = dev->mem[entry.real];
    return ava::OkStatus();
  };
  hooks.free_buffer = [dev](ava::ObjectRegistry*,
                            ava::ObjectRegistry::Entry& entry) {
    std::lock_guard<std::mutex> lock(dev->m);
    dev->mem.erase(entry.real);
  };
  hooks.realloc_buffer = [dev](ava::ObjectRegistry*, ava::WireHandle,
                               ava::ObjectRegistry::Entry&,
                               const ava::Bytes& contents) -> void* {
    return dev->Alloc(contents);
  };
  hooks.write_back = [dev](ava::ObjectRegistry*, ava::WireHandle,
                           ava::ObjectRegistry::Entry& entry,
                           const ava::Bytes& contents) -> ava::Status {
    std::lock_guard<std::mutex> lock(dev->m);
    dev->mem[entry.real] = contents;
    return ava::OkStatus();
  };
  return hooks;
}

ava::Bytes LiveContent(std::uint64_t seed) {
  ava::Bytes out(kLiveBufBytes);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (std::size_t i = 0; i < out.size(); i += 8) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    std::memcpy(out.data() + i, &x, 8);
  }
  return out;
}

struct LiveRun {
  double downtime_ms = 0;
  double precopy_ms = 0;
  std::uint64_t bytes_shipped = 0;
  std::uint64_t bytes_deduped = 0;
  int rounds = 0;
};

// One live migration of the half-redundant working set. The VM's writes are
// modeled as time-proportional: during a round that ships D buffers the VM
// rewrites dirty_rate x D of them, so the residual decays geometrically when
// dirty_rate < 1 and pre-copy iterates until a round ends with nothing newly
// dirty (or the round cap trips, for write rates that outrun the copy rate).
// dirty_rate < 0 means "naive": freeze first, ship everything in the pause.
LiveRun RunLive(double dirty_rate) {
  LiveDevice src_dev;
  LiveDevice dst_dev;
  auto src_session = std::make_shared<ava::ApiServerSession>(1);
  auto dst_session = std::make_shared<ava::ApiServerSession>(1);
  std::vector<ava::WireHandle> ids;
  for (int i = 0; i < kLiveBufCount; ++i) {
    void* p = src_dev.Alloc(LiveContent(i % (kLiveBufCount / 2)));
    ava::WireHandle id = src_session->registry().Insert(kLiveBufTag, p);
    src_session->registry().SetMeta(id, 0, kLiveBufBytes);
    ids.push_back(id);
  }

  ava::LiveMigrateOptions options;
  options.chunk_bytes = 256u << 10;
  options.copy_rate_bytes_per_sec = 1e9;
  ava::LiveMigrationSource source(LiveHooks(&src_dev), options);
  ava::LiveMigrationTarget target(LiveHooks(&dst_dev), options);
  auto wire = ava::MakeInProcChannel();
  if (!source.Bind(nullptr, src_session.get(), nullptr).ok()) {
    std::abort();
  }
  std::thread serve([&, t = std::move(wire.host)]() mutable {
    (void)target.Serve(std::move(t), dst_session.get());
  });
  if (!source.Connect(std::move(wire.guest)).ok()) {
    std::abort();
  }

  if (dirty_rate >= 0) {
    constexpr int kMaxRounds = 8;
    int shipped_buffers = kLiveBufCount;  // round 1 ships the whole set
    std::uint64_t next_seed = 1000;
    for (int round = 0; round < kMaxRounds; ++round) {
      if (!source.RunRound().ok()) {
        std::abort();
      }
      // The VM's writes while that round was shipping: proportional to the
      // round's length, i.e. to how many buffers it had to move.
      const int dirty =
          static_cast<int>(dirty_rate * shipped_buffers + 0.5);
      for (int i = 0; i < dirty; ++i) {
        auto real = src_session->registry().Translate(kLiveBufTag, ids[i]);
        if (!real.ok()) {
          std::abort();
        }
        std::lock_guard<std::mutex> lock(src_dev.m);
        src_dev.mem[*real] = LiveContent(next_seed++);
      }
      shipped_buffers = dirty;
      if (dirty == 0) {
        break;  // converged: the last round outran the write rate
      }
    }
  }
  if (!source.StopAndCopy().ok() || !source.FinishCutover().ok()) {
    std::abort();
  }
  serve.join();

  LiveRun run;
  const ava::LiveMigrateStats& stats = source.stats();
  run.downtime_ms = stats.downtime_ns / 1e6;
  run.precopy_ms = stats.precopy_ns / 1e6;
  run.bytes_shipped = stats.bytes_shipped;
  run.bytes_deduped = stats.bytes_deduped;
  run.rounds = stats.rounds;
  return run;
}

void RunLiveSection() {
  std::printf(
      "\nLive pre-copy vs naive frozen copy — 32 x 1 MiB working set, half "
      "duplicates\n");
  const LiveRun naive = RunLive(-1);
  std::printf(
      "naive (freeze, full copy):       pause %8.2f ms   shipped %5.1f MiB  "
      "(dedup saved %4.1f MiB)\n",
      naive.downtime_ms, naive.bytes_shipped / 1048576.0,
      naive.bytes_deduped / 1048576.0);
  for (double rate : {0.05, 0.25, 0.75}) {
    const LiveRun live = RunLive(rate);
    std::printf(
        "live %2.0f%% dirty: downtime %8.2f ms (%5.1fx less)   precopy "
        "%8.2f ms / %d rounds   shipped %5.1f MiB   dedup saved %4.1f MiB\n",
        rate * 100, live.downtime_ms,
        naive.downtime_ms / std::max(live.downtime_ms, 1e-3),
        live.precopy_ms, live.rounds, live.bytes_shipped / 1048576.0,
        live.bytes_deduped / 1048576.0);
  }
  std::printf(
      "\ndowntime tracks the dirty residual, not the working set: pre-copy\n"
      "iterates while the VM runs until a round outruns the write rate, the\n"
      "target imports each committed round eagerly so cutover re-installs\n"
      "only what changed, and the content digests dedup the redundant half\n"
      "of every full round. High dirty rates hit the round cap and pay for\n"
      "the residual in the pause — the classic pre-copy divergence.\n");
}

}  // namespace

int main() {
  std::printf(
      "Migration ablation — record/replay + buffer snapshot cost vs resident "
      "state (paper §4.3)\n\n");
  for (std::size_t mb : {1, 8, 32, 64}) {
    RunOnce(mb);
  }
  std::printf(
      "\npause scales with device state (buffer copy-out/in dominates); the\n"
      "replay log stays small because it tracks live objects, not history.\n");
  RunLiveSection();
  return 0;
}
